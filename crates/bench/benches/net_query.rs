//! Experiment N1: the network layer — precedence-query server throughput
//! (single queries, v2 batches, v3 pipelined windows, and the sharded
//! multi-trace fabric), the allocation-free serving hot path, the
//! vectorized clock kernels, and the TCP transport's overhead against the
//! in-process baseline.
//!
//! Workload families, self-timed and exported as machine-readable JSON:
//!
//! * `query` — a stamped trace served over loopback TCP; closed-loop
//!   client connections hammer it with v1 `precedes` (one query per
//!   frame, plus a `chain-of` variant), reporting queries/sec and
//!   nearest-rank p50/p99 latency. The paper's selling point is O(d)
//!   comparisons per query; the server should sustain well over 10k
//!   queries/sec even with framing and socket hops in the path.
//! * `query_batch` — the same trace asked over v2 QUERY2/ANSWER2 batch
//!   frames on a **single** connection, at batch sizes 16 and 256. This
//!   isolates the syscall-amortisation win: one `write`/`read` pair per
//!   N queries instead of per query. Latency is reported **amortised**
//!   (batch round trip / batch size) — the per-query cost a caller with
//!   N outstanding questions actually pays.
//! * `query_pipeline` — the same single connection asked over
//!   correlation-tagged v3 QUERY3/ANSWER3 frames with a window of W
//!   batches in flight (W ∈ {1, 4, 16}): requests stream without waiting
//!   for answers, the server answers every buffered frame in one write,
//!   and the client decodes answers as borrowed views straight into
//!   booleans — no allocation on either side in steady state.
//! * `serve` — the steady-state serving loop driven in-process under a
//!   counting global allocator: the record's `allocs` detail is the
//!   number of heap allocations across thousands of pumped batches, and
//!   the full-mode floor demands exactly zero.
//! * `kernel` — the chunked 8-lane merge kernel behind every clock
//!   backend, vectorized vs the black-box-per-element scalar loop at
//!   d=256, reported as a speedup ratio.
//! * `fabric` — a 4-shard catalog of 8 stamped traces served by the
//!   fixed worker pool; closed-loop connections spread batched load
//!   across every trace, reporting aggregate queries/sec across shards.
//! * `ring_transport` — the same token-ring behaviors run in-process
//!   (parking matcher) and as a loopback TCP mesh, so the transport's
//!   cost per rendezvous and its wire accounting sit side by side.
//!
//! Usage (a `harness = false` bench):
//!
//! ```text
//! cargo bench -p synctime-bench --bench net_query
//!   -- [--smoke] [--out PATH] [--validate PATH]
//! ```
//!
//! `--smoke` shrinks the workloads for CI; `--validate PATH` checks an
//! existing report (e.g. `results/BENCH_net.json`) against the
//! `synctime/bench_net/v3` schema. The full run additionally enforces the
//! acceptance floors: `query/precedes` above 10_000 queries/sec,
//! `batch_256` at least 3x the single-connection v1 rate, the fabric at
//! 500_000+ aggregate queries/sec with amortised p99 at or below 250us,
//! the W=16 pipeline at least 1.5x the same run's `batch_256` rate, the
//! vectorized merge kernel at least 1.3x scalar at d=256, and **zero**
//! steady-state serving allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use synctime_core::online::OnlineStamper;
use synctime_core::{kernel, wire, MessageTimestamps};
use synctime_graph::{decompose, topology, EdgeDecomposition, Graph};
use synctime_net::{
    encode_query_batch_into, pump_frames, serve_fabric, topology_hash_of, BatchQuery, FrameReader,
    FrameScratch, QueryClient, QueryFabric, QueryService, TcpMeshBuilder,
};
use synctime_obs::{nearest_rank_percentile, RunStats};
use synctime_runtime::{Behavior, Runtime};

const SCHEMA: &str = "synctime/bench_net/v3";
const QPS_FLOOR: f64 = 10_000.0;
const BATCH_SPEEDUP_FLOOR: f64 = 3.0;
const FABRIC_QPS_FLOOR: f64 = 500_000.0;
const FABRIC_P99_CEILING_NS: u64 = 250_000;
/// W=16 pipelining must beat the same run's lock-step batch_256 rate.
const PIPELINE_SPEEDUP_FLOOR: f64 = 1.5;
/// The 8-lane merge kernel must beat the black-box scalar loop at d=256.
const KERNEL_SPEEDUP_FLOOR: f64 = 1.3;

// ------------------------------------------------- counting allocator
//
// The whole bench binary runs under a counting wrapper of the system
// allocator so the `serve/steady_state` record can *prove* the zero-
// allocation claim rather than assert it. Only the thread that sets its
// thread-local recording flag is counted, so the server/client threads
// of the socket benchmarks never pollute the count (and pay only an
// unconditional TLS read).

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init: the allocator must be able to read the flag without
    // allocating (lazy TLS init would recurse).
    static RECORDING: Cell<bool> = const { Cell::new(false) };
}

fn recording() -> bool {
    RECORDING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if recording() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if recording() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if recording() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------- tiny Value builders

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn uint(x: u64) -> Value {
    Value::UInt(x)
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

struct Record {
    workload: &'static str,
    variant: &'static str,
    processes: usize,
    ops: u64,
    elapsed_ns: u128,
    detail: Value,
}

impl Record {
    fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed_ns as f64 / 1e9;
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Value {
        obj(vec![
            ("workload", string(self.workload)),
            ("variant", string(self.variant)),
            ("processes", uint(self.processes as u64)),
            ("ops", uint(self.ops)),
            ("elapsed_ns", uint(self.elapsed_ns as u64)),
            ("ops_per_sec", float(self.ops_per_sec())),
            ("detail", self.detail.clone()),
        ])
    }
}

// ----------------------------------------------------------- query server

/// One stamped random trace over `complete(processes)`.
fn stamped_trace(processes: usize, messages: usize, seed: u64) -> (MessageTimestamps, usize) {
    let topo = topology::complete(processes);
    let mut rng = StdRng::seed_from_u64(seed);
    let comp = synctime_sim::workload::RandomWorkload::messages(messages).generate(&topo, &mut rng);
    let dec = decompose::best_known(&topo);
    let stamps = OnlineStamper::new(&dec)
        .stamp_computation(&comp)
        .expect("stamping a generated trace");
    (stamps, dec.len())
}

/// Spawns a query server over a freshly stamped random trace and runs
/// `connections` closed-loop clients, each issuing `per_client` v1 queries
/// of the given kind. Latency percentiles are nearest-rank over every
/// query.
fn bench_query(
    processes: usize,
    messages: usize,
    connections: usize,
    per_client: usize,
    chain: bool,
    variant: &'static str,
) -> Record {
    let (stamps, dimension) = stamped_trace(processes, messages, 7);
    let m = stamps.len() as u32;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let _ = synctime_net::query::serve(listener, QueryService::new(stamps));
    });

    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(&addr).expect("connect to query server");
                let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                let mut latencies = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let m1 = rng.gen_range(0..m);
                    let m2 = rng.gen_range(0..m);
                    let at = Instant::now();
                    if chain {
                        client.chain_of(m1).expect("chain query");
                    } else {
                        client.precedes(m1, m2).expect("precedes query");
                    }
                    latencies.push(at.elapsed().as_nanos() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(connections * per_client);
    for w in workers {
        latencies.extend(w.join().expect("client thread"));
    }
    let elapsed_ns = started.elapsed().as_nanos();
    latencies.sort_unstable();
    let ops = latencies.len() as u64;
    Record {
        workload: "query",
        variant,
        processes,
        ops,
        elapsed_ns,
        detail: obj(vec![
            ("messages", uint(m as u64)),
            ("connections", uint(connections as u64)),
            ("dimension", uint(dimension as u64)),
            ("p50_ns", uint(nearest_rank_percentile(&latencies, 50, 100))),
            ("p99_ns", uint(nearest_rank_percentile(&latencies, 99, 100))),
        ]),
    }
}

// ------------------------------------------------- batched queries / fabric

/// Serves a catalog of `traces` stamped traces from a `shards`-way fabric
/// behind a worker pool sized to the connection count (closed-loop clients
/// starve on anything smaller), then drives `connections` clients, each
/// sending `batches_per_client` random-precedes batches of `batch_size`,
/// spread round-robin across every trace.
///
/// Latency is **amortised**: each batch contributes one sample of
/// `round_trip / batch_size`, the per-query cost a caller actually pays
/// when it has `batch_size` outstanding questions. `ops` counts queries,
/// so `ops_per_sec` is aggregate queries/sec across all shards.
fn bench_batch(
    shards: usize,
    traces: usize,
    connections: usize,
    batches_per_client: usize,
    batch_size: usize,
    messages: usize,
    workload: &'static str,
    variant: &'static str,
) -> Record {
    let processes = 8;
    let fabric = QueryFabric::new(shards);
    let mut m = u32::MAX;
    for t in 0..traces {
        let (stamps, _) = stamped_trace(processes, messages, 7 + t as u64);
        m = m.min(stamps.len() as u32);
        fabric.publish(&format!("trace-{t}"), stamps);
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serving = Arc::new(fabric);
    let pool = Arc::clone(&serving);
    std::thread::spawn(move || {
        let _ = serve_fabric(listener, pool, connections);
    });

    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(&addr).expect("connect to fabric");
                let mut rng = StdRng::seed_from_u64(2000 + c as u64);
                let mut amortised = Vec::with_capacity(batches_per_client);
                for b in 0..batches_per_client {
                    let trace = format!("trace-{}", (c + b) % traces);
                    let pairs: Vec<(u32, u32)> = (0..batch_size)
                        .map(|_| (rng.gen_range(0..m), rng.gen_range(0..m)))
                        .collect();
                    let at = Instant::now();
                    let verdicts = client.precedes_many(&trace, &pairs).expect("batch query");
                    let rtt = at.elapsed().as_nanos() as u64;
                    assert_eq!(verdicts.len(), batch_size);
                    amortised.push(rtt / batch_size as u64);
                }
                amortised
            })
        })
        .collect();
    let mut amortised: Vec<u64> = Vec::with_capacity(connections * batches_per_client);
    for w in workers {
        amortised.extend(w.join().expect("client thread"));
    }
    let elapsed_ns = started.elapsed().as_nanos();
    amortised.sort_unstable();
    let ops = (connections * batches_per_client * batch_size) as u64;
    // Wire cost per query, priced by the core model: the batch request and
    // its all-boolean answer, spread over the batch.
    let trace_id_bytes = "trace-0".len();
    let bytes_per_query = (wire::batch_query_frame_bytes(trace_id_bytes, batch_size)
        + wire::batch_answer_frame_bytes(batch_size, batch_size)) as f64
        / batch_size as f64;
    Record {
        workload,
        variant,
        processes,
        ops,
        elapsed_ns,
        detail: obj(vec![
            ("messages", uint(m as u64)),
            ("connections", uint(connections as u64)),
            ("shards", uint(shards as u64)),
            ("traces", uint(traces as u64)),
            ("batch_size", uint(batch_size as u64)),
            ("bytes_per_query", float(bytes_per_query)),
            ("p50_ns", uint(nearest_rank_percentile(&amortised, 50, 100))),
            ("p99_ns", uint(nearest_rank_percentile(&amortised, 99, 100))),
        ]),
    }
}

// ------------------------------------------------- pipelined v3 windows

/// A single connection to a one-trace fabric, asked over v3 pipelined
/// frames: each call streams `chunks_per_call` QUERY3 batches of
/// `batch_size` precedes queries with `window` in flight. Latency is
/// amortised per query across the whole call; `ops_per_sec` is the
/// sustained single-connection rate the window buys.
fn bench_pipeline(
    window: usize,
    batch_size: usize,
    chunks_per_call: usize,
    calls: usize,
    messages: usize,
    variant: &'static str,
) -> Record {
    let processes = 8;
    let fabric = QueryFabric::new(1);
    let (stamps, _) = stamped_trace(processes, messages, 7);
    let m = stamps.len() as u32;
    fabric.publish("trace-0", stamps);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let _ = serve_fabric(listener, Arc::new(fabric), 1);
    });

    let mut client = QueryClient::connect(&addr).expect("connect to fabric");
    let mut rng = StdRng::seed_from_u64(3000 + window as u64);
    let pairs: Vec<(u32, u32)> = (0..batch_size * chunks_per_call)
        .map(|_| (rng.gen_range(0..m), rng.gen_range(0..m)))
        .collect();
    let mut amortised = Vec::with_capacity(calls);
    let started = Instant::now();
    for _ in 0..calls {
        let at = Instant::now();
        let verdicts = client
            .precedes_many_pipelined("trace-0", &pairs, batch_size, window)
            .expect("pipelined call");
        let ns = at.elapsed().as_nanos() as u64;
        assert_eq!(verdicts.len(), pairs.len());
        amortised.push(ns / pairs.len() as u64);
    }
    let elapsed_ns = started.elapsed().as_nanos();
    amortised.sort_unstable();
    let ops = (calls * pairs.len()) as u64;
    // v3 wire cost per query: the correlation id adds 4 bytes to each
    // direction of every batch frame.
    let trace_id_bytes = "trace-0".len();
    let bytes_per_query = (wire::batch_query3_frame_bytes(trace_id_bytes, batch_size)
        + wire::batch_answer3_frame_bytes(batch_size, batch_size)) as f64
        / batch_size as f64;
    Record {
        workload: "query_pipeline",
        variant,
        processes,
        ops,
        elapsed_ns,
        detail: obj(vec![
            ("messages", uint(m as u64)),
            ("window", uint(window as u64)),
            ("batch_size", uint(batch_size as u64)),
            ("chunks_per_call", uint(chunks_per_call as u64)),
            ("bytes_per_query", float(bytes_per_query)),
            ("p50_ns", uint(nearest_rank_percentile(&amortised, 50, 100))),
            ("p99_ns", uint(nearest_rank_percentile(&amortised, 99, 100))),
        ]),
    }
}

// --------------------------------------------- steady-state allocations

/// Drives the serving hot path in-process under the counting allocator:
/// one warm-up pump, then `pumps` counted pumps of a 256-query QUERY3
/// batch. The detail's `allocs` is the total heap allocations the
/// serving thread made across all of them — the full-mode floor is 0.
fn bench_alloc_steady_state(pumps: usize) -> Record {
    let processes = 8;
    let fabric = QueryFabric::new(1);
    let (stamps, _) = stamped_trace(processes, 400, 7);
    let m = stamps.len() as u32;
    fabric.publish("trace-0", stamps);

    let batch_size = 256usize;
    let mut rng = StdRng::seed_from_u64(4000);
    let queries: Vec<BatchQuery> = (0..batch_size)
        .map(|_| BatchQuery {
            kind: synctime_net::query::QUERY_PRECEDES,
            m1: rng.gen_range(0..m),
            m2: rng.gen_range(0..m),
        })
        .collect();
    let mut wire_bytes = Vec::new();
    encode_query_batch_into(&mut wire_bytes, Some(1), "trace-0", &queries)
        .expect("bench batch encodes");

    let mut reader = FrameReader::new();
    let mut scratch = FrameScratch::new();
    // Warm-up: grow every buffer to steady-state capacity.
    reader.feed(&wire_bytes);
    scratch.out.clear();
    assert!(pump_frames(&mut reader, &fabric, &mut scratch).expect("warm-up pump"));

    ALLOCS.store(0, Ordering::SeqCst);
    RECORDING.with(|flag| flag.set(true));
    let started = Instant::now();
    for _ in 0..pumps {
        reader.feed(&wire_bytes);
        scratch.out.clear();
        assert!(pump_frames(&mut reader, &fabric, &mut scratch).expect("steady-state pump"));
    }
    let elapsed_ns = started.elapsed().as_nanos();
    RECORDING.with(|flag| flag.set(false));
    let allocs = ALLOCS.load(Ordering::SeqCst);

    Record {
        workload: "serve",
        variant: "steady_state",
        processes,
        ops: (pumps * batch_size) as u64,
        elapsed_ns,
        detail: obj(vec![
            ("messages", uint(m as u64)),
            ("batch_size", uint(batch_size as u64)),
            ("pumps", uint(pumps as u64)),
            ("allocs", uint(allocs)),
        ]),
    }
}

// ------------------------------------------------------ kernel speedup

/// The 8-lane chunked merge kernel against the black-box-per-element
/// scalar loop, at clock dimension `dimension`. Both sides do the same
/// `iters` merges over the same pseudo-random lanes; the detail carries
/// the speedup the full-mode floor checks.
fn bench_kernel_merge(dimension: usize, iters: usize) -> Record {
    use std::hint::black_box;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let src: Vec<u64> = (0..dimension).map(|_| next()).collect();
    let mut dst_scalar: Vec<u64> = (0..dimension).map(|_| next()).collect();
    let mut dst_vector = dst_scalar.clone();

    // Scalar baseline: black_box on every element defeats autovectorization,
    // modelling the per-component loop the clocks used before the kernel.
    let scalar_started = Instant::now();
    for _ in 0..iters {
        for (d, s) in dst_scalar.iter_mut().zip(&src) {
            *d = black_box((*d).max(*s));
        }
    }
    let scalar_ns = scalar_started.elapsed().as_nanos() as u64;

    let vector_started = Instant::now();
    for _ in 0..iters {
        kernel::merge_max_lanes(black_box(&mut dst_vector), black_box(&src));
    }
    let vector_ns = vector_started.elapsed().as_nanos() as u64;
    assert_eq!(dst_scalar, dst_vector, "kernels disagree on the merge");

    let speedup = if vector_ns > 0 {
        scalar_ns as f64 / vector_ns as f64
    } else {
        0.0
    };
    Record {
        workload: "kernel",
        variant: "merge_d256",
        processes: 1,
        ops: (iters * dimension) as u64,
        elapsed_ns: vector_ns as u128,
        detail: obj(vec![
            ("dimension", uint(dimension as u64)),
            ("iters", uint(iters as u64)),
            ("scalar_ns", uint(scalar_ns)),
            ("vector_ns", uint(vector_ns)),
            ("speedup_vs_scalar", float(speedup)),
        ]),
    }
}

// -------------------------------------------------------- ring transport

fn ring_behaviors(n: usize, rounds: u64) -> Vec<Behavior> {
    (0..n)
        .map(|id| -> Behavior {
            let next = (id + 1) % n;
            let prev = (id + n - 1) % n;
            Box::new(move |ctx| {
                for r in 0..rounds {
                    if ctx.id() == 0 {
                        ctx.send(next, r)?;
                        ctx.receive_from(prev)?;
                    } else {
                        ctx.receive_from(prev)?;
                        ctx.send(next, r)?;
                    }
                }
                Ok(())
            })
        })
        .collect()
}

fn transport_detail(stats: &RunStats) -> Value {
    obj(vec![
        ("total_wire_bytes", uint(stats.total_wire_bytes)),
        ("wire_savings_ratio", float(stats.wire_savings_ratio)),
        ("ack_latency_p50_ns", uint(stats.ack_latency_p50_ns)),
        ("ack_latency_p99_ns", uint(stats.ack_latency_p99_ns)),
    ])
}

fn bench_ring_local(n: usize, rounds: u64) -> Record {
    let topo = topology::cycle(n);
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec);
    let started = Instant::now();
    let run = rt.run(ring_behaviors(n, rounds)).expect("local ring run");
    let elapsed_ns = started.elapsed().as_nanos();
    let stats = run.stats();
    assert_eq!(stats.messages, n as u64 * rounds);
    Record {
        workload: "ring_transport",
        variant: "local",
        processes: n,
        ops: stats.messages,
        elapsed_ns,
        detail: transport_detail(stats),
    }
}

fn bench_ring_tcp(n: usize, rounds: u64) -> Record {
    let topo = topology::cycle(n);
    let dec = decompose::best_known(&topo);
    let hash = topology_hash_of(n, &dec);
    let builders: Vec<TcpMeshBuilder> = (0..n)
        .map(|_| TcpMeshBuilder::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<_> = builders.iter().map(TcpMeshBuilder::local_addr).collect();
    let started = Instant::now();
    let handles: Vec<_> = builders
        .into_iter()
        .zip(ring_behaviors(n, rounds))
        .enumerate()
        .map(|(id, (builder, behavior))| {
            let topo: Graph = topo.clone();
            let dec: EdgeDecomposition = dec.clone();
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let neighbors: Vec<usize> = topo.neighbors(id).collect();
                let mesh = builder
                    .establish(
                        id,
                        &addrs,
                        &neighbors,
                        hash,
                        std::time::Duration::from_secs(20),
                    )
                    .expect("mesh establishment");
                let (tx, rx) = mesh.channels();
                Runtime::new(&topo, &dec).run_process(id, behavior, tx, rx)
            })
        })
        .collect();
    let mut parts = Vec::with_capacity(n);
    for h in handles {
        let run = h.join().expect("node thread");
        assert_eq!(run.outcome(), None, "tcp ring node failed");
        let (_, _, _, stats) = run.into_parts();
        parts.push(stats);
    }
    let elapsed_ns = started.elapsed().as_nanos();
    let stats = RunStats::merged(&parts);
    assert_eq!(stats.messages, n as u64 * rounds);
    Record {
        workload: "ring_transport",
        variant: "tcp",
        processes: n,
        ops: stats.messages,
        elapsed_ns,
        detail: transport_detail(&stats),
    }
}

// ------------------------------------------------------------ the report

fn run_suite(smoke: bool) -> Value {
    let (messages, connections, per_client, batches, ring_rounds) = if smoke {
        (60, 2, 50, 4, 5)
    } else {
        (2_000, 4, 20_000, 1_000, 400)
    };
    let mut records = Vec::new();
    eprintln!(
        "net_query: v1 query server ({connections} connections x {per_client} queries, \
         {messages}-message trace)"
    );
    records.push(bench_query(
        8,
        messages,
        connections,
        per_client,
        false,
        "precedes",
    ));
    records.push(bench_query(
        8,
        messages,
        1,
        per_client,
        false,
        "precedes_1conn",
    ));
    records.push(bench_query(
        8,
        messages,
        connections,
        per_client / 4,
        true,
        "chain_of",
    ));
    eprintln!("net_query: v2 batches (single connection, batch 16 and 256)");
    records.push(bench_batch(
        1,
        1,
        1,
        batches * 4,
        16,
        messages,
        "query_batch",
        "batch_16",
    ));
    records.push(bench_batch(
        1,
        1,
        1,
        batches,
        256,
        messages,
        "query_batch",
        "batch_256",
    ));
    let (pipe_chunks, pipe_calls, pumps, kernel_iters) = if smoke {
        (8, 2, 64, 2_000)
    } else {
        (32, 24, 4_096, 400_000)
    };
    eprintln!(
        "net_query: v3 pipelined windows (single connection, batch 256 x \
         {pipe_chunks} chunks, W in {{1, 4, 16}})"
    );
    records.push(bench_pipeline(
        1,
        256,
        pipe_chunks,
        pipe_calls,
        messages,
        "window_1",
    ));
    records.push(bench_pipeline(
        4,
        256,
        pipe_chunks,
        pipe_calls,
        messages,
        "window_4",
    ));
    records.push(bench_pipeline(
        16,
        256,
        pipe_chunks,
        pipe_calls,
        messages,
        "window_16",
    ));
    eprintln!("net_query: steady-state serving allocations ({pumps} pumps x 256 queries)");
    records.push(bench_alloc_steady_state(pumps));
    eprintln!("net_query: merge kernel vs scalar (d=256, {kernel_iters} iters)");
    records.push(bench_kernel_merge(256, kernel_iters));
    eprintln!("net_query: sharded fabric (4 shards x 8 traces, {connections} connections)");
    records.push(bench_batch(
        4,
        8,
        connections,
        batches / 2,
        256,
        messages,
        "fabric",
        "shards_4",
    ));
    eprintln!("net_query: ring transport ({ring_rounds} rounds x 6 processes, local vs tcp)");
    records.push(bench_ring_local(6, ring_rounds));
    records.push(bench_ring_tcp(6, ring_rounds));

    let rate = |workload: &str, variant: &str| -> f64 {
        records
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .map(Record::ops_per_sec)
            .unwrap_or(0.0)
    };
    let detail_u64 = |workload: &str, variant: &str, key: &str| -> u64 {
        records
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .and_then(|r| r.detail.get_field(key))
            .and_then(as_u64)
            .unwrap_or(0)
    };
    let detail_f64 = |workload: &str, variant: &str, key: &str| -> f64 {
        records
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .and_then(|r| r.detail.get_field(key))
            .and_then(as_f64)
            .unwrap_or(0.0)
    };
    let tcp_rate = rate("ring_transport", "tcp");
    let v1_single = rate("query", "precedes_1conn");
    let batch256 = rate("query_batch", "batch_256");
    // Wire cost of one v1 precedes exchange, from the same pricing model.
    let bytes_per_query_v1 = (wire::query_frame_bytes() + wire::answer_frame_bytes(1)) as f64;
    let bytes_per_query_batch256 = (wire::batch_query_frame_bytes("trace-0".len(), 256)
        + wire::batch_answer_frame_bytes(256, 256)) as f64
        / 256.0;
    let bytes_per_query_pipeline256 = (wire::batch_query3_frame_bytes("trace-0".len(), 256)
        + wire::batch_answer3_frame_bytes(256, 256)) as f64
        / 256.0;
    obj(vec![
        ("schema", string(SCHEMA)),
        ("mode", string(if smoke { "smoke" } else { "full" })),
        (
            "records",
            Value::Array(records.iter().map(Record::to_json).collect()),
        ),
        (
            "derived",
            obj(vec![
                ("query_precedes_qps", float(rate("query", "precedes"))),
                ("query_chain_qps", float(rate("query", "chain_of"))),
                ("batch16_qps", float(rate("query_batch", "batch_16"))),
                ("batch256_qps", float(rate("query_batch", "batch_256"))),
                (
                    "batch256_speedup_vs_v1",
                    float(if v1_single > 0.0 {
                        rate("query_batch", "batch_256") / v1_single
                    } else {
                        0.0
                    }),
                ),
                (
                    "pipeline_window1_qps",
                    float(rate("query_pipeline", "window_1")),
                ),
                (
                    "pipeline_window4_qps",
                    float(rate("query_pipeline", "window_4")),
                ),
                (
                    "pipeline_window16_qps",
                    float(rate("query_pipeline", "window_16")),
                ),
                (
                    "pipeline16_speedup_vs_batch256",
                    float(if batch256 > 0.0 {
                        rate("query_pipeline", "window_16") / batch256
                    } else {
                        0.0
                    }),
                ),
                (
                    "serve_steady_state_allocs",
                    uint(detail_u64("serve", "steady_state", "allocs")),
                ),
                (
                    "kernel_merge_speedup_d256",
                    float(detail_f64("kernel", "merge_d256", "speedup_vs_scalar")),
                ),
                ("fabric_aggregate_qps", float(rate("fabric", "shards_4"))),
                (
                    "fabric_p99_ns",
                    uint(detail_u64("fabric", "shards_4", "p99_ns")),
                ),
                ("bytes_per_query_v1", float(bytes_per_query_v1)),
                ("bytes_per_query_batch256", float(bytes_per_query_batch256)),
                (
                    "bytes_per_query_pipeline256",
                    float(bytes_per_query_pipeline256),
                ),
                (
                    "transport_slowdown_tcp_vs_local",
                    float(if tcp_rate > 0.0 {
                        rate("ring_transport", "local") / tcp_rate
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ])
}

// ---------------------------------------------------------- validation

/// Checks a report against the v2 schema. Returns every violation found.
fn validate_report(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get_field("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("top-level \"schema\" must be \"{SCHEMA}\""));
    }
    let mode = doc.get_field("mode").and_then(Value::as_str);
    match mode {
        Some("full") | Some("smoke") => {}
        other => errs.push(format!(
            "\"mode\" must be \"full\" or \"smoke\", got {other:?}"
        )),
    }
    let Some(records) = doc.get_field("records").and_then(Value::as_array) else {
        errs.push("\"records\" must be an array".to_string());
        return errs;
    };
    if records.is_empty() {
        errs.push("\"records\" must not be empty".to_string());
    }
    let mut precedes_qps = None;
    let mut seen_batch = false;
    let mut seen_fabric = false;
    let mut seen_pipeline = false;
    let mut seen_serve = false;
    let mut seen_kernel = false;
    for (i, r) in records.iter().enumerate() {
        for key in ["workload", "variant"] {
            if r.get_field(key).and_then(Value::as_str).is_none() {
                errs.push(format!("records[{i}].{key} must be a string"));
            }
        }
        for key in ["processes", "ops", "elapsed_ns"] {
            if r.get_field(key).and_then(as_u64).is_none() {
                errs.push(format!("records[{i}].{key} must be an unsigned integer"));
            }
        }
        match r.get_field("ops_per_sec").and_then(as_f64) {
            Some(value) if value > 0.0 => {}
            _ => errs.push(format!(
                "records[{i}].ops_per_sec must be a positive number"
            )),
        }
        match r.get_field("detail") {
            Some(Value::Object(_)) => {}
            _ => errs.push(format!("records[{i}].detail must be an object")),
        }
        let workload = r.get_field("workload").and_then(Value::as_str);
        // Every query-shaped record carries its latency percentiles.
        if matches!(
            workload,
            Some("query" | "query_batch" | "query_pipeline" | "fabric")
        ) {
            for key in ["p50_ns", "p99_ns"] {
                if r.get_field("detail")
                    .and_then(|d| d.get_field(key))
                    .and_then(as_u64)
                    .is_none()
                {
                    errs.push(format!(
                        "records[{i}].detail.{key} must be an unsigned integer"
                    ));
                }
            }
        }
        // Batched records additionally price their wire cost.
        if matches!(workload, Some("query_batch" | "fabric")) {
            for key in ["batch_size", "shards", "traces"] {
                if r.get_field("detail")
                    .and_then(|d| d.get_field(key))
                    .and_then(as_u64)
                    .is_none()
                {
                    errs.push(format!(
                        "records[{i}].detail.{key} must be an unsigned integer"
                    ));
                }
            }
            if r.get_field("detail")
                .and_then(|d| d.get_field("bytes_per_query"))
                .and_then(as_f64)
                .is_none()
            {
                errs.push(format!(
                    "records[{i}].detail.bytes_per_query must be a number"
                ));
            }
            seen_batch |= workload == Some("query_batch");
            seen_fabric |= workload == Some("fabric");
        }
        // Pipelined records carry their window and wire pricing.
        if workload == Some("query_pipeline") {
            for key in ["window", "batch_size"] {
                if r.get_field("detail")
                    .and_then(|d| d.get_field(key))
                    .and_then(as_u64)
                    .is_none()
                {
                    errs.push(format!(
                        "records[{i}].detail.{key} must be an unsigned integer"
                    ));
                }
            }
            if r.get_field("detail")
                .and_then(|d| d.get_field("bytes_per_query"))
                .and_then(as_f64)
                .is_none()
            {
                errs.push(format!(
                    "records[{i}].detail.bytes_per_query must be a number"
                ));
            }
            seen_pipeline = true;
        }
        // The steady-state serve record proves the allocation count.
        if workload == Some("serve") {
            for key in ["allocs", "pumps", "batch_size"] {
                if r.get_field("detail")
                    .and_then(|d| d.get_field(key))
                    .and_then(as_u64)
                    .is_none()
                {
                    errs.push(format!(
                        "records[{i}].detail.{key} must be an unsigned integer"
                    ));
                }
            }
            seen_serve = true;
        }
        // The kernel record carries both raw timings and the ratio.
        if workload == Some("kernel") {
            for key in ["dimension", "scalar_ns", "vector_ns"] {
                if r.get_field("detail")
                    .and_then(|d| d.get_field(key))
                    .and_then(as_u64)
                    .is_none()
                {
                    errs.push(format!(
                        "records[{i}].detail.{key} must be an unsigned integer"
                    ));
                }
            }
            if r.get_field("detail")
                .and_then(|d| d.get_field("speedup_vs_scalar"))
                .and_then(as_f64)
                .is_none()
            {
                errs.push(format!(
                    "records[{i}].detail.speedup_vs_scalar must be a number"
                ));
            }
            seen_kernel = true;
        }
        if workload == Some("query")
            && r.get_field("variant").and_then(Value::as_str) == Some("precedes")
        {
            precedes_qps = r.get_field("ops_per_sec").and_then(as_f64);
        }
    }
    if !seen_batch {
        errs.push("report has no query_batch record".to_string());
    }
    if !seen_fabric {
        errs.push("report has no fabric record".to_string());
    }
    if !seen_pipeline {
        errs.push("report has no query_pipeline record".to_string());
    }
    if !seen_serve {
        errs.push("report has no serve record".to_string());
    }
    if !seen_kernel {
        errs.push("report has no kernel record".to_string());
    }
    let derived = doc.get_field("derived");
    match derived {
        Some(Value::Object(_)) => {}
        _ => errs.push("\"derived\" must be an object".to_string()),
    }
    let derived_f64 =
        |key: &str| -> Option<f64> { derived.and_then(|d| d.get_field(key)).and_then(as_f64) };
    for key in [
        "batch16_qps",
        "batch256_qps",
        "batch256_speedup_vs_v1",
        "pipeline_window1_qps",
        "pipeline_window4_qps",
        "pipeline_window16_qps",
        "pipeline16_speedup_vs_batch256",
        "serve_steady_state_allocs",
        "kernel_merge_speedup_d256",
        "fabric_aggregate_qps",
        "fabric_p99_ns",
        "bytes_per_query_v1",
        "bytes_per_query_batch256",
        "bytes_per_query_pipeline256",
    ] {
        if derived_f64(key).is_none() {
            errs.push(format!("\"derived.{key}\" must be a number"));
        }
    }
    // The zero-allocation claim binds in every mode: warm buffers are warm
    // whether the run is a smoke or the full suite.
    match derived_f64("serve_steady_state_allocs") {
        Some(allocs) if allocs == 0.0 => {}
        Some(allocs) => errs.push(format!(
            "steady-state serving made {allocs:.0} heap allocations; the hot path must make 0"
        )),
        None => {}
    }
    // The acceptance floors bind full runs only; smoke runs are a bit-rot
    // gate, not a performance claim.
    if mode == Some("full") {
        match precedes_qps {
            Some(qps) if qps >= QPS_FLOOR => {}
            Some(qps) => errs.push(format!(
                "full-mode query/precedes throughput {qps:.0} qps is below the {QPS_FLOOR:.0} floor"
            )),
            None => errs.push("full report has no query/precedes record".to_string()),
        }
        match derived_f64("batch256_speedup_vs_v1") {
            Some(x) if x >= BATCH_SPEEDUP_FLOOR => {}
            Some(x) => errs.push(format!(
                "full-mode batch256 speedup {x:.2}x is below the {BATCH_SPEEDUP_FLOOR:.1}x floor \
                 over single-connection v1"
            )),
            None => errs.push("full report has no batch256_speedup_vs_v1".to_string()),
        }
        match derived_f64("fabric_aggregate_qps") {
            Some(qps) if qps >= FABRIC_QPS_FLOOR => {}
            Some(qps) => errs.push(format!(
                "full-mode fabric aggregate {qps:.0} qps is below the {FABRIC_QPS_FLOOR:.0} floor"
            )),
            None => errs.push("full report has no fabric_aggregate_qps".to_string()),
        }
        match derived_f64("fabric_p99_ns") {
            Some(p99) if p99 <= FABRIC_P99_CEILING_NS as f64 => {}
            Some(p99) => errs.push(format!(
                "full-mode fabric amortised p99 {p99:.0}ns exceeds the \
                 {FABRIC_P99_CEILING_NS}ns ceiling"
            )),
            None => errs.push("full report has no fabric_p99_ns".to_string()),
        }
        match derived_f64("pipeline16_speedup_vs_batch256") {
            Some(x) if x >= PIPELINE_SPEEDUP_FLOOR => {}
            Some(x) => errs.push(format!(
                "full-mode W=16 pipeline speedup {x:.2}x is below the \
                 {PIPELINE_SPEEDUP_FLOOR:.1}x floor over lock-step batch_256"
            )),
            None => errs.push("full report has no pipeline16_speedup_vs_batch256".to_string()),
        }
        match derived_f64("kernel_merge_speedup_d256") {
            Some(x) if x >= KERNEL_SPEEDUP_FLOOR => {}
            Some(x) => errs.push(format!(
                "full-mode merge-kernel speedup {x:.2}x is below the \
                 {KERNEL_SPEEDUP_FLOOR:.1}x floor over the scalar loop at d=256"
            )),
            None => errs.push("full report has no kernel_merge_speedup_d256".to_string()),
        }
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out expects a path").clone()),
            "--validate" => {
                validate = Some(it.next().expect("--validate expects a path").clone());
            }
            // Tolerate cargo-bench plumbing (--bench, filter strings, ...).
            _ => {}
        }
    }

    let report = run_suite(smoke);
    let mut failures = validate_report(&report);
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("net_query: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        let errs = validate_report(&doc);
        if errs.is_empty() {
            eprintln!("net_query: {path} conforms to {SCHEMA}");
        } else {
            failures.extend(errs.into_iter().map(|e| format!("{path}: {e}")));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("net_query: SCHEMA VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
