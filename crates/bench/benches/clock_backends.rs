//! Experiment R9: clock backend merge throughput.
//!
//! The runtime's hot loop is line 05/09 of Figure 5 — merge the incoming
//! vector into the local clock — so the clock representation decides the
//! per-message cost. This bench drives the three [`Clock`] backends over
//! merge-heavy update streams:
//!
//! * `sparse_delta` — Singhal–Kshemkalyani regime: each incoming message
//!   changes only a few components of the sender's clock. The dense
//!   backend must still merge all `N` components of the full vector (that
//!   is what it receives off the wire); the tree backend consumes the
//!   change-set directly, `O(k log N)` per merge. This is where the
//!   sublinear claim lives: at `N = 256` the tree must sustain at least
//!   twice the dense merge rate (enforced by the schema validator on full
//!   reports).
//! * `gossip_full` — near-clique regime: almost every component moves
//!   between messages, so both backends do full-vector merges and the
//!   tree's summaries are pure overhead. Recorded to keep the trade-off
//!   honest, no floor.
//! * `small_dim` — `N = 16`, the fixed-lane fast path: `FixedArray`
//!   merges run fixed-trip loops the compiler can unroll.
//!
//! Every variant merges the *same* deterministic update stream, and the
//! final clocks are asserted bit-identical across backends before the
//! report is emitted (`derived.backends_bit_identical`).
//!
//! Usage (a `harness = false` bench):
//!
//! ```text
//! cargo bench -p synctime-bench --bench clock_backends              # full run, JSON to stdout
//!   -- [--smoke] [--out PATH] [--validate PATH]
//! ```
//!
//! `--smoke` shrinks the step counts to CI scale; `--out` writes the JSON
//! report to a file; `--validate` checks an existing report (e.g. the
//! checked-in `results/BENCH_clocks.json`) against the
//! `synctime/bench_clocks/v1` record schema — including the >= 2x tree
//! floor at `N = 256` — and fails the process if it does not conform.

use std::time::Instant;

use serde_json::Value;
use synctime_core::clock::{Clock, FixedArray16, TreeClock};
use synctime_core::VectorTime;

const SCHEMA: &str = "synctime/bench_clocks/v1";

/// Components changed per message in the sparse-delta regime.
const DELTA_WIDTH: usize = 4;

/// Updates are pre-built in chunks of this many steps so the timed loop
/// measures merges, not workload construction, without one `Instant` read
/// per step.
const CHUNK: usize = 1024;

/// The tree floor the validator enforces on full reports.
const TREE_FLOOR: f64 = 2.0;

// ---------------------------------------------------- tiny Value builders

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn uint(x: u64) -> Value {
    Value::UInt(x)
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

// -------------------------------------------------------------- workload

/// One chunk of incoming messages' clock updates, kept in two parallel
/// streams: the senders' full vectors (what the dense path merges off the
/// wire) and their change-sets since the previous message (what the tree
/// path merges). FIFO streams make the two equivalent — the soundness
/// argument behind `Clock::merge_delta`. Keeping them in separate vectors
/// matters for fairness: the runtime's delta path never materialises the
/// full vector, so the tree's timed loop must not stream `N`-component
/// vectors through the cache either.
struct UpdateChunk {
    /// One full vector per step (dense path only; empty on the delta path
    /// so the tree's timed loop never streams them through the cache).
    fulls: Vec<VectorTime>,
    /// All change-sets, flattened: step `i` owns
    /// `deltas[i * width..(i + 1) * width]`. Contiguous, like the pairs a
    /// wire frame carries — no per-step allocation to chase.
    deltas: Vec<(usize, u64)>,
}

/// Deterministically bumps `width` components of `shadow` per step for
/// steps `from..to` and returns the resulting updates. No RNG: same step,
/// same update.
fn build_chunk(
    shadow: &mut [u64],
    from: usize,
    to: usize,
    width: usize,
    path: Path,
) -> UpdateChunk {
    let n = shadow.len();
    let mut chunk = UpdateChunk {
        fulls: Vec::new(),
        deltas: Vec::with_capacity((to - from) * width),
    };
    for step in from..to {
        for j in 0..width {
            // Weyl-style index mixing spreads the touched components over
            // the whole vector without repeating a (step, j) pattern.
            let idx = step
                .wrapping_mul(2_654_435_761)
                .wrapping_add(j.wrapping_mul(40_503))
                % n;
            shadow[idx] += 1 + ((step + j) % 3) as u64;
            chunk.deltas.push((idx, shadow[idx]));
        }
        if path == Path::Full {
            chunk.fulls.push(VectorTime::from(shadow.to_vec()));
        }
    }
    chunk
}

/// Which merge entry point the timed loop exercises.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// `merge_from_vector` — the full-vector interchange merge every
    /// backend supports (what dense receives off the wire).
    Full,
    /// `merge_delta` — the Singhal–Kshemkalyani change-set merge (what the
    /// runtime feeds the tree backend).
    Delta,
}

/// Merges `steps` deterministic updates of `width` changed components into
/// a fresh `C` clock of dimension `n`, timing only the merge calls.
/// Returns the elapsed merge time and the final clock as a dense vector
/// (for the cross-backend identity gate).
fn bench_merges<C: Clock>(n: usize, steps: usize, width: usize, path: Path) -> (u128, VectorTime) {
    let mut shadow = vec![0u64; n];
    let mut clock = C::try_zero(n).expect("backend holds the bench dimension");
    let mut elapsed = 0u128;
    let mut step = 0;
    while step < steps {
        let to = (step + CHUNK).min(steps);
        let chunk = build_chunk(&mut shadow, step, to, width, path);
        step = to;
        let started = Instant::now();
        match path {
            Path::Full => {
                for full in &chunk.fulls {
                    clock
                        .merge_from_vector(full)
                        .expect("bench updates share the clock dimension");
                }
            }
            Path::Delta => {
                for delta in chunk.deltas.chunks_exact(width) {
                    clock
                        .merge_delta(delta)
                        .expect("bench updates share the clock dimension");
                }
            }
        }
        elapsed += started.elapsed().as_nanos();
    }
    (elapsed, clock.to_vector())
}

// --------------------------------------------------------------- records

struct Record {
    workload: &'static str,
    variant: &'static str,
    dim: usize,
    steps: usize,
    delta_width: usize,
    path: &'static str,
    elapsed_ns: u128,
}

impl Record {
    fn merges_per_sec(&self) -> f64 {
        let secs = self.elapsed_ns as f64 / 1e9;
        if secs > 0.0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Value {
        obj(vec![
            ("workload", string(self.workload)),
            ("variant", string(self.variant)),
            ("dim", uint(self.dim as u64)),
            ("ops", uint(self.steps as u64)),
            ("elapsed_ns", uint(self.elapsed_ns as u64)),
            ("ops_per_sec", float(self.merges_per_sec())),
            (
                "detail",
                obj(vec![
                    ("delta_width", uint(self.delta_width as u64)),
                    ("path", string(self.path)),
                ]),
            ),
        ])
    }
}

// ------------------------------------------------------------ the report

fn run_suite(smoke: bool) -> Value {
    let (sparse_steps, gossip_steps, small_steps) = if smoke {
        (4_000, 2_000, 8_000)
    } else {
        (400_000, 100_000, 1_000_000)
    };
    let mut records = Vec::new();
    let mut bit_identical = true;
    let mut check = |label: &str, a: &VectorTime, b: &VectorTime, ok: &mut bool| {
        if a != b {
            eprintln!("clock_backends: DIVERGENCE in {label}: {a} vs {b}");
            *ok = false;
        }
    };

    // Sparse-delta regime: dense merges the full wire vector, tree merges
    // the change-set — same stream, same final clock.
    for &n in &[16usize, 64, 256] {
        eprintln!("clock_backends: sparse_delta, N = {n}");
        let (dense_ns, dense_final) =
            bench_merges::<VectorTime>(n, sparse_steps, DELTA_WIDTH, Path::Full);
        let (tree_ns, tree_final) =
            bench_merges::<TreeClock>(n, sparse_steps, DELTA_WIDTH, Path::Delta);
        check(
            "sparse_delta",
            &dense_final,
            &tree_final,
            &mut bit_identical,
        );
        records.push(Record {
            workload: "sparse_delta",
            variant: "dense",
            dim: n,
            steps: sparse_steps,
            delta_width: DELTA_WIDTH,
            path: "full",
            elapsed_ns: dense_ns,
        });
        records.push(Record {
            workload: "sparse_delta",
            variant: "tree",
            dim: n,
            steps: sparse_steps,
            delta_width: DELTA_WIDTH,
            path: "delta",
            elapsed_ns: tree_ns,
        });
    }

    // Gossip regime: every component moves, both backends merge full
    // vectors; the tree's summaries are pure overhead here and the report
    // says by how much.
    {
        let n = 64;
        eprintln!("clock_backends: gossip_full, N = {n}");
        let (dense_ns, dense_final) = bench_merges::<VectorTime>(n, gossip_steps, n, Path::Full);
        let (tree_ns, tree_final) = bench_merges::<TreeClock>(n, gossip_steps, n, Path::Full);
        check("gossip_full", &dense_final, &tree_final, &mut bit_identical);
        records.push(Record {
            workload: "gossip_full",
            variant: "dense",
            dim: n,
            steps: gossip_steps,
            delta_width: n,
            path: "full",
            elapsed_ns: dense_ns,
        });
        records.push(Record {
            workload: "gossip_full",
            variant: "tree",
            dim: n,
            steps: gossip_steps,
            delta_width: n,
            path: "full",
            elapsed_ns: tree_ns,
        });
    }

    // Small-dimension fast path: the fixed-lane backend's fixed-trip
    // merge loops against the dense heap vector at N = 16.
    {
        let n = 16;
        eprintln!("clock_backends: small_dim, N = {n}");
        let (dense_ns, dense_final) =
            bench_merges::<VectorTime>(n, small_steps, DELTA_WIDTH, Path::Full);
        let (fixed_ns, fixed_final) =
            bench_merges::<FixedArray16>(n, small_steps, DELTA_WIDTH, Path::Full);
        check("small_dim", &dense_final, &fixed_final, &mut bit_identical);
        records.push(Record {
            workload: "small_dim",
            variant: "dense",
            dim: n,
            steps: small_steps,
            delta_width: DELTA_WIDTH,
            path: "full",
            elapsed_ns: dense_ns,
        });
        records.push(Record {
            workload: "small_dim",
            variant: "fixed",
            dim: n,
            steps: small_steps,
            delta_width: DELTA_WIDTH,
            path: "full",
            elapsed_ns: fixed_ns,
        });
    }

    let rate_of = |workload: &str, variant: &str, dim: usize| -> f64 {
        records
            .iter()
            .find(|r| r.workload == workload && r.variant == variant && r.dim == dim)
            .map(Record::merges_per_sec)
            .unwrap_or(0.0)
    };
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let tree_speedup_256 = ratio(
        rate_of("sparse_delta", "tree", 256),
        rate_of("sparse_delta", "dense", 256),
    );
    let tree_speedup_64 = ratio(
        rate_of("sparse_delta", "tree", 64),
        rate_of("sparse_delta", "dense", 64),
    );
    let fixed_speedup_16 = ratio(
        rate_of("small_dim", "fixed", 16),
        rate_of("small_dim", "dense", 16),
    );
    let gossip_tree_ratio = ratio(
        rate_of("gossip_full", "tree", 64),
        rate_of("gossip_full", "dense", 64),
    );

    obj(vec![
        ("schema", string(SCHEMA)),
        ("mode", string(if smoke { "smoke" } else { "full" })),
        (
            "records",
            Value::Array(records.iter().map(Record::to_json).collect()),
        ),
        (
            "derived",
            obj(vec![
                ("tree_speedup_sparse_n256", float(tree_speedup_256)),
                ("tree_speedup_sparse_n64", float(tree_speedup_64)),
                ("fixed_speedup_n16", float(fixed_speedup_16)),
                ("gossip_tree_over_dense", float(gossip_tree_ratio)),
                ("backends_bit_identical", Value::Bool(bit_identical)),
            ]),
        ),
    ])
}

// ------------------------------------------------------------ validation

/// Checks a report against the v1 record schema, including the tree floor
/// on full reports. Returns every violation found (empty = conforming).
fn validate_report(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get_field("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("top-level \"schema\" must be \"{SCHEMA}\""));
    }
    match doc.get_field("mode").and_then(Value::as_str) {
        Some("full") | Some("smoke") => {}
        other => errs.push(format!(
            "\"mode\" must be \"full\" or \"smoke\", got {other:?}"
        )),
    }
    let Some(records) = doc.get_field("records").and_then(Value::as_array) else {
        errs.push("\"records\" must be an array".to_string());
        return errs;
    };
    if records.is_empty() {
        errs.push("\"records\" must not be empty".to_string());
    }
    for (i, r) in records.iter().enumerate() {
        for key in ["workload", "variant"] {
            if r.get_field(key).and_then(Value::as_str).is_none() {
                errs.push(format!("records[{i}].{key} must be a string"));
            }
        }
        for key in ["dim", "ops", "elapsed_ns"] {
            if r.get_field(key).and_then(as_u64).is_none() {
                errs.push(format!("records[{i}].{key} must be an unsigned integer"));
            }
        }
        match r.get_field("ops_per_sec").and_then(as_f64) {
            Some(value) if value > 0.0 => {}
            _ => errs.push(format!(
                "records[{i}].ops_per_sec must be a positive number"
            )),
        }
        match r.get_field("detail") {
            Some(Value::Object(_)) => {}
            _ => errs.push(format!("records[{i}].detail must be an object")),
        }
        if r.get_field("detail")
            .and_then(|d| d.get_field("path"))
            .and_then(Value::as_str)
            .is_none()
        {
            errs.push(format!("records[{i}].detail.path must be a string"));
        }
    }
    let Some(derived) = doc.get_field("derived") else {
        errs.push("\"derived\" must be an object".to_string());
        return errs;
    };
    match derived.get_field("backends_bit_identical") {
        Some(Value::Bool(true)) => {}
        _ => errs.push("derived.backends_bit_identical must be true".to_string()),
    }
    match derived
        .get_field("tree_speedup_sparse_n256")
        .and_then(as_f64)
    {
        Some(s) if s > 0.0 => {
            // Full reports carry the sublinear-merge claim; smoke runs are
            // sized for CI latency, not for the ratio.
            if doc.get_field("mode").and_then(Value::as_str) == Some("full") && s < TREE_FLOOR {
                errs.push(format!(
                    "derived.tree_speedup_sparse_n256 must be >= {TREE_FLOOR} in a full report, got {s:.2}"
                ));
            }
        }
        _ => errs.push("derived.tree_speedup_sparse_n256 must be positive".to_string()),
    }
    match derived.get_field("fixed_speedup_n16").and_then(as_f64) {
        Some(s) if s > 0.0 => {}
        _ => errs.push("derived.fixed_speedup_n16 must be positive".to_string()),
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out expects a path").clone()),
            "--validate" => {
                validate = Some(it.next().expect("--validate expects a path").clone());
            }
            // Tolerate cargo-bench plumbing (--bench, filter strings, ...).
            _ => {}
        }
    }

    let report = run_suite(smoke);
    let mut failures = validate_report(&report);
    if smoke {
        // Smoke runs exist to prove the pipeline works, not to re-measure;
        // drop the ratio violations a tiny instance cannot honour.
        failures.retain(|f| !f.contains("speedup"));
    }
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("clock_backends: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        let errs = validate_report(&doc);
        if errs.is_empty() {
            eprintln!("clock_backends: {path} conforms to {SCHEMA}");
        } else {
            failures.extend(errs.into_iter().map(|e| format!("{path}: {e}")));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("clock_backends: SCHEMA VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
