//! Experiment R12: live reconfiguration under churn.
//!
//! The reconfiguration control plane claims three things worth numbers:
//!
//! * **Reconfiguration is fast.** A boundary — quiesce, apply the edge
//!   edits to the incremental decomposition, rebase the baseline clock
//!   into the new dimension, swap the runtime's epoch — is a blip, not an
//!   outage. The `reconfigure` records measure every boundary of a long
//!   seeded churn script; the derived p99 must stay <= 50 ms on full
//!   reports.
//! * **The dimension bound survives churn.** Every epoch's stamp
//!   dimension must respect the paper's `d <= 2*alpha` bound (Theorem 6)
//!   over that epoch's topology, no matter how the active set evolved to
//!   produce it. `derived.within_bound` must be true — in smoke and full
//!   reports alike, it is a correctness property, not a speed one.
//! * **Serving survives republication.** A query node republishes a
//!   trace's stamps after every reconfiguration (copy-on-write inside
//!   [`synctime_net::QueryFabric`]); readers on the old snapshot must not
//!   stall. The `query` records measure precedence throughput over the
//!   final epoch's stamps, once steady and once while a writer thread
//!   republishes continuously; the derived `dip_ratio` (during / steady)
//!   is reported for the experiment table.
//!
//! Usage (a `harness = false` bench):
//!
//! ```text
//! cargo bench -p synctime-bench --bench reconfig_churn              # full run, JSON to stdout
//!   -- [--smoke] [--out PATH] [--validate PATH]
//! ```
//!
//! `--smoke` shrinks the churn script to CI scale; `--out` writes the
//! JSON report to a file; `--validate` checks an existing report (e.g.
//! the checked-in `results/BENCH_churn.json`) against the
//! `synctime/bench_churn/v1` schema, including the p99 ceiling on full
//! reports and the dimension bound always, and fails the process if it
//! does not conform.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;
use synctime_graph::decompose;
use synctime_runtime::reconstruct_from_logs;
use synctime_sim::churn::epoch_topology;
use synctime_sim::{run_churn, ChurnConfig, ChurnPlan};
use synctime_trace::MessageId;

const SCHEMA: &str = "synctime/bench_churn/v1";

/// The reconfiguration-latency ceiling (microseconds, p99) enforced on
/// full reports.
const P99_CEILING_US: f64 = 50_000.0;

// ---------------------------------------------------- tiny Value builders

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn uint(x: u64) -> Value {
    Value::UInt(x)
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

/// The nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)] as f64
}

// ------------------------------------------------------------ the report

fn run_suite(smoke: bool) -> Value {
    let (universe, boundaries, query_iters) = if smoke {
        (6usize, 8usize, 20_000usize)
    } else {
        (12, 120, 400_000)
    };
    let mut rng = StdRng::seed_from_u64(42);
    let plan = ChurnPlan::random(universe, boundaries, 1, &mut rng);
    eprintln!("reconfig_churn: churn script, universe {universe}, {boundaries} boundaries");
    let started = Instant::now();
    let run = run_churn(&plan, &ChurnConfig::default()).expect("churn run");
    let run_ns = started.elapsed().as_nanos();

    // Reconfiguration latency: every epoch after the first records the
    // microseconds its entering boundary took.
    let mut lat: Vec<u64> = run
        .epochs
        .iter()
        .skip(1)
        .map(|e| e.reconfigure_micros)
        .collect();
    lat.sort_unstable();
    let p50 = percentile(&lat, 50.0);
    let p90 = percentile(&lat, 90.0);
    let p99 = percentile(&lat, 99.0);

    // Dimension bound: every epoch's dimension against 2*alpha of that
    // epoch's topology.
    let mut max_dim = 0usize;
    let mut max_bound = 0usize;
    let mut within_bound = true;
    for e in &run.epochs {
        let topo = epoch_topology(universe, &e.active).expect("epoch topology");
        let bound = 2 * decompose::alpha(&topo);
        max_dim = max_dim.max(e.dim);
        max_bound = max_bound.max(bound);
        within_bound &= e.dim <= bound;
    }

    // Query serving: precedence throughput over the final epoch's stamps,
    // steady vs. while a writer republishes the trace continuously.
    let final_logs = run.final_epoch_logs();
    let (comp, stamps) = reconstruct_from_logs(&final_logs).expect("final epoch reconstructs");
    let m = comp.message_count();
    assert!(m >= 2, "final epoch must carry messages");
    let fabric = std::sync::Arc::new(synctime_net::QueryFabric::single("churn", stamps.clone()));
    let queries = |iters: usize| -> u128 {
        // A fixed LCG walk over message pairs: same sequence both runs.
        let mut x = 0x2545f4914f6cdd1du64;
        let started = Instant::now();
        let mut hits = 0usize;
        for _ in 0..iters {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let m1 = MessageId((x >> 33) as usize % m);
            let m2 = MessageId((x >> 13) as usize % m);
            let snapshot = fabric.resolve("churn").expect("trace is published");
            if snapshot.precedes(m1, m2) {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
        started.elapsed().as_nanos()
    };
    eprintln!("reconfig_churn: query serving, {query_iters} lookups x2");
    let steady_ns = queries(query_iters);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let publisher = {
        let fabric = std::sync::Arc::clone(&fabric);
        let stop = std::sync::Arc::clone(&stop);
        let stamps = stamps.clone();
        std::thread::spawn(move || {
            let mut publishes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                fabric.publish("churn", stamps.clone());
                publishes += 1;
            }
            publishes
        })
    };
    let during_ns = queries(query_iters);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let publishes = publisher.join().expect("publisher joins");

    let qps = |ns: u128| {
        if ns > 0 {
            query_iters as f64 / (ns as f64 / 1e9)
        } else {
            0.0
        }
    };
    let qps_steady = qps(steady_ns);
    let qps_during = qps(during_ns);

    let records = vec![
        obj(vec![
            ("workload", string("reconfigure")),
            ("variant", string("boundary")),
            ("dim", uint(max_dim as u64)),
            ("ops", uint(lat.len() as u64)),
            ("elapsed_ns", uint(run_ns as u64)),
            (
                "ops_per_sec",
                float(lat.len() as f64 / (run_ns as f64 / 1e9)),
            ),
            (
                "detail",
                obj(vec![
                    ("universe", uint(universe as u64)),
                    ("p50_us", float(p50)),
                    ("p90_us", float(p90)),
                    ("p99_us", float(p99)),
                ]),
            ),
        ]),
        obj(vec![
            ("workload", string("query")),
            ("variant", string("steady")),
            ("dim", uint(max_dim as u64)),
            ("ops", uint(query_iters as u64)),
            ("elapsed_ns", uint(steady_ns as u64)),
            ("ops_per_sec", float(qps_steady)),
            ("detail", obj(vec![("messages", uint(m as u64))])),
        ]),
        obj(vec![
            ("workload", string("query")),
            ("variant", string("during_rebase")),
            ("dim", uint(max_dim as u64)),
            ("ops", uint(query_iters as u64)),
            ("elapsed_ns", uint(during_ns as u64)),
            ("ops_per_sec", float(qps_during)),
            (
                "detail",
                obj(vec![
                    ("messages", uint(m as u64)),
                    ("publishes", uint(publishes)),
                ]),
            ),
        ]),
    ];

    obj(vec![
        ("schema", string(SCHEMA)),
        ("mode", string(if smoke { "smoke" } else { "full" })),
        ("records", Value::Array(records)),
        (
            "derived",
            obj(vec![
                ("reconfigure_p50_us", float(p50)),
                ("reconfigure_p90_us", float(p90)),
                ("reconfigure_p99_us", float(p99)),
                ("max_dim", uint(max_dim as u64)),
                ("bound_2alpha", uint(max_bound as u64)),
                ("within_bound", Value::Bool(within_bound)),
                ("qps_steady", float(qps_steady)),
                ("qps_during_rebase", float(qps_during)),
                (
                    "dip_ratio",
                    float(if qps_steady > 0.0 {
                        qps_during / qps_steady
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ])
}

// ------------------------------------------------------------ validation

/// Checks a report against the v1 schema: the p99 ceiling on full
/// reports, the dimension bound always. Returns every violation found
/// (empty = conforming).
fn validate_report(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get_field("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("top-level \"schema\" must be \"{SCHEMA}\""));
    }
    let mode = doc.get_field("mode").and_then(Value::as_str);
    match mode {
        Some("full") | Some("smoke") => {}
        other => errs.push(format!(
            "\"mode\" must be \"full\" or \"smoke\", got {other:?}"
        )),
    }
    let Some(records) = doc.get_field("records").and_then(Value::as_array) else {
        errs.push("\"records\" must be an array".to_string());
        return errs;
    };
    for (i, r) in records.iter().enumerate() {
        for key in ["workload", "variant"] {
            if r.get_field(key).and_then(Value::as_str).is_none() {
                errs.push(format!("records[{i}].{key} must be a string"));
            }
        }
        for key in ["dim", "ops", "elapsed_ns"] {
            if r.get_field(key).and_then(as_u64).is_none() {
                errs.push(format!("records[{i}].{key} must be an unsigned integer"));
            }
        }
        match r.get_field("ops_per_sec").and_then(as_f64) {
            Some(value) if value > 0.0 => {}
            _ => errs.push(format!(
                "records[{i}].ops_per_sec must be a positive number"
            )),
        }
    }
    for workload in ["reconfigure", "query"] {
        if !records
            .iter()
            .any(|r| r.get_field("workload").and_then(Value::as_str) == Some(workload))
        {
            errs.push(format!("records must cover the \"{workload}\" workload"));
        }
    }
    let Some(derived) = doc.get_field("derived") else {
        errs.push("\"derived\" must be an object".to_string());
        return errs;
    };
    match derived.get_field("within_bound") {
        Some(Value::Bool(true)) => {}
        _ => errs.push("derived.within_bound must be true (d <= 2*alpha, Theorem 6)".to_string()),
    }
    let full = mode == Some("full");
    match derived.get_field("reconfigure_p99_us").and_then(as_f64) {
        Some(x) if x > 0.0 => {
            if full && x > P99_CEILING_US {
                errs.push(format!(
                    "derived.reconfigure_p99_us must be <= {P99_CEILING_US} in a full report, got {x:.0}"
                ));
            }
        }
        _ => errs.push("derived.reconfigure_p99_us must be positive".to_string()),
    }
    for key in ["qps_steady", "qps_during_rebase", "dip_ratio"] {
        match derived.get_field(key).and_then(as_f64) {
            Some(x) if x > 0.0 => {}
            _ => errs.push(format!("derived.{key} must be positive")),
        }
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out expects a path").clone()),
            "--validate" => {
                validate = Some(it.next().expect("--validate expects a path").clone());
            }
            // Tolerate cargo-bench plumbing (--bench, filter strings, ...).
            _ => {}
        }
    }

    let report = run_suite(smoke);
    let mut failures: Vec<String> = validate_report(&report);

    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("reconfig_churn: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        let errs = validate_report(&doc);
        if errs.is_empty() {
            eprintln!("reconfig_churn: {path} conforms to {SCHEMA}");
        } else {
            failures.extend(errs.into_iter().map(|e| format!("{path}: {e}")));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("reconfig_churn: SCHEMA VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
