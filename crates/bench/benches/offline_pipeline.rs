//! Experiment R5: scaling the offline timestamping pipeline.
//!
//! The dense offline engine (Figure 9 as PR 1 shipped it) materialises the
//! full `M x M` reachability closure and a minimum chain cover before it
//! can stamp anything — `O(M^2)` memory and far worse time, which caps it
//! at a few thousand messages. The sparse engine replaces the closure with
//! per-sender chains plus a chain-merge reachability table (`O(M·k)` for
//! `k` sending processes) and a heap-based deferring realizer, and its
//! realizer/stamping stages fan out over the `synctime-par` work-stealing
//! pool with a deterministic merge (parallel output is bit-identical to
//! sequential).
//!
//! This bench stamps one deterministic workload family at growing message
//! counts under three variants:
//!
//! * `dense`      — `offline::stamp_computation`, small sizes only (its
//!   memory/time wall is the point; the report records the wall).
//! * `sparse_seq` — `offline::stamp_computation_sparse`.
//! * `sparse_par` — `offline::stamp_computation_sparse_parallel` on the
//!   default pool, asserted bit-identical to `sparse_seq`.
//!
//! Memory is reported as an analytical proxy per variant: the dense
//! closure keeps two `M x M` bitsets (`2 · M · ⌈M/64⌉ · 8` bytes), the
//! sparse engine reports `SparsePoset::approx_bytes()`. Both are exact
//! formulas over the structures actually allocated, so the numbers are
//! deterministic across runs (a sampled RSS would not be).
//!
//! Usage (a `harness = false` bench):
//!
//! ```text
//! cargo bench -p synctime-bench --bench offline_pipeline            # full run, JSON to stdout
//!   -- [--smoke] [--out PATH] [--validate PATH]
//! ```
//!
//! `--smoke` shrinks the sizes to CI scale; `--out` writes the JSON report
//! to a file; `--validate` checks an existing report (e.g. the checked-in
//! `results/BENCH_offline_pipeline.json`) against the
//! `synctime/bench_offline_pipeline/v1` record schema and fails the
//! process if it does not conform.

use std::time::Instant;

use serde_json::Value;
use synctime_core::offline;
use synctime_core::MessageTimestamps;
use synctime_par::ThreadPool;
use synctime_trace::{Builder, MessageId, SyncComputation};

const SCHEMA: &str = "synctime/bench_offline_pipeline/v1";

/// Processes in every workload instance (8 sender/receiver pairs).
const PROCESSES: usize = 16;

// ---------------------------------------------------- tiny Value builders

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn uint(x: u64) -> Value {
    Value::UInt(x)
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

// -------------------------------------------------------------- workload

/// A deterministic synchronous computation over [`PROCESSES`] processes:
/// traffic mostly stays inside disjoint pairs `(2k, 2k+1)` — producing many
/// long parallel chains, the regime the paper's offline algorithm targets —
/// with every 17th message crossing to the next pair so the poset has
/// genuine inter-chain order, not just disjoint lines. No RNG: size is the
/// only parameter, so every run stamps the identical poset.
fn build_workload(messages: usize) -> SyncComputation {
    let pairs = PROCESSES / 2;
    let mut b = Builder::new(PROCESSES);
    for i in 0..messages {
        let p = i % pairs;
        if i % 17 == 16 {
            // Cross-link: this pair's even process to the next pair's odd.
            b.message(2 * p, 2 * ((p + 1) % pairs) + 1)
                .expect("cross message is valid");
        } else {
            // In-pair message, direction alternating every sweep.
            let (s, r) = if (i / pairs) % 2 == 0 {
                (2 * p, 2 * p + 1)
            } else {
                (2 * p + 1, 2 * p)
            };
            b.message(s, r).expect("pair message is valid");
        }
    }
    b.build()
}

/// The dense engine's closure footprint: forward and backward `M x M`
/// bitsets, `⌈M/64⌉` words per row.
fn dense_closure_bytes(messages: usize) -> u64 {
    2 * messages as u64 * messages.div_ceil(64) as u64 * 8
}

// --------------------------------------------------------------- records

struct Record {
    variant: &'static str,
    messages: usize,
    elapsed_ns: u128,
    dim: usize,
    mem_proxy_bytes: u64,
}

impl Record {
    fn msgs_per_sec(&self) -> f64 {
        let secs = self.elapsed_ns as f64 / 1e9;
        if secs > 0.0 {
            self.messages as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Value {
        obj(vec![
            ("workload", string("offline_stamp")),
            ("variant", string(self.variant)),
            ("processes", uint(PROCESSES as u64)),
            ("ops", uint(self.messages as u64)),
            ("elapsed_ns", uint(self.elapsed_ns as u64)),
            ("ops_per_sec", float(self.msgs_per_sec())),
            (
                "detail",
                obj(vec![
                    ("dim", uint(self.dim as u64)),
                    ("mem_proxy_bytes", uint(self.mem_proxy_bytes)),
                ]),
            ),
        ])
    }
}

fn bench_engine(
    variant: &'static str,
    messages: usize,
    stamp: impl Fn(&SyncComputation) -> MessageTimestamps,
) -> (Record, MessageTimestamps) {
    let comp = build_workload(messages);
    let started = Instant::now();
    let stamps = stamp(&comp);
    let elapsed_ns = started.elapsed().as_nanos();
    let mem_proxy_bytes = match variant {
        "dense" => dense_closure_bytes(messages),
        _ => synctime_trace::stream::sparse_message_poset(&comp).approx_bytes() as u64,
    };
    (
        Record {
            variant,
            messages,
            elapsed_ns,
            dim: stamps.dim(),
            mem_proxy_bytes,
        },
        stamps,
    )
}

// ------------------------------------------------------------ the report

fn run_suite(smoke: bool) -> Value {
    let (dense_sizes, sparse_sizes): (Vec<usize>, Vec<usize>) = if smoke {
        (vec![200], vec![500, 2000])
    } else {
        (vec![1_000, 10_000], vec![10_000, 100_000, 1_000_000])
    };
    let pool = ThreadPool::with_default_parallelism();
    let mut records = Vec::new();

    for &m in &dense_sizes {
        eprintln!("offline_pipeline: dense stamp, M = {m}");
        let (rec, _) = bench_engine("dense", m, offline::stamp_computation);
        records.push(rec);
    }
    let mut bit_identical = true;
    for &m in &sparse_sizes {
        eprintln!("offline_pipeline: sparse stamp (seq + par), M = {m}");
        let (seq_rec, seq) = bench_engine("sparse_seq", m, offline::stamp_computation_sparse);
        let (par_rec, par) = bench_engine("sparse_par", m, |c| {
            offline::stamp_computation_sparse_parallel(c, &pool)
        });
        // Determinism gate: the parallel engine must reproduce the
        // sequential stamps byte for byte at every size.
        assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            if seq.vector(MessageId(i)) != par.vector(MessageId(i)) {
                bit_identical = false;
                eprintln!("offline_pipeline: DIVERGENCE at M = {m}, message {i}");
            }
        }
        records.push(seq_rec);
        records.push(par_rec);
    }
    assert!(bit_identical, "parallel stamps diverged from sequential");

    // Cross-engine sanity at a size the dense engine can handle: both
    // engines encode the same order on the same workload.
    {
        let m = if smoke { 200 } else { 1_000 };
        let comp = build_workload(m);
        let dense = offline::stamp_computation(&comp);
        let sparse = offline::stamp_computation_sparse(&comp);
        for a in (0..m).step_by(7) {
            for b in (0..m).step_by(13) {
                if a != b {
                    assert_eq!(
                        dense.precedes(MessageId(a), MessageId(b)),
                        sparse.precedes(MessageId(a), MessageId(b)),
                        "engines disagree on ({a}, {b})"
                    );
                }
            }
        }
    }

    let rate_at = |variant: &str, messages: usize| -> f64 {
        records
            .iter()
            .find(|r| r.variant == variant && r.messages == messages)
            .map(Record::msgs_per_sec)
            .unwrap_or(0.0)
    };
    // The dense engine cannot reach the sparse sizes at all (its closure at
    // M = 100k would be ~2.5 GB and the chain-cover matching far worse), so
    // the headline compares the sparse rate at the target size against the
    // *best* rate dense achieves anywhere — the comparison most favourable
    // to dense, making the reported speedup a conservative lower bound.
    let best_dense = records
        .iter()
        .filter(|r| r.variant == "dense")
        .map(Record::msgs_per_sec)
        .fold(0.0f64, f64::max);
    let target = *sparse_sizes.get(1).unwrap_or(&sparse_sizes[0]);
    let headline = if best_dense > 0.0 {
        rate_at("sparse_seq", target) / best_dense
    } else {
        0.0
    };
    let headline_par = if best_dense > 0.0 {
        rate_at("sparse_par", target) / best_dense
    } else {
        0.0
    };

    obj(vec![
        ("schema", string(SCHEMA)),
        ("mode", string(if smoke { "smoke" } else { "full" })),
        (
            "records",
            Value::Array(records.iter().map(Record::to_json).collect()),
        ),
        (
            "derived",
            obj(vec![
                ("target_messages", uint(target as u64)),
                ("best_dense_msgs_per_sec", float(best_dense)),
                ("sparse_seq_speedup_vs_best_dense", float(headline)),
                ("sparse_par_speedup_vs_best_dense", float(headline_par)),
                ("parallel_bit_identical", Value::Bool(bit_identical)),
            ]),
        ),
    ])
}

// ------------------------------------------------------------ validation

/// Checks a report against the v1 record schema. Returns every violation
/// found (empty = conforming).
fn validate_report(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get_field("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("top-level \"schema\" must be \"{SCHEMA}\""));
    }
    match doc.get_field("mode").and_then(Value::as_str) {
        Some("full") | Some("smoke") => {}
        other => errs.push(format!(
            "\"mode\" must be \"full\" or \"smoke\", got {other:?}"
        )),
    }
    let Some(records) = doc.get_field("records").and_then(Value::as_array) else {
        errs.push("\"records\" must be an array".to_string());
        return errs;
    };
    if records.is_empty() {
        errs.push("\"records\" must not be empty".to_string());
    }
    for (i, r) in records.iter().enumerate() {
        for key in ["workload", "variant"] {
            if r.get_field(key).and_then(Value::as_str).is_none() {
                errs.push(format!("records[{i}].{key} must be a string"));
            }
        }
        for key in ["processes", "ops", "elapsed_ns"] {
            if r.get_field(key).and_then(as_u64).is_none() {
                errs.push(format!("records[{i}].{key} must be an unsigned integer"));
            }
        }
        match r.get_field("ops_per_sec").and_then(as_f64) {
            Some(value) if value > 0.0 => {}
            _ => errs.push(format!(
                "records[{i}].ops_per_sec must be a positive number"
            )),
        }
        match r.get_field("detail") {
            Some(Value::Object(_)) => {}
            _ => errs.push(format!("records[{i}].detail must be an object")),
        }
        if r.get_field("detail")
            .and_then(|d| d.get_field("mem_proxy_bytes"))
            .and_then(as_u64)
            .is_none()
        {
            errs.push(format!(
                "records[{i}].detail.mem_proxy_bytes must be an unsigned integer"
            ));
        }
    }
    let Some(derived) = doc.get_field("derived") else {
        errs.push("\"derived\" must be an object".to_string());
        return errs;
    };
    match derived.get_field("parallel_bit_identical") {
        Some(Value::Bool(true)) => {}
        _ => errs.push("derived.parallel_bit_identical must be true".to_string()),
    }
    match derived
        .get_field("sparse_seq_speedup_vs_best_dense")
        .and_then(as_f64)
    {
        Some(s) if s > 0.0 => {
            // Full reports carry the headline claim; smoke runs are sized
            // for CI latency, not for the ratio.
            if doc.get_field("mode").and_then(Value::as_str) == Some("full") && s < 10.0 {
                errs.push(format!(
                    "derived.sparse_seq_speedup_vs_best_dense must be >= 10 in a full report, got {s:.2}"
                ));
            }
        }
        _ => errs.push("derived.sparse_seq_speedup_vs_best_dense must be positive".to_string()),
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out expects a path").clone()),
            "--validate" => {
                validate = Some(it.next().expect("--validate expects a path").clone());
            }
            // Tolerate cargo-bench plumbing (--bench, filter strings, ...).
            _ => {}
        }
    }

    let report = run_suite(smoke);
    let mut failures = validate_report(&report);
    if smoke {
        // Smoke runs exist to prove the pipeline works, not to re-measure;
        // drop the ratio violations a tiny instance cannot honour.
        failures.retain(|f| !f.contains("speedup"));
    }
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("offline_pipeline: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        let errs = validate_report(&doc);
        if errs.is_empty() {
            eprintln!("offline_pipeline: {path} conforms to {SCHEMA}");
        } else {
            failures.extend(errs.into_iter().map(|e| format!("{path}: {e}")));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("offline_pipeline: SCHEMA VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
