//! Experiment P1a: stamping throughput — time to timestamp a whole
//! computation, per algorithm (online Figure 5 vs Fidge–Mattern vs Lamport
//! vs offline Figure 9), per topology family.
//!
//! The paper's claim: online stamping is `O(d)` per message versus FM's
//! `O(N)`; the gap should widen as N grows while d stays fixed
//! (client–server, star, tree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use synctime_core::online::OnlineStamper;
use synctime_core::{fm, lamport, offline};
use synctime_graph::{decompose, topology, Graph};
use synctime_sim::workload::random_computation;
use synctime_trace::SyncComputation;

const MESSAGES: usize = 2_000;

fn workloads() -> Vec<(String, Graph, SyncComputation)> {
    let mut rng = StdRng::seed_from_u64(17);
    let mut out = Vec::new();
    let families: Vec<(String, Graph)> = vec![
        ("star(64)".into(), topology::star(64)),
        ("client_server(4x60)".into(), topology::client_server(4, 60)),
        ("tree(2^6)".into(), topology::balanced_tree(2, 5)),
        ("complete(16)".into(), topology::complete(16)),
        ("complete(64)".into(), topology::complete(64)),
    ];
    for (name, topo) in families {
        let comp = random_computation(&topo, MESSAGES, &mut rng);
        out.push((name, topo, comp));
    }
    out
}

fn bench_stamping(c: &mut Criterion) {
    let mut group = c.benchmark_group("stamping");
    group.throughput(Throughput::Elements(MESSAGES as u64));
    group.sample_size(10);

    for (name, topo, comp) in workloads() {
        let dec = decompose::best_known(&topo);
        group.bench_with_input(
            BenchmarkId::new(format!("online_d{}", dec.len()), &name),
            &comp,
            |b, comp| {
                let stamper = OnlineStamper::new(&dec);
                b.iter(|| black_box(stamper.stamp_computation(black_box(comp)).unwrap()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("fm_N{}", topo.node_count()), &name),
            &comp,
            |b, comp| b.iter(|| black_box(fm::stamp_messages(black_box(comp)))),
        );
        group.bench_with_input(BenchmarkId::new("lamport", &name), &comp, |b, comp| {
            b.iter(|| black_box(lamport::stamp_messages(black_box(comp))))
        });
    }
    group.finish();

    // Offline stamping is O(M^2)-ish (matching + realizer); bench smaller.
    let mut group = c.benchmark_group("stamping_offline");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(18);
    for msgs in [100usize, 400] {
        let topo = topology::complete(10);
        let comp = random_computation(&topo, msgs, &mut rng);
        group.throughput(Throughput::Elements(msgs as u64));
        group.bench_with_input(BenchmarkId::new("offline", msgs), &comp, |b, comp| {
            b.iter(|| black_box(offline::stamp_computation(black_box(comp))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stamping);
criterion_main!(benches);
