//! Experiment P3: the Figure 7 greedy decomposition runs in `O(|V|·|E|)`.
//! Benchmarks its wall-clock across graph sizes and densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use synctime_graph::{decompose, topology};

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose_greedy");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(31);

    for n in [32usize, 64, 128, 256] {
        let sparse = topology::random_connected(n, n / 4, &mut rng);
        group.throughput(Throughput::Elements(sparse.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("sparse", n), &sparse, |b, g| {
            b.iter(|| black_box(decompose::greedy(black_box(g))))
        });

        let dense = topology::gnp(n, 0.3, &mut rng);
        group.throughput(Throughput::Elements(dense.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("dense", n), &dense, |b, g| {
            b.iter(|| black_box(decompose::greedy(black_box(g))))
        });

        let tree = topology::random_tree(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("tree", n), &tree, |b, g| {
            b.iter(|| black_box(decompose::greedy(black_box(g))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("vertex_cover");
    group.sample_size(10);
    for n in [12usize, 16, 20] {
        let g = topology::random_connected(n, n / 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("exact_bnb", n), &g, |b, g| {
            b.iter(|| black_box(synctime_graph::cover::exact_min(black_box(g))))
        });
        group.bench_with_input(BenchmarkId::new("two_approx", n), &g, |b, g| {
            b.iter(|| black_box(synctime_graph::cover::two_approx(black_box(g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
