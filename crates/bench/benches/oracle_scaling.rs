//! Cost of ground-truth construction: building the message poset (the
//! `O(|M|²/64)` closure the *offline* algorithm and every oracle check pay)
//! versus the `O(|M| · d)` online stamping pass, across trace sizes.
//! This is the scalability argument for the online algorithm made
//! concrete: the oracle/offline path grows quadratically, the online path
//! linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use synctime_core::online::OnlineStamper;
use synctime_graph::{decompose, topology};
use synctime_sim::workload::random_computation;
use synctime_trace::Oracle;

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_vs_online");
    group.sample_size(10);
    let topo = topology::complete(12);
    let dec = decompose::best_known(&topo);
    let mut rng = StdRng::seed_from_u64(3);
    for msgs in [250usize, 1_000, 4_000] {
        let comp = random_computation(&topo, msgs, &mut rng);
        group.throughput(Throughput::Elements(msgs as u64));
        group.bench_with_input(
            BenchmarkId::new("oracle_closure", msgs),
            &comp,
            |b, comp| b.iter(|| black_box(Oracle::new(black_box(comp)))),
        );
        group.bench_with_input(
            BenchmarkId::new("online_stamping", msgs),
            &comp,
            |b, comp| {
                let stamper = OnlineStamper::new(&dec);
                b.iter(|| black_box(stamper.stamp_computation(black_box(comp)).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
