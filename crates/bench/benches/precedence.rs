//! Experiment P1b: precedence-test latency — the cost of answering
//! `m1 ↦ m2?` from timestamps of different dimensions. Our vectors are
//! `d`-dimensional; FM's are `N`-dimensional; the comparison cost scales
//! with the dimension, which is the point of shrinking it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use synctime_core::online::OnlineStamper;
use synctime_core::{fm, offline, MessageTimestamps};
use synctime_graph::{decompose, topology};
use synctime_sim::workload::random_computation;
use synctime_trace::MessageId;

const MESSAGES: usize = 600;

fn bench_precedence(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let topo = topology::client_server(4, 60);
    let comp = random_computation(&topo, MESSAGES, &mut rng);
    let dec = decompose::best_known(&topo);

    let online = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
    let fm_stamps = fm::stamp_messages(&comp);
    let off = offline::stamp_computation(&comp);

    let pairs: Vec<(MessageId, MessageId)> = (0..MESSAGES)
        .map(|i| (MessageId(i), MessageId((i * 7 + 13) % MESSAGES)))
        .collect();

    let mut group = c.benchmark_group("precedence");
    group.throughput(Throughput::Elements(pairs.len() as u64));

    let run = |b: &mut criterion::Bencher, stamps: &MessageTimestamps| {
        b.iter(|| {
            let mut yes = 0usize;
            for &(x, y) in &pairs {
                yes += usize::from(stamps.precedes(black_box(x), black_box(y)));
            }
            black_box(yes)
        })
    };

    group.bench_function(
        BenchmarkId::new("online", format!("d={}", online.dim())),
        |b| run(b, &online),
    );
    group.bench_function(
        BenchmarkId::new("offline", format!("w={}", off.dim())),
        |b| run(b, &off),
    );
    group.bench_function(
        BenchmarkId::new("fm", format!("N={}", fm_stamps.dim())),
        |b| run(b, &fm_stamps),
    );
    group.finish();
}

criterion_group!(benches, bench_precedence);
criterion_main!(benches);
