//! Experiment R4: the online runtime's rendezvous fast path and the
//! incremental decomposition cache.
//!
//! Three workloads, each self-timed (wall clock around the full run) so the
//! numbers can be exported as machine-readable JSON:
//!
//! * `ring` — a token circulating a cycle of processes; strict alternation
//!   means one endpoint of every rendezvous parks, making the matcher's
//!   wakeup path the whole game. Run under both the parking matcher and the
//!   polling baseline; their ratio is the headline speedup.
//! * `client_server` — servers round-robining request/reply pairs over
//!   their clients (the paper's client–server discussion), again under both
//!   matchers.
//! * `dynamic` — a random edge-edit sequence over a connected topology,
//!   maintained by `IncrementalDecomposition` + `OnlineSession::reconfigure`
//!   versus re-running the Figure 7 greedy algorithm from scratch per edit.
//!
//! Usage (a `harness = false` bench):
//!
//! ```text
//! cargo bench -p synctime-bench --bench online_runtime            # full run, JSON to stdout
//!   -- [--smoke] [--out PATH] [--validate PATH]
//! ```
//!
//! `--smoke` shrinks every workload to a few iterations (CI's bit-rot
//! gate); `--out` writes the JSON report to a file; `--validate` checks an
//! existing report (e.g. the checked-in `results/BENCH_online_runtime.json`)
//! against the `synctime/bench_online_runtime/v1` record schema and fails
//! the process if it does not conform.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use synctime_core::online::OnlineSession;
use synctime_graph::{decompose, topology, Edge, Graph, IncrementalDecomposition};
use synctime_runtime::{Behavior, Matcher, Runtime};

const SCHEMA: &str = "synctime/bench_online_runtime/v1";

// ---------------------------------------------------- tiny Value builders

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn string(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn uint(x: u64) -> Value {
    Value::UInt(x)
}

fn float(x: f64) -> Value {
    Value::Float(x)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

/// One benchmark record. Every workload/variant emits exactly this shape so
/// downstream tooling can treat the report uniformly.
struct Record {
    workload: &'static str,
    variant: &'static str,
    processes: usize,
    /// Operations performed: messages for runtime workloads, edits for the
    /// dynamic workload.
    ops: u64,
    elapsed_ns: u128,
    /// Workload-specific extras (wakeup latency, cache counters, ...).
    detail: Value,
}

impl Record {
    fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed_ns as f64 / 1e9;
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Value {
        obj(vec![
            ("workload", string(self.workload)),
            ("variant", string(self.variant)),
            ("processes", uint(self.processes as u64)),
            ("ops", uint(self.ops)),
            ("elapsed_ns", uint(self.elapsed_ns as u64)),
            ("ops_per_sec", float(self.ops_per_sec())),
            ("detail", self.detail.clone()),
        ])
    }
}

// ------------------------------------------------------------------- ring

fn ring_behaviors(n: usize, rounds: u64) -> Vec<Behavior> {
    (0..n)
        .map(|id| -> Behavior {
            let next = (id + 1) % n;
            let prev = (id + n - 1) % n;
            Box::new(move |ctx| {
                for r in 0..rounds {
                    if ctx.id() == 0 {
                        ctx.send(next, r)?;
                        ctx.receive_from(prev)?;
                    } else {
                        ctx.receive_from(prev)?;
                        ctx.send(next, r)?;
                    }
                }
                Ok(())
            })
        })
        .collect()
}

fn bench_ring(n: usize, rounds: u64, matcher: Matcher) -> Record {
    let topo = topology::cycle(n);
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec).with_matcher(matcher);
    let started = Instant::now();
    let run = rt.run(ring_behaviors(n, rounds)).expect("ring run failed");
    let elapsed_ns = started.elapsed().as_nanos();
    let stats = run.stats();
    assert_eq!(stats.messages, n as u64 * rounds);
    Record {
        workload: "ring",
        variant: matcher_name(matcher),
        processes: n,
        ops: stats.messages,
        elapsed_ns,
        detail: obj(vec![
            ("rounds", uint(rounds)),
            ("wakeups", uint(stats.wakeups)),
            ("wakeup_p50_ns", uint(stats.wakeup_p50_ns)),
            ("wakeup_p99_ns", uint(stats.wakeup_p99_ns)),
            ("ack_latency_p50_ns", uint(stats.ack_latency_p50_ns)),
            ("total_blocked_ns", uint(stats.total_blocked_ns)),
        ]),
    }
}

// ---------------------------------------------------------- client-server

fn client_server_behaviors(servers: usize, clients: usize, rounds: u64) -> Vec<Behavior> {
    // topology::client_server(s, c): servers are 0..s, clients s..s+c, with
    // every client wired to every server. Client k talks to server k mod s;
    // each server round-robins its own clients in id order.
    let mut behaviors: Vec<Behavior> = Vec::with_capacity(servers + clients);
    for s in 0..servers {
        let mine: Vec<usize> = (0..clients)
            .filter(|c| c % servers == s)
            .map(|c| servers + c)
            .collect();
        behaviors.push(Box::new(move |ctx| {
            for _ in 0..rounds {
                for &c in &mine {
                    let (x, _) = ctx.receive_from(c)?;
                    ctx.send(c, x + 1)?;
                }
            }
            Ok(())
        }));
    }
    for c in 0..clients {
        let server = c % servers;
        behaviors.push(Box::new(move |ctx| {
            for r in 0..rounds {
                ctx.send(server, r)?;
                ctx.receive_from(server)?;
            }
            Ok(())
        }));
    }
    behaviors
}

fn bench_client_server(servers: usize, clients: usize, rounds: u64, matcher: Matcher) -> Record {
    let topo = topology::client_server(servers, clients);
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec).with_matcher(matcher);
    let started = Instant::now();
    let run = rt
        .run(client_server_behaviors(servers, clients, rounds))
        .expect("client-server run failed");
    let elapsed_ns = started.elapsed().as_nanos();
    let stats = run.stats();
    assert_eq!(stats.messages, 2 * clients as u64 * rounds);
    Record {
        workload: "client_server",
        variant: matcher_name(matcher),
        processes: servers + clients,
        ops: stats.messages,
        elapsed_ns,
        detail: obj(vec![
            ("servers", uint(servers as u64)),
            ("clients", uint(clients as u64)),
            ("rounds", uint(rounds)),
            ("wakeups", uint(stats.wakeups)),
            ("wakeup_p50_ns", uint(stats.wakeup_p50_ns)),
            ("ack_latency_p50_ns", uint(stats.ack_latency_p50_ns)),
            ("total_blocked_ns", uint(stats.total_blocked_ns)),
        ]),
    }
}

// --------------------------------------------------------------- dynamic

/// A deterministic random edit sequence: remove an existing edge, insert a
/// currently absent one, alternating, always keeping at least one edge.
fn edit_sequence(base: &Graph, edits: usize, rng: &mut StdRng) -> Vec<(bool, Edge)> {
    let mut g = base.clone();
    let n = g.node_count();
    let mut plan = Vec::with_capacity(edits);
    while plan.len() < edits {
        let remove = plan.len() % 2 == 0 && g.edge_count() > 1;
        if remove {
            let all: Vec<Edge> = g.edges().collect();
            let e = all[rng.gen_range(0..all.len())];
            g.remove_edge(e.lo(), e.hi());
            plan.push((false, e));
        } else {
            let (u, v) = loop {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    break (u, v);
                }
            };
            g.add_edge(u, v);
            plan.push((true, Edge::new(u, v)));
        }
    }
    plan
}

fn bench_dynamic(edits: usize) -> (Record, Record) {
    let mut rng = StdRng::seed_from_u64(42);
    let base = topology::random_connected(96, 160, &mut rng);
    let plan = edit_sequence(&base, edits, &mut rng);

    // Incremental: patch the cached decomposition and rebase a running
    // session's clocks via the reported remap — the full maintenance cost a
    // live system would pay per reconfiguration.
    let started = Instant::now();
    let mut cache = IncrementalDecomposition::new(&base);
    let mut session = OnlineSession::new(cache.decomposition(), base.node_count());
    for (insert, e) in &plan {
        let remap = if *insert {
            cache.insert_edge(e.lo(), e.hi()).expect("planned insert")
        } else {
            cache.remove_edge(e.lo(), e.hi()).expect("planned removal")
        };
        session
            .reconfigure(cache.decomposition(), &remap)
            .expect("remap matches decomposition");
    }
    let incremental_ns = started.elapsed().as_nanos();
    cache
        .decomposition()
        .validate(cache.graph())
        .expect("cache stays valid");
    let incremental = Record {
        workload: "dynamic",
        variant: "incremental",
        processes: base.node_count(),
        ops: plan.len() as u64,
        elapsed_ns: incremental_ns,
        detail: obj(vec![
            ("base_edges", uint(base.edge_count() as u64)),
            ("fast_path_hits", uint(cache.fast_path_hits())),
            ("rebuilds", uint(cache.rebuilds())),
            ("final_dimension", uint(cache.decomposition().len() as u64)),
        ]),
    };

    // Baseline: apply the same edits to a plain graph and re-run greedy
    // from scratch each time (PR 1's only option; clocks restart too, so
    // the session cost is a fresh construction per edit).
    let started = Instant::now();
    let mut g = base.clone();
    let mut dim = 0usize;
    for (insert, e) in &plan {
        if *insert {
            g.add_edge(e.lo(), e.hi());
        } else {
            g.remove_edge(e.lo(), e.hi());
        }
        let dec = decompose::greedy(&g);
        let session = OnlineSession::new(&dec, g.node_count());
        let _ = session.stamped();
        dim = dec.len();
    }
    let recompute_ns = started.elapsed().as_nanos();
    let recompute = Record {
        workload: "dynamic",
        variant: "recompute",
        processes: base.node_count(),
        ops: plan.len() as u64,
        elapsed_ns: recompute_ns,
        detail: obj(vec![
            ("base_edges", uint(base.edge_count() as u64)),
            ("final_dimension", uint(dim as u64)),
        ]),
    };
    (incremental, recompute)
}

fn matcher_name(m: Matcher) -> &'static str {
    match m {
        Matcher::Parking => "parking",
        Matcher::Polling => "polling",
    }
}

// ------------------------------------------------------------ the report

fn run_suite(smoke: bool) -> Value {
    let (ring_rounds, cs_rounds, edits) = if smoke {
        (10, 2, 24)
    } else {
        (2000, 200, 1200)
    };
    let mut records = Vec::new();
    eprintln!("online_runtime: ring ({ring_rounds} rounds x 6 processes, both matchers)");
    records.push(bench_ring(6, ring_rounds, Matcher::Parking));
    records.push(bench_ring(6, ring_rounds, Matcher::Polling));
    eprintln!("online_runtime: client_server ({cs_rounds} rounds, 3x12, both matchers)");
    records.push(bench_client_server(3, 12, cs_rounds, Matcher::Parking));
    records.push(bench_client_server(3, 12, cs_rounds, Matcher::Polling));
    eprintln!("online_runtime: dynamic ({edits} edits, incremental vs recompute)");
    let (inc, rec) = bench_dynamic(edits);
    records.push(inc);
    records.push(rec);

    let rate = |workload: &str, variant: &str| -> f64 {
        records
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .map(Record::ops_per_sec)
            .unwrap_or(0.0)
    };
    let speedup = |workload: &str, fast: &str, slow: &str| -> f64 {
        let denominator = rate(workload, slow);
        if denominator > 0.0 {
            rate(workload, fast) / denominator
        } else {
            0.0
        }
    };
    obj(vec![
        ("schema", string(SCHEMA)),
        ("mode", string(if smoke { "smoke" } else { "full" })),
        (
            "records",
            Value::Array(records.iter().map(Record::to_json).collect()),
        ),
        (
            "derived",
            obj(vec![
                (
                    "ring_speedup_parking_vs_polling",
                    float(speedup("ring", "parking", "polling")),
                ),
                (
                    "client_server_speedup_parking_vs_polling",
                    float(speedup("client_server", "parking", "polling")),
                ),
                (
                    "dynamic_speedup_incremental_vs_recompute",
                    float(speedup("dynamic", "incremental", "recompute")),
                ),
            ]),
        ),
    ])
}

// ---------------------------------------------------------- validation

/// Checks a report against the v1 record schema. Returns every violation
/// found (empty = conforming).
fn validate_report(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get_field("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("top-level \"schema\" must be \"{SCHEMA}\""));
    }
    match doc.get_field("mode").and_then(Value::as_str) {
        Some("full") | Some("smoke") => {}
        other => errs.push(format!(
            "\"mode\" must be \"full\" or \"smoke\", got {other:?}"
        )),
    }
    let Some(records) = doc.get_field("records").and_then(Value::as_array) else {
        errs.push("\"records\" must be an array".to_string());
        return errs;
    };
    if records.is_empty() {
        errs.push("\"records\" must not be empty".to_string());
    }
    for (i, r) in records.iter().enumerate() {
        for key in ["workload", "variant"] {
            if r.get_field(key).and_then(Value::as_str).is_none() {
                errs.push(format!("records[{i}].{key} must be a string"));
            }
        }
        for key in ["processes", "ops", "elapsed_ns"] {
            if r.get_field(key).and_then(as_u64).is_none() {
                errs.push(format!("records[{i}].{key} must be an unsigned integer"));
            }
        }
        match r.get_field("ops_per_sec").and_then(as_f64) {
            Some(value) if value > 0.0 => {}
            _ => errs.push(format!(
                "records[{i}].ops_per_sec must be a positive number"
            )),
        }
        match r.get_field("detail") {
            Some(Value::Object(_)) => {}
            _ => errs.push(format!("records[{i}].detail must be an object")),
        }
    }
    match doc.get_field("derived") {
        Some(Value::Object(_)) => {}
        _ => errs.push("\"derived\" must be an object".to_string()),
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out expects a path").clone()),
            "--validate" => {
                validate = Some(it.next().expect("--validate expects a path").clone());
            }
            // Tolerate cargo-bench plumbing (--bench, filter strings, ...).
            _ => {}
        }
    }

    let report = run_suite(smoke);
    let mut failures = validate_report(&report);
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
    match &out {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("online_runtime: report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = &validate {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc: Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
        let errs = validate_report(&doc);
        if errs.is_empty() {
            eprintln!("online_runtime: {path} conforms to {SCHEMA}");
        } else {
            failures.extend(errs.into_iter().map(|e| format!("{path}: {e}")));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("online_runtime: SCHEMA VIOLATION: {f}");
        }
        std::process::exit(1);
    }
}
