//! Ablation: step 3 of the greedy algorithm (Figure 7) seeds its double
//! star at the edge with the most adjacent edges. The paper notes the
//! correctness and ratio bound do not depend on that choice — "however, by
//! deleting as large number of edges as possible in each step, one would
//! expect to have a smaller edge decomposition". This ablation measures
//! that expectation against an arbitrary (first-edge) rule.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_graph::decompose::{greedy_with_rule, Step3Rule};
use synctime_graph::topology;

#[derive(Serialize)]
struct Record {
    family: String,
    graphs: usize,
    avg_max_adjacency: f64,
    avg_first_edge: f64,
    max_adj_wins: usize,
    first_wins: usize,
    ties: usize,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut records = Vec::new();
    let mut cases: Vec<(String, Vec<synctime_graph::Graph>)> = Vec::new();
    for (n, p) in [(10, 0.3), (10, 0.6), (16, 0.3), (16, 0.6), (24, 0.2)] {
        let graphs = (0..40)
            .map(|_| topology::gnp(n, p, &mut rng))
            .filter(|g| !g.is_empty())
            .collect();
        cases.push((format!("gnp({n}, {p})"), graphs));
    }
    cases.push((
        "complete(8..12)".into(),
        (8..=12).map(topology::complete).collect(),
    ));
    cases.push((
        "grid(4x4..6x6)".into(),
        (4..=6).map(|k| topology::grid(k, k)).collect(),
    ));

    for (family, graphs) in cases {
        let mut sum_max = 0usize;
        let mut sum_first = 0usize;
        let (mut wins_max, mut wins_first, mut ties) = (0, 0, 0);
        for g in &graphs {
            let a = greedy_with_rule(g, Step3Rule::MaxAdjacency);
            let b = greedy_with_rule(g, Step3Rule::FirstEdge);
            a.validate(g).expect("valid");
            b.validate(g).expect("valid");
            sum_max += a.len();
            sum_first += b.len();
            match a.len().cmp(&b.len()) {
                std::cmp::Ordering::Less => wins_max += 1,
                std::cmp::Ordering::Greater => wins_first += 1,
                std::cmp::Ordering::Equal => ties += 1,
            }
        }
        records.push(Record {
            family,
            graphs: graphs.len(),
            avg_max_adjacency: sum_max as f64 / graphs.len() as f64,
            avg_first_edge: sum_first as f64 / graphs.len() as f64,
            max_adj_wins: wins_max,
            first_wins: wins_first,
            ties,
        });
    }

    let mut table = Table::new(&[
        "family",
        "graphs",
        "avg max-adj",
        "avg first-edge",
        "max-adj wins",
        "first wins",
        "ties",
    ]);
    for r in &records {
        table.row(&[
            r.family.clone(),
            r.graphs.to_string(),
            format!("{:.2}", r.avg_max_adjacency),
            format!("{:.2}", r.avg_first_edge),
            r.max_adj_wins.to_string(),
            r.first_wins.to_string(),
            r.ties.to_string(),
        ]);
    }
    emit(
        "Ablation — greedy step-3 seed rule: max-adjacency (paper) vs arbitrary first edge",
        &table,
        &records,
    );
}
