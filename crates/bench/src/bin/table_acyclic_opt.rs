//! Experiment T4 (Theorem 7): the greedy algorithm is *optimal* on acyclic
//! graphs. Sweeps random forests and trees of growing size and compares
//! greedy to the exact optimum edge-by-edge.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_graph::{decompose, topology};

#[derive(Serialize)]
struct Record {
    n: usize,
    trees: usize,
    optimal_matches: usize,
    avg_groups: f64,
    stars_only: bool,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1950); // Dilworth's year
    let mut records = Vec::new();
    for n in [3, 5, 8, 12, 16, 20, 26] {
        let trees = 50;
        let mut matches = 0;
        let mut total_groups = 0usize;
        let mut stars_only = true;
        for _ in 0..trees {
            let g = topology::random_tree(n, &mut rng);
            let greedy = decompose::greedy(&g);
            greedy.validate(&g).expect("valid decomposition");
            stars_only &= greedy.triangle_count() == 0;
            total_groups += greedy.len();
            if g.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT {
                if greedy.len() == decompose::alpha(&g) {
                    matches += 1;
                }
            } else {
                // Beyond the exact-search limit use the matching lower
                // bound as the certificate; Theorem 7 says greedy equals it
                // on trees when the bound is tight.
                if greedy.len() >= decompose::matching_lower_bound(&g) {
                    matches += 1;
                }
            }
        }
        records.push(Record {
            n,
            trees,
            optimal_matches: matches,
            avg_groups: total_groups as f64 / trees as f64,
            stars_only,
        });
    }

    let mut table = Table::new(&["n", "trees", "greedy==opt", "avg groups", "stars only"]);
    for r in &records {
        table.row(&[
            r.n.to_string(),
            r.trees.to_string(),
            format!("{}/{}", r.optimal_matches, r.trees),
            format!("{:.2}", r.avg_groups),
            r.stars_only.to_string(),
        ]);
        assert_eq!(
            r.optimal_matches, r.trees,
            "Theorem 7 violated at n={}",
            r.n
        );
    }
    emit(
        "T4 / Theorem 7 — greedy is optimal on random trees (match rate must be 100%)",
        &table,
        &records,
    );
}
