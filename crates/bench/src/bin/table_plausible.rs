//! Experiment R1 (Section 6 comparison): plausible clocks vs the paper's
//! edge-decomposition clocks at equal size.
//!
//! Plausible clocks (Torres-Rojas & Ahamad) are also constant-size, but
//! only *approximate*: concurrent messages can appear ordered. At the same
//! vector size `d` as our exact clocks, this table measures how much
//! concurrency they misreport — the qualitative gap the paper claims for
//! topology-aware dimensions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_core::online::OnlineStamper;
use synctime_core::plausible;
use synctime_graph::{decompose, topology, Graph};
use synctime_sim::workload::random_computation;
use synctime_trace::Oracle;

#[derive(Serialize)]
struct Record {
    family: String,
    n: usize,
    ours_dim: usize,
    ours_conc_recall: f64,
    plaus_same_size_recall: f64,
    plaus_half_n_recall: f64,
    concurrent_pairs: usize,
}

fn measure(family: &str, topo: &Graph, msgs: usize, seed: u64) -> Record {
    let mut rng = StdRng::seed_from_u64(seed);
    let comp = random_computation(topo, msgs, &mut rng);
    let oracle = Oracle::new(&comp);
    let dec = decompose::best_known(topo);
    let ours = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
    let ours_acc = plausible::accuracy(&ours, &oracle);
    assert_eq!(ours_acc.ordered_recall, 1.0);
    assert_eq!(ours_acc.concurrency_recall, 1.0, "ours is exact");

    let same = plausible::accuracy(&plausible::stamp_messages(&comp, dec.len()), &oracle);
    let half = plausible::accuracy(
        &plausible::stamp_messages(&comp, (topo.node_count() / 2).max(1)),
        &oracle,
    );
    assert_eq!(same.ordered_recall, 1.0, "plausible clocks stay consistent");
    Record {
        family: family.to_string(),
        n: topo.node_count(),
        ours_dim: dec.len(),
        ours_conc_recall: ours_acc.concurrency_recall,
        plaus_same_size_recall: same.concurrency_recall,
        plaus_half_n_recall: half.concurrency_recall,
        concurrent_pairs: same.concurrent_pairs,
    }
}

fn main() {
    let records = vec![
        measure(
            "client_server(3x20)",
            &topology::client_server(3, 20),
            300,
            1,
        ),
        measure(
            "client_server(2x40)",
            &topology::client_server(2, 40),
            300,
            2,
        ),
        measure("tree(fig4)", &topology::figure4_tree(), 250, 3),
        measure("tree(2^5)", &topology::balanced_tree(2, 4), 250, 4),
        measure("complete(12)", &topology::complete(12), 300, 5),
        measure("grid(4x4)", &topology::grid(4, 4), 250, 6),
    ];

    let mut table = Table::new(&[
        "family",
        "N",
        "d (ours)",
        "ours conc.",
        "plausible@d",
        "plausible@N/2",
        "conc. pairs",
    ]);
    for r in &records {
        table.row(&[
            r.family.clone(),
            r.n.to_string(),
            r.ours_dim.to_string(),
            format!("{:.3}", r.ours_conc_recall),
            format!("{:.3}", r.plaus_same_size_recall),
            format!("{:.3}", r.plaus_half_n_recall),
            r.concurrent_pairs.to_string(),
        ]);
    }
    emit(
        "R1 / Section 6 — concurrency recall: exact edge-decomposition clocks vs plausible clocks",
        &table,
        &records,
    );
}
