//! Experiment T2 (Theorem 5): timestamp dimension per topology family.
//!
//! For each family and size, reports the dimension our constructions
//! achieve (greedy Figure 7, vertex-cover stars, best-known), the exact
//! vertex cover β(G) where feasible, the paper's `min(β, N−2)` bound, and
//! the Fidge–Mattern baseline `N`. The paper's claims to check: star and
//! triangle are 1; client–server equals #servers; trees track hub counts;
//! the complete graph is the worst case at `N − 2`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_graph::{cover, decompose, topology, Graph};

#[derive(Serialize)]
struct Record {
    family: String,
    n: usize,
    edges: usize,
    greedy: usize,
    vertex_cover_stars: usize,
    best: usize,
    beta: Option<usize>,
    bound: Option<usize>,
    fm: usize,
}

fn measure(family: &str, g: &Graph) -> Record {
    let n = g.node_count();
    let greedy = decompose::greedy(g);
    greedy
        .validate(g)
        .expect("greedy output is a valid decomposition");
    let (beta, vc_dec) = if n <= 26 {
        let c = cover::exact_min(g);
        (Some(c.len()), decompose::from_vertex_cover(g, &c))
    } else {
        let c = cover::greedy_max_degree(g);
        (None, decompose::from_vertex_cover(g, &c))
    };
    vc_dec.validate(g).expect("cover decomposition is valid");
    let best = decompose::best_known(g);
    best.validate(g).expect("best decomposition is valid");
    Record {
        family: family.to_string(),
        n,
        edges: g.edge_count(),
        greedy: greedy.len(),
        vertex_cover_stars: vc_dec.len(),
        best: best.len(),
        beta,
        bound: beta.map(|b| b.min(n.saturating_sub(2))),
        fm: n,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2002);
    let mut records = Vec::new();

    for leaves in [4, 16, 64] {
        records.push(measure("star", &topology::star(leaves)));
    }
    records.push(measure("triangle", &topology::triangle()));
    for n in [4, 6, 8, 12, 16] {
        records.push(measure("complete", &topology::complete(n)));
    }
    for (s, c) in [(2, 8), (3, 24), (4, 64)] {
        records.push(measure("client-server", &topology::client_server(s, c)));
    }
    records.push(measure("tree(fig4)", &topology::figure4_tree()));
    for depth in [3, 5, 7] {
        records.push(measure("tree(binary)", &topology::balanced_tree(2, depth)));
    }
    for n in [8, 16, 32] {
        records.push(measure("random-tree", &topology::random_tree(n, &mut rng)));
    }
    for n in [8, 12, 16] {
        records.push(measure(
            "random-sparse",
            &topology::random_connected(n, n / 2, &mut rng),
        ));
    }
    for n in [6, 8, 10] {
        records.push(measure("cycle", &topology::cycle(n)));
    }
    records.push(measure("grid", &topology::grid(4, 4)));
    for d in [3, 4] {
        records.push(measure("hypercube", &topology::hypercube(d)));
    }
    records.push(measure("torus", &topology::torus(3, 4)));
    for rim in [5, 9] {
        records.push(measure("wheel", &topology::wheel(rim)));
    }
    records.push(measure("barbell", &topology::barbell(4, 3)));
    records.push(measure("figure2b", &topology::figure2b()));

    let mut table = Table::new(&[
        "family",
        "N",
        "|E|",
        "greedy",
        "vc-stars",
        "best",
        "beta",
        "min(b,N-2)",
        "FM",
    ]);
    for r in &records {
        table.row(&[
            r.family.clone(),
            r.n.to_string(),
            r.edges.to_string(),
            r.greedy.to_string(),
            r.vertex_cover_stars.to_string(),
            r.best.to_string(),
            r.beta.map_or("-".into(), |b| b.to_string()),
            r.bound.map_or("-".into(), |b| b.to_string()),
            r.fm.to_string(),
        ]);
        // The Theorem 5 bound holds whenever we could compute it.
        if let Some(bound) = r.bound {
            assert!(
                r.best <= bound.max(1),
                "{}: best {} > bound {}",
                r.family,
                r.best,
                bound
            );
        }
    }
    emit(
        "T2 / Theorem 5 — timestamp dimension by topology (FM needs N)",
        &table,
        &records,
    );
}
