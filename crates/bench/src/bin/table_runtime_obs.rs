//! Experiment R3: observability summaries of real threaded runs.
//!
//! Runs token-ring and client-server workloads on the threaded rendezvous
//! runtime and reports each run's [`RunStats`]: message counts, ack-latency
//! percentiles (the cost of the Figure 5 acknowledgement round-trip), total
//! wire bytes with the `d`-component piggybacked vectors, and the largest
//! vector component. This is the table form of `synctime run --stats`.

use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_graph::{decompose, topology, Graph};
use synctime_runtime::{Behavior, RunStats, Runtime};

#[derive(Serialize)]
struct Record {
    workload: String,
    processes: usize,
    dim: usize,
    stats: RunStats,
}

/// Token ring: process 0 injects a token that makes `rounds` trips.
fn ring_behaviors(n: usize, rounds: usize) -> Vec<Behavior> {
    (0..n)
        .map(|p| -> Behavior {
            Box::new(move |ctx| {
                for i in 0..rounds {
                    if p == 0 {
                        ctx.send(1, i as u64)?;
                        ctx.receive_from(n - 1)?;
                    } else {
                        let (token, _) = ctx.receive_from(p - 1)?;
                        ctx.send((p + 1) % n, token)?;
                    }
                }
                Ok(())
            })
        })
        .collect()
}

/// Client-server: every client sends `requests` requests to its server
/// (round-robin over servers) and awaits a reply for each.
fn client_server_behaviors(servers: usize, clients: usize, requests: usize) -> Vec<Behavior> {
    let mut behaviors: Vec<Behavior> = Vec::with_capacity(servers + clients);
    for s in 0..servers {
        // Server s serves the clients assigned to it, in a fixed order.
        let mine: Vec<usize> = (0..clients)
            .filter(|c| c % servers == s)
            .map(|c| servers + c)
            .collect();
        behaviors.push(Box::new(move |ctx| {
            for _ in 0..requests {
                for &c in &mine {
                    let (x, _) = ctx.receive_from(c)?;
                    ctx.send(c, x + 1)?;
                }
            }
            Ok(())
        }));
    }
    for c in 0..clients {
        let server = c % servers;
        behaviors.push(Box::new(move |ctx| {
            for i in 0..requests {
                ctx.send(server, i as u64)?;
                ctx.receive_from(server)?;
            }
            Ok(())
        }));
    }
    behaviors
}

fn measure(workload: &str, topo: &Graph, behaviors: Vec<Behavior>) -> Record {
    let dec = decompose::best_known(topo);
    let run = Runtime::new(topo, &dec)
        .run(behaviors)
        .expect("workload deadlocked");
    Record {
        workload: workload.to_string(),
        processes: topo.node_count(),
        dim: dec.len(),
        stats: run.stats().clone(),
    }
}

fn main() {
    let records = vec![
        measure("ring(4) x 50", &topology::cycle(4), ring_behaviors(4, 50)),
        measure("ring(8) x 50", &topology::cycle(8), ring_behaviors(8, 50)),
        measure(
            "clients(2x8) x 25",
            &topology::client_server(2, 8),
            client_server_behaviors(2, 8, 25),
        ),
        measure(
            "clients(4x16) x 10",
            &topology::client_server(4, 16),
            client_server_behaviors(4, 16, 10),
        ),
    ];

    let mut table = Table::new(&[
        "workload",
        "N",
        "d",
        "msgs",
        "wire KiB",
        "ack p50 us",
        "ack p99 us",
        "max comp",
    ]);
    for r in &records {
        table.row(&[
            r.workload.clone(),
            r.processes.to_string(),
            r.dim.to_string(),
            r.stats.messages.to_string(),
            format!("{:.1}", r.stats.total_wire_bytes as f64 / 1024.0),
            format!("{:.1}", r.stats.ack_latency_p50_ns as f64 / 1e3),
            format!("{:.1}", r.stats.ack_latency_p99_ns as f64 / 1e3),
            r.stats.max_vector_component.to_string(),
        ]);
        // Sanity: the counters are consistent with the workload shape.
        assert_eq!(r.stats.messages, r.stats.receives);
        assert!(r.stats.messages > 0);
        assert!(r.stats.ack_latency_p50_ns > 0);
        // Every message would carry key + payload + d vector, acked with a
        // d vector, at full width — that baseline is counted at both
        // endpoints; the actual bytes ride per-channel delta streams and
        // never exceed it.
        assert_eq!(
            r.stats.total_wire_bytes_full,
            r.stats.messages * 2 * (16 + 16 * r.dim as u64)
        );
        assert!(r.stats.total_wire_bytes > 0);
        assert!(r.stats.total_wire_bytes <= r.stats.total_wire_bytes_full);
    }
    emit(
        "R3 — threaded runtime observability (RunStats per workload)",
        &table,
        &records,
    );
}
