//! Experiment T3 (Theorem 6): the greedy decomposition is within a factor 2
//! of optimal, and the stars-only (vertex-cover) variant within a factor 2
//! of stars+triangles (β ≤ 2α, tight on disjoint triangles).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_graph::{cover, decompose, topology};

#[derive(Serialize)]
struct Record {
    family: String,
    graphs: usize,
    avg_greedy: f64,
    avg_opt: f64,
    worst_ratio: f64,
    avg_ratio: f64,
}

fn sweep(family: &str, graphs: Vec<synctime_graph::Graph>) -> Record {
    let mut worst: f64 = 0.0;
    let mut sum_ratio = 0.0;
    let mut sum_greedy = 0usize;
    let mut sum_opt = 0usize;
    let count = graphs.len();
    for g in &graphs {
        let greedy = decompose::greedy(g).len();
        let opt = decompose::alpha(g);
        assert!(greedy <= 2 * opt, "Theorem 6 violated: {greedy} > 2x{opt}");
        let ratio = greedy as f64 / opt as f64;
        worst = worst.max(ratio);
        sum_ratio += ratio;
        sum_greedy += greedy;
        sum_opt += opt;
    }
    Record {
        family: family.to_string(),
        graphs: count,
        avg_greedy: sum_greedy as f64 / count as f64,
        avg_opt: sum_opt as f64 / count as f64,
        worst_ratio: worst,
        avg_ratio: sum_ratio / count as f64,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut records = Vec::new();

    for (label, n, p) in [
        ("gnp(6, 0.3)", 6, 0.3),
        ("gnp(6, 0.6)", 6, 0.6),
        ("gnp(7, 0.4)", 7, 0.4),
        ("gnp(8, 0.3)", 8, 0.3),
    ] {
        let graphs: Vec<_> = std::iter::from_fn(|| Some(topology::gnp(n, p, &mut rng)))
            .filter(|g| !g.is_empty() && g.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT)
            .take(60)
            .collect();
        records.push(sweep(label, graphs));
    }
    {
        let graphs: Vec<_> = (0..60)
            .map(|_| topology::random_tree(10, &mut rng))
            .collect();
        records.push(sweep("random-tree(10)", graphs));
    }
    {
        let graphs: Vec<_> = (1..=5).map(topology::disjoint_triangles).collect();
        records.push(sweep("disjoint-triangles", graphs));
    }

    let mut table = Table::new(&[
        "family",
        "graphs",
        "avg greedy",
        "avg opt",
        "worst ratio",
        "avg ratio",
    ]);
    for r in &records {
        table.row(&[
            r.family.clone(),
            r.graphs.to_string(),
            format!("{:.2}", r.avg_greedy),
            format!("{:.2}", r.avg_opt),
            format!("{:.3}", r.worst_ratio),
            format!("{:.3}", r.avg_ratio),
        ]);
    }
    emit(
        "T3 / Theorem 6 — greedy vs optimal decomposition (ratio must stay <= 2)",
        &table,
        &records,
    );

    // The beta <= 2 alpha companion claim, tight on t disjoint triangles.
    let mut t2 = Table::new(&["t", "alpha", "beta", "beta/alpha"]);
    let mut recs2 = Vec::new();
    #[derive(Serialize)]
    struct TriRecord {
        t: usize,
        alpha: usize,
        beta: usize,
    }
    for t in 1..=6 {
        let g = topology::disjoint_triangles(t);
        let alpha = if g.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT {
            decompose::alpha(&g)
        } else {
            decompose::greedy(&g).len() // greedy is optimal here (all triangles)
        };
        let beta = cover::beta(&g);
        assert_eq!(beta, 2 * alpha, "the disjoint-triangle case is tight");
        t2.row(&[
            t.to_string(),
            alpha.to_string(),
            beta.to_string(),
            format!("{:.1}", beta as f64 / alpha as f64),
        ]);
        recs2.push(TriRecord { t, alpha, beta });
    }
    emit(
        "T3b — stars-only (vertex cover) vs stars+triangles: beta = 2*alpha on t triangles",
        &t2,
        &recs2,
    );
}
