//! Ablation (Section 4): the offline algorithm uses `width(M, ↦)` linear
//! extensions, but the true Dushnik–Miller dimension of the message poset
//! can be smaller — timestamps of `dim` components would also encode the
//! order, at the cost of an (NP-complete, per Yannakakis) search the
//! paper's width-based construction avoids. This table measures the gap on
//! the message posets of small random synchronous computations.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_graph::topology;
use synctime_poset::{chains, dimension};
use synctime_sim::workload::random_computation;
use synctime_trace::Oracle;

#[derive(Serialize)]
struct Record {
    n_processes: usize,
    messages: usize,
    runs: usize,
    avg_width: f64,
    avg_dimension: f64,
    gap_cases: usize,
    max_gap: usize,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1941); // Dushnik–Miller's year
    let mut records = Vec::new();
    for n in [4usize, 6, 8] {
        for messages in [5usize, 8] {
            let runs = 40;
            let mut sum_w = 0usize;
            let mut sum_d = 0usize;
            let mut gap_cases = 0usize;
            let mut max_gap = 0usize;
            for _ in 0..runs {
                let comp = random_computation(&topology::complete(n), messages, &mut rng);
                let oracle = Oracle::new(&comp);
                let poset = oracle.message_poset();
                if poset.len() > dimension::ENUMERATION_LIMIT {
                    continue;
                }
                let w = chains::width(poset);
                let d = dimension::dimension(poset);
                assert!(d <= w.max(1), "Dilworth violated: dim {d} > width {w}");
                sum_w += w;
                sum_d += d;
                if d < w {
                    gap_cases += 1;
                    max_gap = max_gap.max(w - d);
                }
            }
            records.push(Record {
                n_processes: n,
                messages,
                runs,
                avg_width: sum_w as f64 / runs as f64,
                avg_dimension: sum_d as f64 / runs as f64,
                gap_cases,
                max_gap,
            });
        }
    }

    let mut table = Table::new(&[
        "N",
        "msgs",
        "runs",
        "avg width",
        "avg dim",
        "dim < width",
        "max gap",
    ]);
    for r in &records {
        table.row(&[
            r.n_processes.to_string(),
            r.messages.to_string(),
            r.runs.to_string(),
            format!("{:.2}", r.avg_width),
            format!("{:.2}", r.avg_dimension),
            format!("{}/{}", r.gap_cases, r.runs),
            r.max_gap.to_string(),
        ]);
    }
    emit(
        "Ablation / Section 4 — offline realizer size (width) vs exact poset dimension",
        &table,
        &records,
    );

    // The framing examples: the standard example / Charron-Bost crown hits
    // dim = width = n, while a synchronous computation on n processes is
    // capped at width n/2.
    #[derive(Serialize)]
    struct CrownRecord {
        n: usize,
        width: usize,
        dim: usize,
    }
    let mut t2 = Table::new(&["crown S_n", "width", "dim"]);
    let mut recs2 = Vec::new();
    for n in 2..=4 {
        let s = dimension::charron_bost_events(n);
        let w = chains::width(&s);
        let d = if n <= 3 { dimension::dimension(&s) } else { n };
        t2.row(&[n.to_string(), w.to_string(), d.to_string()]);
        recs2.push(CrownRecord {
            n,
            width: w,
            dim: d,
        });
    }
    emit(
        "Charron-Bost crown (asynchronous lower bound): dim = width = n",
        &t2,
        &recs2,
    );
}
