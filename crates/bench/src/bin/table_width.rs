//! Experiment T5 (Theorem 8): the width of the message poset of a
//! synchronous computation on N processes — and hence the offline
//! timestamp dimension — is at most ⌊N/2⌋.
//!
//! Sweeps random computations over complete topologies and reports the
//! measured width distribution against the bound, plus the offline
//! dimension actually used and whether the stamps encode the poset.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_core::offline;
use synctime_graph::topology;
use synctime_poset::chains;
use synctime_sim::workload::random_computation;
use synctime_trace::Oracle;

#[derive(Serialize)]
struct Record {
    n: usize,
    messages: usize,
    runs: usize,
    bound: usize,
    max_width: usize,
    avg_width: f64,
    bound_hit: usize,
    all_encode: bool,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut records = Vec::new();
    for n in [4, 6, 8, 10, 12] {
        for messages in [n, 4 * n] {
            let runs = 30;
            let mut max_width = 0;
            let mut sum_width = 0usize;
            let mut bound_hit = 0;
            let mut all_encode = true;
            for _ in 0..runs {
                let comp = random_computation(&topology::complete(n), messages, &mut rng);
                let oracle = Oracle::new(&comp);
                let width = chains::width(oracle.message_poset());
                assert!(
                    width <= n / 2,
                    "Theorem 8 violated: width {width} > {}",
                    n / 2
                );
                max_width = max_width.max(width);
                sum_width += width;
                if width == n / 2 {
                    bound_hit += 1;
                }
                let stamps = offline::stamp_computation(&comp);
                assert_eq!(stamps.dim(), width);
                all_encode &= stamps.encodes(&oracle);
            }
            records.push(Record {
                n,
                messages,
                runs,
                bound: n / 2,
                max_width,
                avg_width: sum_width as f64 / runs as f64,
                bound_hit,
                all_encode,
            });
        }
    }

    let mut table = Table::new(&[
        "N",
        "msgs",
        "runs",
        "floor(N/2)",
        "max width",
        "avg width",
        "hit bound",
        "encodes",
    ]);
    for r in &records {
        table.row(&[
            r.n.to_string(),
            r.messages.to_string(),
            r.runs.to_string(),
            r.bound.to_string(),
            r.max_width.to_string(),
            format!("{:.2}", r.avg_width),
            format!("{}/{}", r.bound_hit, r.runs),
            r.all_encode.to_string(),
        ]);
        assert!(r.all_encode);
    }
    emit(
        "T5 / Theorem 8 — message-poset width vs the floor(N/2) bound (offline dim = width)",
        &table,
        &records,
    );
}
