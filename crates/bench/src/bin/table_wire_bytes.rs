//! Experiment R2: bytes actually piggybacked per message.
//!
//! Combines the dimension reductions with wire encodings: Fidge–Mattern
//! full vectors, FM with the Singhal–Kshemkalyani differential technique,
//! our edge-decomposition vectors full and differential, and the O(1)
//! Fowler–Zwaenepoel direct-dependency record. Our `d`-dimensional deltas
//! are the smallest payload that still answers precedence online.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_core::online::OnlineStamper;
use synctime_core::wire::{encode_full, DeltaDecoder, DeltaEncoder};
use synctime_core::{fm, MessageTimestamps};
use synctime_graph::{decompose, topology, Graph};
use synctime_sim::workload::random_computation;
use synctime_trace::SyncComputation;

#[derive(Serialize)]
struct Record {
    family: String,
    n: usize,
    dim_ours: usize,
    full_fm: f64,
    delta_fm: f64,
    full_ours: f64,
    delta_ours: f64,
    fz_bytes: f64,
}

/// Average payload bytes per message when piggybacking `stamps`' vectors
/// with full or differential encoding. The differential state keys on the
/// (sender -> receiver) channel direction, as Singhal–Kshemkalyani do.
fn avg_bytes(comp: &SyncComputation, stamps: &MessageTimestamps, delta: bool) -> f64 {
    let mut encoders: Vec<DeltaEncoder> = (0..comp.process_count())
        .map(|_| DeltaEncoder::new())
        .collect();
    let mut decoders: Vec<DeltaDecoder> = (0..comp.process_count())
        .map(|_| DeltaDecoder::new())
        .collect();
    let mut total = 0usize;
    for m in comp.messages() {
        let v = stamps.vector(m.id);
        if delta {
            let bytes = encoders[m.sender].encode(m.receiver, v);
            let decoded = decoders[m.receiver]
                .decode(m.sender, &bytes)
                .expect("stream decodes");
            assert_eq!(&decoded, v);
            total += bytes.len();
        } else {
            total += encode_full(v).len();
        }
    }
    total as f64 / comp.message_count() as f64
}

fn measure(family: &str, topo: &Graph, msgs: usize, seed: u64) -> Record {
    let mut rng = StdRng::seed_from_u64(seed);
    let comp = random_computation(topo, msgs, &mut rng);
    let dec = decompose::best_known(topo);
    let ours = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
    let fm_stamps = fm::stamp_messages(&comp);
    Record {
        family: family.to_string(),
        n: topo.node_count(),
        dim_ours: dec.len(),
        full_fm: avg_bytes(&comp, &fm_stamps, false),
        delta_fm: avg_bytes(&comp, &fm_stamps, true),
        full_ours: avg_bytes(&comp, &ours, false),
        delta_ours: avg_bytes(&comp, &ours, true),
        // Fowler-Zwaenepoel piggybacks two optional message ids (varint),
        // ~2 x 3 bytes at these trace sizes plus a 1-byte presence tag.
        fz_bytes: 7.0,
    }
}

fn main() {
    let records = vec![
        measure(
            "client_server(4x32)",
            &topology::client_server(4, 32),
            800,
            1,
        ),
        measure(
            "client_server(4x96)",
            &topology::client_server(4, 96),
            800,
            2,
        ),
        measure("star(48)", &topology::star(48), 800, 3),
        measure("tree(2^6)", &topology::balanced_tree(2, 5), 800, 4),
        measure("complete(32)", &topology::complete(32), 800, 5),
    ];

    let mut table = Table::new(&[
        "family",
        "N",
        "d",
        "FM full",
        "FM delta",
        "ours full",
        "ours delta",
        "FZ (offline)",
    ]);
    for r in &records {
        table.row(&[
            r.family.clone(),
            r.n.to_string(),
            r.dim_ours.to_string(),
            format!("{:.1}", r.full_fm),
            format!("{:.1}", r.delta_fm),
            format!("{:.1}", r.full_ours),
            format!("{:.1}", r.delta_ours),
            format!("{:.1}", r.fz_bytes),
        ]);
        // The dimension reduction always wins. The differential encoding
        // is workload-dependent: it helps when few entries change between
        // successive transmissions on a channel, and its index overhead
        // can exceed the savings otherwise — both outcomes are recorded.
        assert!(r.full_ours <= r.full_fm);
    }
    emit(
        "R2 — piggyback payload bytes per message (avg): dimension x encoding",
        &table,
        &records,
    );
}
