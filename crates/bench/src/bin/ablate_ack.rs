//! Ablation: what does piggybacking cost the runtime?
//!
//! The Figure 5 protocol rides on the acknowledgements that a synchronous
//! message implementation needs anyway (Murty & Garg). This ablation
//! measures wall-clock per rendezvous on the threaded runtime with
//! timestamping (vectors of several dimensions) against a bare
//! rendezvous-only baseline implemented with the same channel structure,
//! isolating the cost of carrying and merging the vectors.

use std::sync::mpsc::sync_channel;
use std::time::Instant;

use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_graph::{decompose, topology};
use synctime_runtime::{Behavior, Runtime};

const ROUNDS: u64 = 20_000;

/// Bare two-thread rendezvous (zero-capacity channel + ack channel), no
/// vectors at all: the floor the protocol adds its piggybacking onto.
fn bare_rendezvous_ns() -> f64 {
    let (dtx, drx) = sync_channel::<u64>(0);
    let (atx, arx) = sync_channel::<u64>(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            for i in 0..ROUNDS {
                dtx.send(i).unwrap();
                arx.recv().unwrap();
            }
        });
        s.spawn(move || {
            for _ in 0..ROUNDS {
                let x = drx.recv().unwrap();
                atx.send(x).unwrap();
            }
        });
    });
    start.elapsed().as_nanos() as f64 / ROUNDS as f64
}

/// Timestamped rendezvous over a `leaves`-leaf star (dimension 1) or a
/// complete graph (dimension n-2): ping messages from one leaf.
fn stamped_rendezvous_ns(dim_hint: &str) -> (usize, f64) {
    let (topo, a, b) = match dim_hint {
        "star" => (topology::star(2), 1usize, 0usize),
        _ => (topology::complete(12), 1usize, 0usize),
    };
    let dec = decompose::best_known(&topo);
    let dim = dec.len();
    let rt = Runtime::new(&topo, &dec);
    let sender: Behavior = Box::new(move |ctx| {
        for i in 0..ROUNDS {
            ctx.send(b, i)?;
        }
        Ok(())
    });
    let receiver: Behavior = Box::new(move |ctx| {
        for _ in 0..ROUNDS {
            ctx.receive_from(a)?;
        }
        Ok(())
    });
    let mut behaviors: Vec<Behavior> = vec![];
    for p in 0..topo.node_count() {
        if p == a {
            behaviors.push(Box::new(|_| Ok(()))); // placeholder, replaced below
        } else if p == b {
            behaviors.push(Box::new(|_| Ok(())));
        } else {
            behaviors.push(Box::new(|_| Ok(())));
        }
    }
    behaviors[a] = sender;
    behaviors[b] = receiver;
    let start = Instant::now();
    rt.run(behaviors).expect("run succeeds");
    (dim, start.elapsed().as_nanos() as f64 / ROUNDS as f64)
}

#[derive(Serialize)]
struct Record {
    configuration: String,
    dim: usize,
    ns_per_rendezvous: f64,
}

fn main() {
    let mut records = Vec::new();
    let bare = bare_rendezvous_ns();
    records.push(Record {
        configuration: "bare rendezvous (no clocks)".into(),
        dim: 0,
        ns_per_rendezvous: bare,
    });
    for hint in ["star", "complete"] {
        let (dim, ns) = stamped_rendezvous_ns(hint);
        records.push(Record {
            configuration: format!("figure 5 protocol over {hint}"),
            dim,
            ns_per_rendezvous: ns,
        });
    }

    let mut table = Table::new(&["configuration", "dim", "ns/rendezvous", "overhead"]);
    for r in &records {
        table.row(&[
            r.configuration.clone(),
            r.dim.to_string(),
            format!("{:.0}", r.ns_per_rendezvous),
            if r.dim == 0 {
                "baseline".to_string()
            } else {
                format!("{:+.1}%", (r.ns_per_rendezvous / bare - 1.0) * 100.0)
            },
        ]);
    }
    emit(
        "Ablation — piggybacking cost per rendezvous on the threaded runtime",
        &table,
        &records,
    );
}
