//! Experiment P2 (Section 1/3.3 claim): for client–server systems with a
//! fixed number of servers, timestamp size is *constant* in the number of
//! clients, while Fidge–Mattern grows linearly. Reports the dimensions and
//! the per-message piggyback payload (8 bytes per component).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_core::fm;
use synctime_core::online::OnlineStamper;
use synctime_graph::decompose;
use synctime_sim::scenarios;
use synctime_trace::Oracle;

#[derive(Serialize)]
struct Record {
    servers: usize,
    clients: usize,
    processes: usize,
    ours_dim: usize,
    fm_dim: usize,
    ours_bytes: usize,
    fm_bytes: usize,
    encodes: bool,
}

fn main() {
    let mut records = Vec::new();
    for servers in [2, 4] {
        for clients in [4, 8, 16, 32, 64, 128] {
            let mut rng = StdRng::seed_from_u64(servers as u64 * 1000 + clients as u64);
            let sc = scenarios::client_server_rpc(servers, clients, 40, &mut rng);
            let dec = decompose::best_known(&sc.topology);
            let stamps = OnlineStamper::new(&dec)
                .stamp_computation(&sc.computation)
                .expect("decomposition covers the topology");
            let fm_stamps = fm::stamp_messages(&sc.computation);
            let oracle = Oracle::new(&sc.computation);
            let encodes = stamps.encodes(&oracle) && fm_stamps.encodes(&oracle);
            records.push(Record {
                servers,
                clients,
                processes: sc.topology.node_count(),
                ours_dim: stamps.dim(),
                fm_dim: fm_stamps.dim(),
                ours_bytes: stamps.dim() * 8,
                fm_bytes: fm_stamps.dim() * 8,
                encodes,
            });
        }
    }

    let mut table = Table::new(&[
        "servers",
        "clients",
        "N",
        "ours",
        "FM",
        "ours B/msg",
        "FM B/msg",
        "encodes",
    ]);
    for r in &records {
        table.row(&[
            r.servers.to_string(),
            r.clients.to_string(),
            r.processes.to_string(),
            r.ours_dim.to_string(),
            r.fm_dim.to_string(),
            r.ours_bytes.to_string(),
            r.fm_bytes.to_string(),
            r.encodes.to_string(),
        ]);
        assert!(r.encodes);
        assert_eq!(r.ours_dim, r.servers.min(r.clients));
        assert_eq!(r.fm_dim, r.processes);
    }
    emit(
        "P2 — client-server scaling: constant-dimension timestamps vs FM's N",
        &table,
        &records,
    );
}
