//! Experiment T1 (Theorem 4): the headline equivalence
//! `m1 ↦ m2 ⟺ v(m1) < v(m2)` checked exhaustively across topology
//! families, workload sizes and seeds, for all three encodings (online,
//! offline, Fidge–Mattern) plus the Section 5 event stamps (Theorem 9).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use synctime_bench::{emit, Table};
use synctime_core::online::OnlineStamper;
use synctime_core::{events, fm, offline};
use synctime_graph::{decompose, topology, Graph};
use synctime_sim::workload::RandomWorkload;
use synctime_trace::Oracle;

#[derive(Serialize)]
struct Record {
    family: String,
    runs: usize,
    messages_total: usize,
    pairs_checked: u64,
    online_ok: usize,
    offline_ok: usize,
    fm_ok: usize,
    events_ok: usize,
}

fn sweep(family: &str, topos: &[Graph], msgs: usize, seeds: u64) -> Record {
    let mut rec = Record {
        family: family.to_string(),
        runs: 0,
        messages_total: 0,
        pairs_checked: 0,
        online_ok: 0,
        offline_ok: 0,
        fm_ok: 0,
        events_ok: 0,
    };
    for topo in topos {
        let dec = decompose::best_known(topo);
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let comp = RandomWorkload::messages(msgs)
                .with_internal_events(msgs / 2)
                .generate(topo, &mut rng);
            let oracle = Oracle::new(&comp);
            rec.runs += 1;
            rec.messages_total += comp.message_count();
            rec.pairs_checked += (comp.message_count() * comp.message_count()) as u64;

            let online = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
            rec.online_ok += usize::from(online.encodes(&oracle));
            let off = offline::stamp_computation(&comp);
            rec.offline_ok += usize::from(off.encodes(&oracle));
            let fm_stamps = fm::stamp_messages(&comp);
            rec.fm_ok += usize::from(fm_stamps.encodes(&oracle));
            rec.events_ok +=
                usize::from(events::stamp_events(&comp, &online).encodes(&comp, &oracle));
        }
    }
    rec
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let families: Vec<(&str, Vec<Graph>, usize, u64)> = vec![
        ("star", vec![topology::star(6)], 60, 10),
        ("triangle", vec![topology::triangle()], 60, 10),
        (
            "complete",
            vec![topology::complete(6), topology::complete(9)],
            50,
            8,
        ),
        ("client-server", vec![topology::client_server(3, 9)], 50, 10),
        (
            "tree",
            vec![topology::figure4_tree(), topology::balanced_tree(3, 2)],
            50,
            8,
        ),
        (
            "random",
            (0..4)
                .map(|_| topology::random_connected(8, 4, &mut rng))
                .collect(),
            40,
            5,
        ),
        ("cycle", vec![topology::cycle(7)], 40, 10),
        ("grid", vec![topology::grid(3, 3)], 40, 10),
    ];

    let mut records = Vec::new();
    for (family, topos, msgs, seeds) in families {
        records.push(sweep(family, &topos, msgs, seeds));
    }

    let mut table = Table::new(&[
        "family", "runs", "msgs", "pairs", "online", "offline", "FM", "events",
    ]);
    for r in &records {
        table.row(&[
            r.family.clone(),
            r.runs.to_string(),
            r.messages_total.to_string(),
            r.pairs_checked.to_string(),
            format!("{}/{}", r.online_ok, r.runs),
            format!("{}/{}", r.offline_ok, r.runs),
            format!("{}/{}", r.fm_ok, r.runs),
            format!("{}/{}", r.events_ok, r.runs),
        ]);
        assert_eq!(r.online_ok, r.runs, "{}: online encoding failed", r.family);
        assert_eq!(
            r.offline_ok, r.runs,
            "{}: offline encoding failed",
            r.family
        );
        assert_eq!(r.fm_ok, r.runs, "{}: FM encoding failed", r.family);
        assert_eq!(r.events_ok, r.runs, "{}: event encoding failed", r.family);
    }
    emit(
        "T1 / Theorems 4 & 9 — encoding equivalence across families (all cells must be full)",
        &table,
        &records,
    );
}
