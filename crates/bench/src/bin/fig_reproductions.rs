//! Experiments F1, F3, F4, F6, F8, F9: the paper's worked figures,
//! regenerated and checked against every statement the prose makes about
//! them.

use synctime_core::offline;
use synctime_core::online::OnlineStamper;
use synctime_graph::{cover, decompose, topology};
use synctime_poset::chains;
use synctime_trace::examples::{figure1, figure1_messages, figure6, figure6_decomposition};
use synctime_trace::{MessageId, Oracle};

fn main() {
    // ---- Figure 1 -------------------------------------------------------
    println!("## F1 — Figure 1: the order relation on a 4-process computation\n");
    let comp = figure1();
    let o = Oracle::new(&comp);
    let [m1, m2, m3, _m4, m5, m6] = figure1_messages();
    for m in comp.messages() {
        println!("  {}: P{} -> P{}", m.id, m.sender + 1, m.receiver + 1);
    }
    let checks = [
        ("m1 || m2", o.concurrent(m1, m2)),
        ("m1 |> m3", o.synchronously_precedes(m1, m3)),
        ("m2 |-> m6", o.synchronously_precedes(m2, m6)),
        ("m3 |-> m5", o.synchronously_precedes(m3, m5)),
        ("chain m1..m5 of size 4", o.chain_depths()[m5.0] == 4),
    ];
    for (label, ok) in checks {
        println!("  {label:<24} {}", if ok { "OK" } else { "MISMATCH" });
        assert!(ok);
    }

    // ---- Figure 3 -------------------------------------------------------
    println!("\n## F3 — Figure 3: two decompositions of K5\n");
    let k5 = topology::complete(5);
    let a = decompose::trivial(&k5);
    println!("  (a) trivial: {a}");
    assert_eq!((a.star_count(), a.triangle_count()), (2, 1));
    let b = decompose::from_vertex_cover(&k5, &cover::exact_min(&k5));
    println!("  (b) vertex-cover: {b}");
    assert_eq!((b.star_count(), b.triangle_count()), (4, 0));

    // ---- Figure 4 -------------------------------------------------------
    println!("\n## F4 — Figure 4: the 20-process tree decomposes into 3 stars\n");
    let tree = topology::figure4_tree();
    let dec = decompose::greedy(&tree);
    println!("  {dec}");
    assert_eq!(dec.len(), 3);
    assert_eq!(dec.triangle_count(), 0);

    // ---- Figure 6 -------------------------------------------------------
    println!("\n## F6 — Figure 6: online timestamps on K5 (3 components)\n");
    let comp = figure6();
    let dec = figure6_decomposition();
    let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
    for m in comp.messages() {
        println!(
            "  {}: P{} -> P{}  v = {}",
            m.id,
            m.sender + 1,
            m.receiver + 1,
            stamps.vector(m.id)
        );
    }
    assert_eq!(stamps.vector(MessageId(2)).as_slice(), &[1, 1, 1]);
    println!("  paper's walkthrough: m3 = P2->P3 stamped (1,1,1)  OK");
    assert!(stamps.encodes(&Oracle::new(&comp)));

    // ---- Figure 8 -------------------------------------------------------
    println!("\n## F8 — Figure 8: greedy run on the Figure 2(b) topology\n");
    let g = topology::figure2b();
    let run = decompose::greedy_with_trace(&g);
    for (i, step) in run.steps.iter().enumerate() {
        println!("  step {}: {:?}", i + 1, step);
    }
    println!(
        "  greedy size {}  optimal size {}",
        run.decomposition.len(),
        decompose::alpha(&g)
    );
    assert_eq!(run.decomposition.len(), 5);
    assert_eq!(decompose::alpha(&g), 5);

    // ---- Figure 9 -------------------------------------------------------
    println!("\n## F9 — Figure 9: offline algorithm on the Figure 6 computation\n");
    let comp = figure6();
    let oracle = Oracle::new(&comp);
    let width = chains::width(oracle.message_poset());
    let off = offline::stamp_computation(&comp);
    println!("  width = {width}; offline dimension = {}", off.dim());
    for m in comp.messages() {
        println!("  {}: V = {}", m.id, off.vector(m.id));
    }
    assert_eq!(off.dim(), 2);
    assert!(off.encodes(&oracle));
    println!("\nall figure reproductions check out");
}
