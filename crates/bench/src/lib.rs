//! Shared helpers for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
//! recorded outputs); the Criterion benches in `benches/` cover the timing
//! claims. Binaries print an aligned human-readable table to stdout and,
//! when `--json` is passed, a machine-readable JSON array to stderr.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

use serde::Serialize;

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new<S: Display>(header: &[S]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        let cells: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Prints the table to stdout and, when `--json` was passed on the command
/// line, the raw records as JSON to stderr.
pub fn emit<T: Serialize>(title: &str, table: &Table, records: &[T]) {
    println!("## {title}\n");
    println!("{}", table.render());
    if std::env::args().any(|a| a == "--json") {
        eprintln!(
            "{}",
            serde_json::to_string_pretty(records).expect("records serialize")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a") && lines[0].contains("bbb"));
        assert!(lines[2].trim_start().starts_with('1'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2"]);
    }
}
