//! Wire encodings for piggybacked vectors, including the
//! Singhal–Kshemkalyani differential technique (Section 6).
//!
//! What actually rides on a message is bytes, so the paper's "smaller
//! vectors" claim ultimately cashes out here. Two encodings:
//!
//! * [`encode_full`] — every component as a LEB128 varint, prefixed by the
//!   dimension;
//! * [`DeltaEncoder`] — per channel-direction state implementing
//!   Singhal–Kshemkalyani: send only the `(index, value)` pairs that
//!   changed since the last transmission *to that destination*, at the
//!   cost of each process remembering what it last sent on each channel.
//!
//! The `table_wire_bytes` experiment combines these with the dimension
//! reductions: `d`-dimensional deltas are the smallest of all.

use std::collections::HashMap;

use synctime_trace::ProcessId;

use crate::VectorTime;

/// Appends `x` to `out` as an LEB128 varint — the integer encoding every
/// `synctime` byte format shares (vector components here, record fields in
/// the `synctime-store` log), so sizes priced by this module's helpers are
/// exact by construction.
pub fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one [`push_varint`]-encoded integer at `*pos`, advancing the
/// cursor past it. Returns `None` on truncation or a value overflowing 64
/// bits, leaving `*pos` wherever the scan stopped.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Encodes a whole vector: dimension, then each component, as varints.
pub fn encode_full(v: &VectorTime) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + v.dim());
    push_varint(&mut out, v.dim() as u64);
    for &c in v.as_slice() {
        push_varint(&mut out, c);
    }
    out
}

/// Decodes [`encode_full`]'s output. Returns `None` on malformed input.
pub fn decode_full(bytes: &[u8]) -> Option<VectorTime> {
    let mut pos = 0usize;
    let dim = read_varint(bytes, &mut pos)? as usize;
    // Each component takes at least one byte, which bounds any plausible
    // dimension; reject hostile values before allocating.
    if dim > bytes.len().saturating_sub(pos) {
        return None;
    }
    let mut components = Vec::with_capacity(dim);
    for _ in 0..dim {
        components.push(read_varint(bytes, &mut pos)?);
    }
    (pos == bytes.len()).then(|| VectorTime::from(components))
}

/// Encodes only the components of `current` that differ from `previous`,
/// as `count, (index, value)*` varints — the Singhal–Kshemkalyani payload.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn encode_delta(previous: &VectorTime, current: &VectorTime) -> Vec<u8> {
    assert_eq!(previous.dim(), current.dim(), "dimension mismatch");
    let changed: Vec<(usize, u64)> = previous
        .as_slice()
        .iter()
        .zip(current.as_slice())
        .enumerate()
        .filter(|(_, (p, c))| p != c)
        .map(|(i, (_, c))| (i, *c))
        .collect();
    let mut out = Vec::with_capacity(1 + 2 * changed.len());
    push_varint(&mut out, changed.len() as u64);
    for (i, v) in changed {
        push_varint(&mut out, i as u64);
        push_varint(&mut out, v);
    }
    out
}

/// Parses a delta body produced by [`encode_delta`] into its
/// `(index, value)` pairs without applying it. Returns `None` on malformed
/// input; indices are *not* range-checked (the applier does that).
fn parse_delta_pairs(bytes: &[u8]) -> Option<Vec<(usize, u64)>> {
    let mut pos = 0usize;
    let count = read_varint(bytes, &mut pos)? as usize;
    // Each pair takes at least two bytes; reject hostile counts before
    // allocating.
    if count > bytes.len().saturating_sub(pos) {
        return None;
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = read_varint(bytes, &mut pos)? as usize;
        let val = read_varint(bytes, &mut pos)?;
        pairs.push((idx, val));
    }
    (pos == bytes.len()).then_some(pairs)
}

/// Applies parsed delta pairs on top of `previous`. Returns `None` on
/// out-of-range indices.
fn apply_delta_pairs(previous: &VectorTime, pairs: &[(usize, u64)]) -> Option<VectorTime> {
    let mut components = previous.as_slice().to_vec();
    for &(idx, val) in pairs {
        *components.get_mut(idx)? = val;
    }
    Some(VectorTime::from(components))
}

/// Applies a delta produced by [`encode_delta`] on top of `previous`.
/// Returns `None` on malformed input or out-of-range indices.
pub fn apply_delta(previous: &VectorTime, bytes: &[u8]) -> Option<VectorTime> {
    apply_delta_pairs(previous, &parse_delta_pairs(bytes)?)
}

/// Bytes of framing every transport frame pays before its body: a `u32`
/// length prefix plus a one-byte frame type (the `synctime-net` frame
/// layer; the in-process runtime prices its rendezvous with the same
/// framing so local and TCP stats are comparable).
pub const FRAME_HEADER_BYTES: u64 = 5;

/// On-wire cost of one OFFER frame carrying a `vector_bytes`-byte encoded
/// vector: frame header + 8-byte message key + 8-byte payload + the vector.
pub fn offer_frame_bytes(vector_bytes: usize) -> u64 {
    FRAME_HEADER_BYTES + 16 + vector_bytes as u64
}

/// On-wire cost of one ACK frame carrying an `ack_bytes`-byte encoded
/// acknowledgement vector: frame header + 8-byte message key + the vector.
pub fn ack_frame_bytes(ack_bytes: usize) -> u64 {
    FRAME_HEADER_BYTES + 8 + ack_bytes as u64
}

/// On-wire cost of one RESYNC request frame: frame header + 8-byte key of
/// the offer whose piggybacked vector could not be decoded.
pub fn resync_frame_bytes() -> u64 {
    FRAME_HEADER_BYTES + 8
}

/// On-wire cost of one v1 QUERY frame: frame header + 1-byte query kind +
/// two 4-byte message ids. The per-query price the batch frames amortise.
pub fn query_frame_bytes() -> u64 {
    FRAME_HEADER_BYTES + 9
}

/// On-wire cost of one v1 ANSWER frame carrying a `body_bytes`-byte
/// kind-specific answer body.
pub fn answer_frame_bytes(body_bytes: usize) -> u64 {
    FRAME_HEADER_BYTES + body_bytes as u64
}

/// On-wire cost of one v2 batched QUERY frame naming a
/// `trace_bytes`-byte trace id and carrying `count` queries: frame header
/// + 2-byte trace-id length + the trace id + 4-byte query count + 9 bytes
/// (kind, m1, m2) per query. The trace id and framing are paid once per
/// batch, so the marginal cost per query is 9 bytes against
/// [`query_frame_bytes`]'s 14.
pub fn batch_query_frame_bytes(trace_bytes: usize, count: usize) -> u64 {
    FRAME_HEADER_BYTES + 2 + trace_bytes as u64 + 4 + 9 * count as u64
}

/// On-wire cost of one v2 batched ANSWER frame whose `count` entries carry
/// `entry_body_bytes` answer bytes in total: frame header + 4-byte entry
/// count + a 5-byte (status, length) prefix per entry + the bodies.
pub fn batch_answer_frame_bytes(entry_body_bytes: usize, count: usize) -> u64 {
    FRAME_HEADER_BYTES + 4 + 5 * count as u64 + entry_body_bytes as u64
}

/// On-wire cost of one v3 pipelined QUERY frame: a v2 batched QUERY frame
/// plus the 4-byte correlation id that lets the client keep a window of
/// batches in flight and match answers out of order.
pub fn batch_query3_frame_bytes(trace_bytes: usize, count: usize) -> u64 {
    batch_query_frame_bytes(trace_bytes, count) + 4
}

/// On-wire cost of one v3 pipelined ANSWER frame: a v2 batched ANSWER
/// frame plus the echoed 4-byte correlation id.
pub fn batch_answer3_frame_bytes(entry_body_bytes: usize, count: usize) -> u64 {
    batch_answer_frame_bytes(entry_body_bytes, count) + 4
}

/// Number of bytes [`push_varint`] emits for `x` (1 for values under 128,
/// up to 10 for the full `u64` range). The building block of the store
/// record pricing below.
pub fn varint_bytes(x: u64) -> u64 {
    (64 - x.leading_zeros()).max(1).div_ceil(7) as u64
}

/// Bytes of the fixed prefix every `synctime-store` log record pays before
/// its payload: a `u32` payload length plus a `u32` CRC-32 of the payload.
pub const STORE_RECORD_HEADER_BYTES: u64 = 8;

/// On-disk cost of a store META record (the first record of every store
/// file): record header + 1-byte tag + varints for the format version, the
/// run's process count, and the snapshot generation.
pub fn store_meta_record_bytes(version: u64, process_count: u64, generation: u64) -> u64 {
    STORE_RECORD_HEADER_BYTES
        + 1
        + varint_bytes(version)
        + varint_bytes(process_count)
        + varint_bytes(generation)
}

/// On-disk cost of a store SENT/RECEIVED record: record header + 1-byte
/// tag + varints for the logging process, its log position, the peer
/// process, and the message key — then the encoded stamp *last* (it is the
/// variable-width remainder of the payload, exactly the bytes the clock
/// seam `Clock::encode_wire` / [`encode_full`] produces, so any clock
/// backend round-trips byte-identically).
pub fn store_stamp_record_bytes(
    process: u64,
    pseq: u64,
    peer: u64,
    key: u64,
    stamp_bytes: usize,
) -> u64 {
    STORE_RECORD_HEADER_BYTES
        + 1
        + varint_bytes(process)
        + varint_bytes(pseq)
        + varint_bytes(peer)
        + varint_bytes(key)
        + stamp_bytes as u64
}

/// On-disk cost of a store INTERNAL record: record header + 1-byte tag +
/// varints for the logging process and its log position (internal events
/// carry no peer, key, or stamp).
pub fn store_internal_record_bytes(process: u64, pseq: u64) -> u64 {
    STORE_RECORD_HEADER_BYTES + 1 + varint_bytes(process) + varint_bytes(pseq)
}

/// On-wire cost of one RECONFIGURE *prepare* frame carrying `ops` edge
/// operations and an `old_len`-entry group remap: frame header + 1-byte
/// phase + 8-byte epoch + 8-byte post-reconfiguration topology hash +
/// 4-byte op count + 9 bytes (kind, u, v) per op + 4-byte old dimension +
/// 4-byte new dimension + a 4-byte destination slot per old component
/// (`u32::MAX` marks a dissolved component).
pub fn reconfigure_prepare_frame_bytes(ops: usize, old_len: usize) -> u64 {
    FRAME_HEADER_BYTES + 1 + 8 + 8 + 4 + 9 * ops as u64 + 4 + 4 + 4 * old_len as u64
}

/// On-wire cost of one RECONFIGURE *commit* frame carrying a
/// `baseline_bytes`-byte [`encode_full`] baseline vector every node
/// restarts the new epoch from: frame header + 1-byte phase + 8-byte
/// epoch + the vector.
pub fn reconfigure_commit_frame_bytes(baseline_bytes: usize) -> u64 {
    FRAME_HEADER_BYTES + 1 + 8 + baseline_bytes as u64
}

/// On-wire cost of one RECONFIG_ACK frame carrying a `clock_bytes`-byte
/// [`encode_full`] final clock (zero on an epoch-mismatch refusal): frame
/// header + 8-byte acked epoch + 4-byte process id + 1-byte status +
/// 8-byte current epoch + the vector.
pub fn reconfig_ack_frame_bytes(clock_bytes: usize) -> u64 {
    FRAME_HEADER_BYTES + 8 + 4 + 1 + 8 + clock_bytes as u64
}

/// On-disk cost of a store RECONFIG record marking an epoch boundary:
/// record header + 1-byte tag + varints for the epoch, the cut count, each
/// per-process log cut, the op count, and each edge operation's
/// (kind, u, v) triple.
pub fn store_reconfig_record_bytes(epoch: u64, cuts: &[u64], ops: &[(u8, u64, u64)]) -> u64 {
    let mut n =
        STORE_RECORD_HEADER_BYTES + 1 + varint_bytes(epoch) + varint_bytes(cuts.len() as u64);
    for &cut in cuts {
        n += varint_bytes(cut);
    }
    n += varint_bytes(ops.len() as u64);
    for &(kind, u, v) in ops {
        n += varint_bytes(kind as u64) + varint_bytes(u) + varint_bytes(v);
    }
    n
}

/// What one clean rendezvous costs with full fixed-width vectors (8 bytes
/// per component, both directions): an OFFER and an ACK frame, including
/// frame/ack overhead. The before-deltas baseline behind
/// `RunStats::total_wire_bytes_full`.
pub fn rendezvous_bytes_full(dim: usize) -> u64 {
    offer_frame_bytes(8 * dim) + ack_frame_bytes(8 * dim)
}

/// Per-sender Singhal–Kshemkalyani state: remembers the vector last sent to
/// each destination so subsequent transmissions carry only changes.
#[derive(Debug, Clone, Default)]
pub struct DeltaEncoder {
    last_sent: HashMap<ProcessId, VectorTime>,
}

impl DeltaEncoder {
    /// A fresh encoder (first transmission to each peer is a full vector).
    pub fn new() -> Self {
        DeltaEncoder::default()
    }

    /// Encodes `v` for transmission to `to`: a tagged full vector the first
    /// time, a tagged delta afterwards. Updates the remembered state.
    pub fn encode(&mut self, to: ProcessId, v: &VectorTime) -> Vec<u8> {
        let payload = match self.last_sent.get(&to) {
            Some(prev) if prev.dim() == v.dim() => {
                let mut out = vec![1u8]; // tag: delta
                out.extend(encode_delta(prev, v));
                out
            }
            _ => {
                let mut out = vec![0u8]; // tag: full
                out.extend(encode_full(v));
                out
            }
        };
        self.last_sent.insert(to, v.clone());
        payload
    }
}

/// Per-receiver state decoding [`DeltaEncoder`] streams.
#[derive(Debug, Clone, Default)]
pub struct DeltaDecoder {
    last_seen: HashMap<ProcessId, VectorTime>,
}

impl DeltaDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        DeltaDecoder::default()
    }

    /// Decodes a payload received from `from`. Returns `None` on malformed
    /// input or a delta arriving before any full vector.
    pub fn decode(&mut self, from: ProcessId, bytes: &[u8]) -> Option<VectorTime> {
        let (tag, rest) = bytes.split_first()?;
        let v = match tag {
            0 => decode_full(rest)?,
            1 => apply_delta(self.last_seen.get(&from)?, rest)?,
            _ => return None,
        };
        self.last_seen.insert(from, v.clone());
        Some(v)
    }
}

/// Why a [`StreamDecoder`] rejected a frame.
///
/// [`DeltaDecoder`] collapses every failure into `None`; the sequence-framed
/// streams distinguish *recoverable* losses (a [`StreamError::SeqGap`] — the
/// decoder missed a frame and a full-vector resync frame will re-anchor it)
/// from terminal ones (garbage bytes, or a delta arriving on a stream that
/// never saw a full vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The frame bytes could not be parsed at all.
    Malformed,
    /// A delta frame arrived with the wrong sequence number: at least one
    /// frame was lost or injected. Recoverable — the sender re-anchors the
    /// stream by transmitting a full frame (see [`StreamEncoder::force_full`]).
    SeqGap {
        /// The sequence number the decoder expected next.
        expected: u64,
        /// The sequence number the frame carried.
        got: u64,
    },
    /// A delta frame arrived before any full vector established stream
    /// state; there is nothing to apply the delta to.
    OrphanDelta,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Malformed => write!(f, "malformed stream frame"),
            StreamError::SeqGap { expected, got } => {
                write!(
                    f,
                    "stream sequence gap: expected frame {expected}, got {got}"
                )
            }
            StreamError::OrphanDelta => {
                write!(f, "delta frame arrived before any full vector")
            }
        }
    }
}

/// Per-peer state of a sequence-framed delta stream at the sender.
#[derive(Debug, Clone)]
struct StreamSendState {
    next_seq: u64,
    last_sent: VectorTime,
    force_full: bool,
}

/// A [`DeltaEncoder`] whose frames carry a per-peer sequence number, so the
/// receiving [`StreamDecoder`] can *detect* a desynchronised stream instead
/// of silently applying a delta to the wrong base.
///
/// Frame layout: `varint(seq)` then the [`DeltaEncoder`] tag+body (`0` =
/// full vector, `1` = delta against the previous frame). Delta frames are
/// only valid at exactly the expected sequence number; full frames
/// *re-anchor* the stream at any sequence number at or past the expected
/// one, which is what makes recovery possible — after a detected gap the
/// sender calls [`StreamEncoder::force_full`] and the next frame repairs
/// the stream no matter how many frames went missing.
#[derive(Debug, Clone, Default)]
pub struct StreamEncoder {
    peers: HashMap<ProcessId, StreamSendState>,
}

impl StreamEncoder {
    /// A fresh encoder (first frame to each peer is a full vector).
    pub fn new() -> Self {
        StreamEncoder::default()
    }

    /// Encodes `v` as the next frame of the stream to `to`.
    pub fn encode(&mut self, to: ProcessId, v: &VectorTime) -> Vec<u8> {
        let (seq, body) = match self.peers.get_mut(&to) {
            Some(state) if !state.force_full && state.last_sent.dim() == v.dim() => {
                let mut body = vec![1u8];
                body.extend(encode_delta(&state.last_sent, v));
                let seq = state.next_seq;
                state.next_seq += 1;
                state.last_sent = v.clone();
                (seq, body)
            }
            existing => {
                let seq = existing.as_ref().map_or(0, |s| s.next_seq);
                let mut body = vec![0u8];
                body.extend(encode_full(v));
                self.peers.insert(
                    to,
                    StreamSendState {
                        next_seq: seq + 1,
                        last_sent: v.clone(),
                        force_full: false,
                    },
                );
                (seq, body)
            }
        };
        let mut out = Vec::with_capacity(body.len() + 2);
        push_varint(&mut out, seq);
        out.extend(body);
        out
    }

    /// Makes the next frame to `to` a full vector regardless of delta
    /// state — the resync path after a receiver reported a sequence gap.
    pub fn force_full(&mut self, to: ProcessId) {
        if let Some(state) = self.peers.get_mut(&to) {
            state.force_full = true;
        }
    }

    /// Advances the stream to `to` as if a frame had been sent and lost:
    /// the sequence number moves but no bytes are produced, so the peer's
    /// decoder will report a [`StreamError::SeqGap`] on the next delta
    /// frame. Returns `false` (and does nothing) when no frame has ever
    /// been sent to `to` — a fresh stream opens with a full frame, which
    /// re-anchors unconditionally, so there is no desync to simulate yet.
    pub fn skip(&mut self, to: ProcessId) -> bool {
        match self.peers.get_mut(&to) {
            Some(state) => {
                state.next_seq += 1;
                true
            }
            None => false,
        }
    }
}

/// Per-peer state decoding [`StreamEncoder`] frames, rejecting anything
/// that does not line up with the expected sequence number.
#[derive(Debug, Clone, Default)]
pub struct StreamDecoder {
    peers: HashMap<ProcessId, (u64, VectorTime)>,
}

impl StreamDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Decodes the next frame received from `from`.
    ///
    /// # Errors
    ///
    /// [`StreamError::SeqGap`] when a frame arrives out of sequence (a
    /// delta anywhere but the expected number, or a full frame *behind*
    /// it); [`StreamError::OrphanDelta`] for a delta on a virgin stream;
    /// [`StreamError::Malformed`] for unparseable bytes. Only a
    /// successfully decoded frame advances the stream state.
    pub fn decode(&mut self, from: ProcessId, bytes: &[u8]) -> Result<VectorTime, StreamError> {
        self.decode_sparse(from, bytes).map(|(v, _)| v)
    }

    /// [`StreamDecoder::decode`], additionally reporting the
    /// Singhal–Kshemkalyani change-set when the frame was a delta: the
    /// `(index, value)` pairs that moved since the previous frame of this
    /// stream. `None` means the frame carried a full vector (stream
    /// opening or resync) and no change-set exists. Sparse-merge clock
    /// backends feed the pairs straight into their delta path instead of
    /// re-scanning the reconstructed vector.
    ///
    /// # Errors
    ///
    /// As for [`StreamDecoder::decode`].
    #[allow(clippy::type_complexity)]
    pub fn decode_sparse(
        &mut self,
        from: ProcessId,
        bytes: &[u8],
    ) -> Result<(VectorTime, Option<Vec<(usize, u64)>>), StreamError> {
        let mut pos = 0usize;
        let seq = read_varint(bytes, &mut pos).ok_or(StreamError::Malformed)?;
        let (tag, rest) = bytes[pos..].split_first().ok_or(StreamError::Malformed)?;
        let state = self.peers.get(&from);
        let expected = state.map_or(0, |(next, _)| *next);
        let (v, changes) = match tag {
            0 => {
                // Full frames re-anchor: any sequence number at or past the
                // expected one is acceptable (frames between were lost, but
                // a full vector needs no prior state). A *stale* full frame
                // is still a protocol violation.
                if seq < expected {
                    return Err(StreamError::SeqGap { expected, got: seq });
                }
                (decode_full(rest).ok_or(StreamError::Malformed)?, None)
            }
            1 => {
                let (_, base) = state.ok_or(StreamError::OrphanDelta)?;
                if seq != expected {
                    return Err(StreamError::SeqGap { expected, got: seq });
                }
                let pairs = parse_delta_pairs(rest).ok_or(StreamError::Malformed)?;
                let v = apply_delta_pairs(base, &pairs).ok_or(StreamError::Malformed)?;
                (v, Some(pairs))
            }
            _ => return Err(StreamError::Malformed),
        };
        self.peers.insert(from, (seq + 1, v.clone()));
        Ok((v, changes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_pricing_is_consistent() {
        // OFFER = header + key + payload + vector; ACK = header + key +
        // vector; RESYNC = header + key. The full baseline prices both
        // directions at 8 bytes per component.
        assert_eq!(offer_frame_bytes(0), 21);
        assert_eq!(ack_frame_bytes(0), 13);
        assert_eq!(resync_frame_bytes(), 13);
        for dim in [1usize, 2, 7] {
            assert_eq!(
                rendezvous_bytes_full(dim),
                offer_frame_bytes(8 * dim) + ack_frame_bytes(8 * dim)
            );
            assert_eq!(rendezvous_bytes_full(dim), 34 + 16 * dim as u64);
        }
    }

    #[test]
    fn query_frame_pricing_is_consistent() {
        // v1: one query per frame, 14 bytes of request either way.
        assert_eq!(query_frame_bytes(), 14);
        assert_eq!(answer_frame_bytes(1), 6);
        // v2: the batch amortises framing — per-query request cost tends
        // to 9 bytes as the batch grows.
        assert_eq!(batch_query_frame_bytes(0, 0), 11);
        assert_eq!(batch_query_frame_bytes(5, 1), 25);
        for n in [1u64, 16, 256] {
            let batched = batch_query_frame_bytes(5, n as usize);
            assert_eq!(batched, 11 + 5 + 9 * n);
            assert!(batched < n * query_frame_bytes() + 5 + 11 || n == 1);
        }
        assert_eq!(batch_answer_frame_bytes(256, 256), 5 + 4 + 5 * 256 + 256);
        // v3: pipelining costs exactly one 4-byte correlation id per frame
        // over v2, request and answer alike.
        for (trace, n) in [(0usize, 0usize), (5, 1), (5, 256)] {
            assert_eq!(
                batch_query3_frame_bytes(trace, n),
                batch_query_frame_bytes(trace, n) + 4
            );
        }
        assert_eq!(
            batch_answer3_frame_bytes(256, 256),
            5 + 4 + 4 + 5 * 256 + 256
        );
    }

    #[test]
    fn varint_roundtrip() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
            assert_eq!(varint_bytes(x), buf.len() as u64, "pricing of {x}");
        }
    }

    #[test]
    fn store_record_pricing_is_consistent() {
        // META: header + tag + three small varints.
        assert_eq!(store_meta_record_bytes(1, 4, 0), 8 + 1 + 3);
        assert_eq!(store_meta_record_bytes(1, 300, 0), 8 + 1 + 1 + 2 + 1);
        // Stamp records put the encoded vector last; its size adds
        // straight through.
        let stamp = encode_full(&VectorTime::from(vec![1, 0, 300]));
        assert_eq!(
            store_stamp_record_bytes(2, 5, 3, 1 << 33, stamp.len()),
            8 + 1 + 1 + 1 + 1 + 5 + stamp.len() as u64
        );
        // INTERNAL carries only its coordinates.
        assert_eq!(store_internal_record_bytes(0, 0), 8 + 1 + 1 + 1);
        assert_eq!(store_internal_record_bytes(200, 200), 8 + 1 + 2 + 2);
    }

    #[test]
    fn full_roundtrip() {
        let v = VectorTime::from(vec![0, 1, 300, 70000]);
        assert_eq!(decode_full(&encode_full(&v)), Some(v));
        // Truncated input fails cleanly.
        let enc = encode_full(&VectorTime::from(vec![5, 6]));
        assert_eq!(decode_full(&enc[..enc.len() - 1]), None);
        assert_eq!(decode_full(&[]), None);
    }

    #[test]
    fn delta_roundtrip() {
        let a = VectorTime::from(vec![3, 4, 5]);
        let b = VectorTime::from(vec![3, 9, 5]);
        let d = encode_delta(&a, &b);
        assert_eq!(apply_delta(&a, &d), Some(b.clone()));
        // Unchanged vector encodes to a single zero byte.
        assert_eq!(encode_delta(&b, &b), vec![0]);
    }

    #[test]
    fn delta_smaller_than_full_for_sparse_changes() {
        let a = VectorTime::from(vec![100; 32]);
        let mut big = a.as_slice().to_vec();
        big[7] = 101;
        let b = VectorTime::from(big);
        assert!(encode_delta(&a, &b).len() < encode_full(&b).len());
    }

    #[test]
    fn encoder_decoder_stream() {
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        let steps = [
            VectorTime::from(vec![1, 0, 0]),
            VectorTime::from(vec![1, 2, 0]),
            VectorTime::from(vec![1, 2, 0]), // unchanged
            VectorTime::from(vec![4, 2, 9]),
        ];
        let mut sizes = Vec::new();
        for v in &steps {
            let bytes = enc.encode(5, v);
            sizes.push(bytes.len());
            assert_eq!(dec.decode(5, &bytes).as_ref(), Some(v));
        }
        // First is full; the unchanged third transmission is tiny.
        assert!(sizes[2] < sizes[0]);
    }

    #[test]
    fn decoder_rejects_garbage_and_orphan_deltas() {
        let mut dec = DeltaDecoder::new();
        assert_eq!(dec.decode(0, &[]), None);
        assert_eq!(dec.decode(0, &[9, 1, 2]), None);
        // A delta before any full vector cannot be applied.
        let mut enc = DeltaEncoder::new();
        enc.encode(0, &VectorTime::from(vec![1]));
        let delta = enc.encode(0, &VectorTime::from(vec![2]));
        assert_eq!(delta[0], 1, "second transmission is a delta");
        assert_eq!(dec.decode(0, &delta), None);
    }

    #[test]
    fn per_peer_state_is_independent() {
        let mut enc = DeltaEncoder::new();
        let v = VectorTime::from(vec![1, 1]);
        let first_to_a = enc.encode(0, &v);
        let first_to_b = enc.encode(1, &v);
        assert_eq!(first_to_a[0], 0);
        assert_eq!(first_to_b[0], 0, "fresh peer gets a full vector");
    }

    #[test]
    fn stream_roundtrip_in_sequence() {
        let mut enc = StreamEncoder::new();
        let mut dec = StreamDecoder::new();
        let steps = [
            VectorTime::from(vec![1, 0, 0]),
            VectorTime::from(vec![1, 2, 0]),
            VectorTime::from(vec![4, 2, 9]),
        ];
        for v in &steps {
            let frame = enc.encode(7, v);
            assert_eq!(dec.decode(7, &frame).as_ref(), Ok(v));
        }
    }

    #[test]
    fn skipped_frame_is_detected_and_full_frame_recovers() {
        let mut enc = StreamEncoder::new();
        let mut dec = StreamDecoder::new();
        let a = VectorTime::from(vec![1, 0]);
        let b = VectorTime::from(vec![1, 2]);
        let c = VectorTime::from(vec![3, 2]);
        assert_eq!(dec.decode(0, &enc.encode(0, &a)), Ok(a));
        // A frame goes missing; the next delta must not silently apply.
        assert!(enc.skip(0), "established stream can skip");
        let desynced = enc.encode(0, &b);
        assert_eq!(
            dec.decode(0, &desynced),
            Err(StreamError::SeqGap {
                expected: 1,
                got: 2
            })
        );
        // The failed frame must not have advanced decoder state: replaying
        // the same frame fails identically.
        assert!(dec.decode(0, &desynced).is_err());
        // Sender resyncs with a forced full frame carrying the same vector.
        enc.force_full(0);
        let resync = enc.encode(0, &b);
        assert_eq!(dec.decode(0, &resync), Ok(b));
        // And the stream is back in delta lock-step afterwards.
        let next = enc.encode(0, &c);
        assert_eq!(next[1], 1, "post-resync frame is a delta again");
        assert_eq!(dec.decode(0, &next), Ok(c));
    }

    #[test]
    fn decode_sparse_reports_the_change_set() {
        let mut enc = StreamEncoder::new();
        let mut dec = StreamDecoder::new();
        let a = VectorTime::from(vec![1, 0, 7]);
        let b = VectorTime::from(vec![1, 2, 9]);
        // Opening full frame: no change-set.
        let (v, changes) = dec.decode_sparse(0, &enc.encode(0, &a)).unwrap();
        assert_eq!(v, a);
        assert_eq!(changes, None);
        // Delta frame: exactly the moved components, with their new values.
        let (v, changes) = dec.decode_sparse(0, &enc.encode(0, &b)).unwrap();
        assert_eq!(v, b);
        assert_eq!(changes, Some(vec![(1, 2), (2, 9)]));
        // An unchanged retransmission yields an empty change-set, not None.
        let (v, changes) = dec.decode_sparse(0, &enc.encode(0, &b)).unwrap();
        assert_eq!(v, b);
        assert_eq!(changes, Some(vec![]));
    }

    #[test]
    fn skip_on_virgin_stream_is_a_no_op() {
        let mut enc = StreamEncoder::new();
        let mut dec = StreamDecoder::new();
        assert!(!enc.skip(3), "nothing sent yet: nothing to desynchronise");
        let v = VectorTime::from(vec![5]);
        assert_eq!(dec.decode(3, &enc.encode(3, &v)), Ok(v));
    }

    #[test]
    fn stream_decoder_rejects_garbage_orphans_and_stale_fulls() {
        let mut dec = StreamDecoder::new();
        assert_eq!(dec.decode(0, &[]), Err(StreamError::Malformed));
        assert_eq!(dec.decode(0, &[0, 9, 1, 2]), Err(StreamError::Malformed));
        // A delta before any full vector cannot be applied.
        let mut enc = StreamEncoder::new();
        enc.encode(0, &VectorTime::from(vec![1]));
        let delta = enc.encode(0, &VectorTime::from(vec![2]));
        assert_eq!(dec.decode(0, &delta), Err(StreamError::OrphanDelta));
        // Establish state, then replay the opening full frame: stale.
        let mut enc2 = StreamEncoder::new();
        let opening = enc2.encode(0, &VectorTime::from(vec![1]));
        assert!(dec.decode(0, &opening).is_ok());
        assert_eq!(
            dec.decode(0, &opening),
            Err(StreamError::SeqGap {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn stream_per_peer_state_is_independent() {
        let mut enc = StreamEncoder::new();
        let v = VectorTime::from(vec![1, 1]);
        enc.encode(0, &v);
        assert!(enc.skip(0));
        // Peer 1's stream is untouched by peer 0's desync.
        let mut dec = StreamDecoder::new();
        assert_eq!(dec.decode(1, &enc.encode(1, &v)), Ok(v));
    }
}
