//! Wire encodings for piggybacked vectors, including the
//! Singhal–Kshemkalyani differential technique (Section 6).
//!
//! What actually rides on a message is bytes, so the paper's "smaller
//! vectors" claim ultimately cashes out here. Two encodings:
//!
//! * [`encode_full`] — every component as a LEB128 varint, prefixed by the
//!   dimension;
//! * [`DeltaEncoder`] — per channel-direction state implementing
//!   Singhal–Kshemkalyani: send only the `(index, value)` pairs that
//!   changed since the last transmission *to that destination*, at the
//!   cost of each process remembering what it last sent on each channel.
//!
//! The `table_wire_bytes` experiment combines these with the dimension
//! reductions: `d`-dimensional deltas are the smallest of all.

use std::collections::HashMap;

use synctime_trace::ProcessId;

use crate::VectorTime;

fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Encodes a whole vector: dimension, then each component, as varints.
pub fn encode_full(v: &VectorTime) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + v.dim());
    push_varint(&mut out, v.dim() as u64);
    for &c in v.as_slice() {
        push_varint(&mut out, c);
    }
    out
}

/// Decodes [`encode_full`]'s output. Returns `None` on malformed input.
pub fn decode_full(bytes: &[u8]) -> Option<VectorTime> {
    let mut pos = 0usize;
    let dim = read_varint(bytes, &mut pos)? as usize;
    // Each component takes at least one byte, which bounds any plausible
    // dimension; reject hostile values before allocating.
    if dim > bytes.len().saturating_sub(pos) {
        return None;
    }
    let mut components = Vec::with_capacity(dim);
    for _ in 0..dim {
        components.push(read_varint(bytes, &mut pos)?);
    }
    (pos == bytes.len()).then(|| VectorTime::from(components))
}

/// Encodes only the components of `current` that differ from `previous`,
/// as `count, (index, value)*` varints — the Singhal–Kshemkalyani payload.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn encode_delta(previous: &VectorTime, current: &VectorTime) -> Vec<u8> {
    assert_eq!(previous.dim(), current.dim(), "dimension mismatch");
    let changed: Vec<(usize, u64)> = previous
        .as_slice()
        .iter()
        .zip(current.as_slice())
        .enumerate()
        .filter(|(_, (p, c))| p != c)
        .map(|(i, (_, c))| (i, *c))
        .collect();
    let mut out = Vec::with_capacity(1 + 2 * changed.len());
    push_varint(&mut out, changed.len() as u64);
    for (i, v) in changed {
        push_varint(&mut out, i as u64);
        push_varint(&mut out, v);
    }
    out
}

/// Applies a delta produced by [`encode_delta`] on top of `previous`.
/// Returns `None` on malformed input or out-of-range indices.
pub fn apply_delta(previous: &VectorTime, bytes: &[u8]) -> Option<VectorTime> {
    let mut pos = 0usize;
    let count = read_varint(bytes, &mut pos)? as usize;
    let mut components = previous.as_slice().to_vec();
    for _ in 0..count {
        let idx = read_varint(bytes, &mut pos)? as usize;
        let val = read_varint(bytes, &mut pos)?;
        *components.get_mut(idx)? = val;
    }
    (pos == bytes.len()).then(|| VectorTime::from(components))
}

/// Per-sender Singhal–Kshemkalyani state: remembers the vector last sent to
/// each destination so subsequent transmissions carry only changes.
#[derive(Debug, Clone, Default)]
pub struct DeltaEncoder {
    last_sent: HashMap<ProcessId, VectorTime>,
}

impl DeltaEncoder {
    /// A fresh encoder (first transmission to each peer is a full vector).
    pub fn new() -> Self {
        DeltaEncoder::default()
    }

    /// Encodes `v` for transmission to `to`: a tagged full vector the first
    /// time, a tagged delta afterwards. Updates the remembered state.
    pub fn encode(&mut self, to: ProcessId, v: &VectorTime) -> Vec<u8> {
        let payload = match self.last_sent.get(&to) {
            Some(prev) if prev.dim() == v.dim() => {
                let mut out = vec![1u8]; // tag: delta
                out.extend(encode_delta(prev, v));
                out
            }
            _ => {
                let mut out = vec![0u8]; // tag: full
                out.extend(encode_full(v));
                out
            }
        };
        self.last_sent.insert(to, v.clone());
        payload
    }
}

/// Per-receiver state decoding [`DeltaEncoder`] streams.
#[derive(Debug, Clone, Default)]
pub struct DeltaDecoder {
    last_seen: HashMap<ProcessId, VectorTime>,
}

impl DeltaDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        DeltaDecoder::default()
    }

    /// Decodes a payload received from `from`. Returns `None` on malformed
    /// input or a delta arriving before any full vector.
    pub fn decode(&mut self, from: ProcessId, bytes: &[u8]) -> Option<VectorTime> {
        let (tag, rest) = bytes.split_first()?;
        let v = match tag {
            0 => decode_full(rest)?,
            1 => apply_delta(self.last_seen.get(&from)?, rest)?,
            _ => return None,
        };
        self.last_seen.insert(from, v.clone());
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn full_roundtrip() {
        let v = VectorTime::from(vec![0, 1, 300, 70000]);
        assert_eq!(decode_full(&encode_full(&v)), Some(v));
        // Truncated input fails cleanly.
        let enc = encode_full(&VectorTime::from(vec![5, 6]));
        assert_eq!(decode_full(&enc[..enc.len() - 1]), None);
        assert_eq!(decode_full(&[]), None);
    }

    #[test]
    fn delta_roundtrip() {
        let a = VectorTime::from(vec![3, 4, 5]);
        let b = VectorTime::from(vec![3, 9, 5]);
        let d = encode_delta(&a, &b);
        assert_eq!(apply_delta(&a, &d), Some(b.clone()));
        // Unchanged vector encodes to a single zero byte.
        assert_eq!(encode_delta(&b, &b), vec![0]);
    }

    #[test]
    fn delta_smaller_than_full_for_sparse_changes() {
        let a = VectorTime::from(vec![100; 32]);
        let mut big = a.as_slice().to_vec();
        big[7] = 101;
        let b = VectorTime::from(big);
        assert!(encode_delta(&a, &b).len() < encode_full(&b).len());
    }

    #[test]
    fn encoder_decoder_stream() {
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        let steps = [
            VectorTime::from(vec![1, 0, 0]),
            VectorTime::from(vec![1, 2, 0]),
            VectorTime::from(vec![1, 2, 0]), // unchanged
            VectorTime::from(vec![4, 2, 9]),
        ];
        let mut sizes = Vec::new();
        for v in &steps {
            let bytes = enc.encode(5, v);
            sizes.push(bytes.len());
            assert_eq!(dec.decode(5, &bytes).as_ref(), Some(v));
        }
        // First is full; the unchanged third transmission is tiny.
        assert!(sizes[2] < sizes[0]);
    }

    #[test]
    fn decoder_rejects_garbage_and_orphan_deltas() {
        let mut dec = DeltaDecoder::new();
        assert_eq!(dec.decode(0, &[]), None);
        assert_eq!(dec.decode(0, &[9, 1, 2]), None);
        // A delta before any full vector cannot be applied.
        let mut enc = DeltaEncoder::new();
        enc.encode(0, &VectorTime::from(vec![1]));
        let delta = enc.encode(0, &VectorTime::from(vec![2]));
        assert_eq!(delta[0], 1, "second transmission is a delta");
        assert_eq!(dec.decode(0, &delta), None);
    }

    #[test]
    fn per_peer_state_is_independent() {
        let mut enc = DeltaEncoder::new();
        let v = VectorTime::from(vec![1, 1]);
        let first_to_a = enc.encode(0, &v);
        let first_to_b = enc.encode(1, &v);
        assert_eq!(first_to_a[0], 0);
        assert_eq!(first_to_b[0], 0, "fresh peer gets a full vector");
    }
}
