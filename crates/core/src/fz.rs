//! Fowler–Zwaenepoel direct-dependency tracking, the other related-work
//! baseline (Section 6 of the paper).
//!
//! Instead of piggybacking a vector, each message records only its **direct
//! predecessors**: the previous message of its sender and the previous
//! message of its receiver. The piggyback is `O(1)`, but the precedence
//! test must *recursively trace* dependencies — an `O(|M|)` backward search
//! — which is why the technique suits offline analysis only (exactly the
//! trade-off the paper points out).

use synctime_trace::{MessageId, SyncComputation};

/// The direct-dependency log of a computation: per message, the previous
/// message (if any) at each of its two participants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectDependencies {
    preds: Vec<[Option<MessageId>; 2]>,
}

impl DirectDependencies {
    /// Records the dependency log of a completed computation. `O(|M|)`.
    pub fn stamp(computation: &SyncComputation) -> Self {
        let mut last: Vec<Option<MessageId>> = vec![None; computation.process_count()];
        let mut preds = Vec::with_capacity(computation.message_count());
        for m in computation.messages() {
            preds.push([last[m.sender], last[m.receiver]]);
            last[m.sender] = Some(m.id);
            last[m.receiver] = Some(m.id);
        }
        DirectDependencies { preds }
    }

    /// Number of logged messages.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The direct predecessors of a message (sender-side, receiver-side).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn direct_predecessors(&self, m: MessageId) -> [Option<MessageId>; 2] {
        self.preds[m.0]
    }

    /// The precedence test `m1 ↦ m2`, by backward search through the
    /// dependency log. Worst case `O(|M|)` per query — the cost the
    /// vector-based encodings pay up front instead.
    pub fn precedes(&self, m1: MessageId, m2: MessageId) -> bool {
        if m1 == m2 {
            return false;
        }
        // Depth-first backward from m2; ids decrease along predecessors,
        // so marking visited ids bounds the walk.
        let mut visited = vec![false; self.preds.len()];
        let mut stack = vec![m2];
        while let Some(cur) = stack.pop() {
            for pred in self.preds[cur.0].iter().flatten() {
                if *pred == m1 {
                    return true;
                }
                // Ids below the target cannot lead back up to it.
                if *pred > m1 && !visited[pred.0] {
                    visited[pred.0] = true;
                    stack.push(*pred);
                }
            }
        }
        false
    }

    /// Whether two messages are concurrent under the log.
    pub fn concurrent(&self, m1: MessageId, m2: MessageId) -> bool {
        m1 != m2 && !self.precedes(m1, m2) && !self.precedes(m2, m1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_trace::{Builder, Oracle};

    fn sample() -> SyncComputation {
        let mut b = Builder::new(4);
        b.message(0, 1).unwrap(); // m1
        b.message(2, 3).unwrap(); // m2
        b.message(1, 2).unwrap(); // m3
        b.message(2, 3).unwrap(); // m4
        b.message(0, 1).unwrap(); // m5
        b.build()
    }

    #[test]
    fn matches_oracle_on_sample() {
        let comp = sample();
        let log = DirectDependencies::stamp(&comp);
        let oracle = Oracle::new(&comp);
        for i in 0..comp.message_count() {
            for j in 0..comp.message_count() {
                assert_eq!(
                    log.precedes(MessageId(i), MessageId(j)),
                    oracle.synchronously_precedes(MessageId(i), MessageId(j)),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_random_computations() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = rng.gen_range(2..8);
            let mut b = Builder::new(n);
            for _ in 0..rng.gen_range(0..40) {
                let s = rng.gen_range(0..n);
                let mut r = rng.gen_range(0..n);
                while r == s {
                    r = rng.gen_range(0..n);
                }
                b.message(s, r).unwrap();
            }
            let comp = b.build();
            let log = DirectDependencies::stamp(&comp);
            let oracle = Oracle::new(&comp);
            for i in 0..comp.message_count() {
                for j in 0..comp.message_count() {
                    assert_eq!(
                        log.precedes(MessageId(i), MessageId(j)),
                        oracle.synchronously_precedes(MessageId(i), MessageId(j))
                    );
                }
            }
        }
    }

    #[test]
    fn direct_predecessors_recorded() {
        let comp = sample();
        let log = DirectDependencies::stamp(&comp);
        assert_eq!(log.direct_predecessors(MessageId(0)), [None, None]);
        // m3 = P2 -> P3: P2's previous is m1, P3's previous is m2.
        assert_eq!(
            log.direct_predecessors(MessageId(2)),
            [Some(MessageId(0)), Some(MessageId(1))]
        );
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
    }

    #[test]
    fn irreflexive_and_concurrent() {
        let comp = sample();
        let log = DirectDependencies::stamp(&comp);
        assert!(!log.precedes(MessageId(1), MessageId(1)));
        assert!(log.concurrent(MessageId(0), MessageId(1)));
        assert!(!log.concurrent(MessageId(0), MessageId(0)));
    }
}
