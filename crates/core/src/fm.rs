//! The Fidge–Mattern baseline: vector clocks with **one component per
//! process**, adapted to rendezvous semantics.
//!
//! This is the mechanism the paper improves on: it captures the same
//! order relation but its vectors have dimension `N` regardless of the
//! topology (and by Charron-Bost's lower bound, for *asynchronous*
//! computations nothing smaller can work in general).
//!
//! Adaptation to synchronous messages: a rendezvous between `P_i` and
//! `P_j` is a single joint event — both processes compute
//! `v := max(v_i, v_j)`, increment *both* participating components, and
//! adopt `v`, which is also the message's timestamp. (The increment of the
//! partner's component is justified because the send, receive, and
//! acknowledgement happen as one atomic exchange; each process's component
//! still only ever grows at events that process participates in.)

use synctime_trace::{EventId, EventKind, Oracle, SyncComputation};

use crate::{MessageTimestamps, VectorTime};

/// Stamps every message with an `N`-component Fidge–Mattern vector.
///
/// Satisfies the same encoding property as the paper's algorithms
/// (`m1 ↦ m2 ⟺ v(m1) < v(m2)`) at `N` components instead of `d`.
pub fn stamp_messages(computation: &SyncComputation) -> MessageTimestamps {
    let n = computation.process_count();
    let mut clocks: Vec<VectorTime> = vec![VectorTime::zero(n); n];
    let mut stamps = Vec::with_capacity(computation.message_count());
    for m in computation.messages() {
        let mut v = clocks[m.sender].clone();
        v.merge_max(&clocks[m.receiver])
            .expect("all Fidge–Mattern clocks share dimension N");
        v.increment(m.sender);
        v.increment(m.receiver);
        clocks[m.sender] = v.clone();
        clocks[m.receiver] = v.clone();
        stamps.push(v);
    }
    MessageTimestamps::new(stamps)
}

/// Fidge–Mattern timestamps for **all events** (internal and external) of a
/// computation, with the rendezvous endpoints sharing one vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventClocks {
    dim: usize,
    stamps: Vec<Vec<VectorTime>>, // per process, per event index
}

impl EventClocks {
    /// The vector of one event.
    ///
    /// # Panics
    ///
    /// Panics if the event id is out of range.
    pub fn vector(&self, e: EventId) -> &VectorTime {
        &self.stamps[e.process][e.index]
    }

    /// The dimension (= process count).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The happened-before test: `e → f ⟺ v(e) ≤ v(f)` for distinct
    /// events. (The only distinct events with *equal* vectors are the two
    /// endpoints of one rendezvous, which are mutually ordered — one
    /// synchronization point — matching [`Oracle::happened_before`].)
    pub fn happened_before(&self, e: EventId, f: EventId) -> bool {
        e != f && self.vector(e).le(self.vector(f))
    }

    /// Whether two events are concurrent under these clocks.
    pub fn concurrent(&self, e: EventId, f: EventId) -> bool {
        e != f && !self.happened_before(e, f) && !self.happened_before(f, e)
    }

    /// Whether these clocks agree with the ground-truth `oracle` on every
    /// pair of events of `computation`. `O(E²)`.
    pub fn encodes(&self, computation: &SyncComputation, oracle: &Oracle) -> bool {
        let events: Vec<EventId> = computation.events().collect();
        events.iter().all(|&e| {
            events.iter().all(|&f| {
                e == f || self.happened_before(e, f) == oracle.happened_before(computation, e, f)
            })
        })
    }
}

/// Stamps every event of the computation with Fidge–Mattern vectors:
/// internal events increment their process's component; rendezvous events
/// merge both participants and increment both components (both endpoints
/// receive the same vector).
pub fn stamp_events(computation: &SyncComputation) -> EventClocks {
    let n = computation.process_count();
    let mut clocks: Vec<VectorTime> = vec![VectorTime::zero(n); n];
    let mut stamps: Vec<Vec<VectorTime>> = (0..n)
        .map(|p| Vec::with_capacity(computation.history(p).len()))
        .collect();
    // Walk events in a rendezvous-consistent global order: internal events
    // can be emitted as soon as reached; rendezvous events must be emitted
    // once for both endpoints, in message order. We iterate messages in
    // rendezvous order, first flushing each participant's pending internal
    // events.
    let mut cursor = vec![0usize; n];
    let flush_internals = |p: usize,
                           upto: usize,
                           clocks: &mut Vec<VectorTime>,
                           stamps: &mut Vec<Vec<VectorTime>>,
                           cursor: &mut Vec<usize>| {
        while cursor[p] < upto {
            let ev = computation.history(p)[cursor[p]];
            debug_assert!(ev.is_internal(), "externals are handled at rendezvous");
            clocks[p].increment(p);
            stamps[p].push(clocks[p].clone());
            cursor[p] += 1;
        }
    };
    for m in computation.messages() {
        let (se, re) = computation.message_endpoints(m.id);
        flush_internals(m.sender, se.index, &mut clocks, &mut stamps, &mut cursor);
        flush_internals(m.receiver, re.index, &mut clocks, &mut stamps, &mut cursor);
        let mut v = clocks[m.sender].clone();
        v.merge_max(&clocks[m.receiver])
            .expect("all Fidge–Mattern clocks share dimension N");
        v.increment(m.sender);
        v.increment(m.receiver);
        clocks[m.sender] = v.clone();
        clocks[m.receiver] = v.clone();
        stamps[m.sender].push(v.clone());
        stamps[m.receiver].push(v);
        cursor[m.sender] += 1;
        cursor[m.receiver] += 1;
    }
    // Trailing internal events after each process's last message.
    for p in 0..n {
        let len = computation.history(p).len();
        flush_internals(p, len, &mut clocks, &mut stamps, &mut cursor);
    }
    debug_assert!((0..n).all(|p| stamps[p].len() == computation.history(p).len()));
    // Sanity: external slots carry the message stamp.
    debug_assert!((0..n).all(|p| {
        computation
            .history(p)
            .iter()
            .enumerate()
            .all(|(i, ev)| match ev {
                EventKind::Internal => true,
                _ => stamps[p][i].component(p) > 0,
            })
    }));
    EventClocks { dim: n, stamps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_trace::examples::{figure1, figure6};
    use synctime_trace::Builder;

    #[test]
    fn message_stamps_encode_fig1_and_fig6() {
        for comp in [figure1(), figure6()] {
            let stamps = stamp_messages(&comp);
            assert_eq!(stamps.dim(), comp.process_count());
            assert!(stamps.encodes(&Oracle::new(&comp)));
        }
    }

    #[test]
    fn event_clocks_encode_happened_before() {
        let mut b = Builder::new(3);
        b.internal(0).unwrap();
        b.message(0, 1).unwrap();
        b.internal(1).unwrap();
        b.message(1, 2).unwrap();
        b.internal(2).unwrap();
        b.internal(0).unwrap();
        let comp = b.build();
        let clocks = stamp_events(&comp);
        assert!(clocks.encodes(&comp, &Oracle::new(&comp)));
    }

    #[test]
    fn rendezvous_endpoints_share_vector() {
        let mut b = Builder::new(2);
        let m = b.message(0, 1).unwrap();
        let comp = b.build();
        let clocks = stamp_events(&comp);
        let (s, r) = comp.message_endpoints(m);
        assert_eq!(clocks.vector(s), clocks.vector(r));
        assert!(clocks.happened_before(s, r));
        assert!(clocks.happened_before(r, s));
        assert!(!clocks.concurrent(s, r));
    }

    #[test]
    fn internal_events_on_distinct_processes_concurrent() {
        let mut b = Builder::new(2);
        let e0 = b.internal(0).unwrap();
        let e1 = b.internal(1).unwrap();
        let comp = b.build();
        let clocks = stamp_events(&comp);
        assert!(clocks.concurrent(e0, e1));
    }

    #[test]
    fn message_stamp_values() {
        // Two disjoint messages then a joining one.
        let mut b = Builder::new(4);
        b.message(0, 1).unwrap(); // (1,1,0,0)
        b.message(2, 3).unwrap(); // (0,0,1,1)
        b.message(1, 2).unwrap(); // (1,2,2,1)
        let comp = b.build();
        let st = stamp_messages(&comp);
        assert_eq!(
            st.vector(synctime_trace::MessageId(0)).as_slice(),
            &[1, 1, 0, 0]
        );
        assert_eq!(
            st.vector(synctime_trace::MessageId(1)).as_slice(),
            &[0, 0, 1, 1]
        );
        assert_eq!(
            st.vector(synctime_trace::MessageId(2)).as_slice(),
            &[1, 2, 2, 1]
        );
    }
}
