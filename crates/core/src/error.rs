use std::fmt;

use synctime_graph::Edge;
use synctime_trace::ProcessId;

/// Errors produced by the timestamping algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A message was sent over a channel that belongs to no edge group of
    /// the decomposition — the decomposition does not cover the topology
    /// actually used by the computation.
    ChannelNotInDecomposition {
        /// The channel's edge.
        edge: Edge,
    },
    /// A process id exceeded the clock table created for the computation.
    ProcessOutOfRange {
        /// The offending process.
        process: ProcessId,
        /// The number of processes the stamper was prepared for.
        process_count: usize,
    },
    /// Two clocks of different dimensions met where one dimension was
    /// required: a merge, a delta application, or a reconfiguration remap
    /// whose domain/codomain disagreed with the session. Proceeding would
    /// silently truncate causal history, so the operation is refused.
    DimensionMismatch {
        /// The dimension the operation had to match.
        expected: usize,
        /// The dimension it actually saw.
        got: usize,
    },
    /// A clock backend cannot represent the requested dimension (e.g. the
    /// fixed-array backend asked to hold more components than it has
    /// lanes). Pick a wider backend; nothing truncates.
    DimensionUnsupported {
        /// The dimension that was requested.
        dim: usize,
        /// The backend's maximum dimension.
        capacity: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ChannelNotInDecomposition { edge } => {
                write!(
                    f,
                    "channel {edge} belongs to no edge group of the decomposition"
                )
            }
            CoreError::ProcessOutOfRange {
                process,
                process_count,
            } => {
                write!(f, "process {process} out of range ({process_count} clocks)")
            }
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            CoreError::DimensionUnsupported { dim, capacity } => {
                write!(
                    f,
                    "clock backend holds at most {capacity} components, {dim} requested"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}
