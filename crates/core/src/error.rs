use std::fmt;

use synctime_graph::Edge;
use synctime_trace::ProcessId;

/// Errors produced by the timestamping algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A message was sent over a channel that belongs to no edge group of
    /// the decomposition — the decomposition does not cover the topology
    /// actually used by the computation.
    ChannelNotInDecomposition {
        /// The channel's edge.
        edge: Edge,
    },
    /// A process id exceeded the clock table created for the computation.
    ProcessOutOfRange {
        /// The offending process.
        process: ProcessId,
        /// The number of processes the stamper was prepared for.
        process_count: usize,
    },
    /// A reconfiguration's group remap did not line up with the session's
    /// current dimension or the new decomposition's size.
    DimensionMismatch {
        /// The dimension the remap had to match.
        expected: usize,
        /// The dimension it actually described.
        got: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ChannelNotInDecomposition { edge } => {
                write!(
                    f,
                    "channel {edge} belongs to no edge group of the decomposition"
                )
            }
            CoreError::ProcessOutOfRange {
                process,
                process_count,
            } => {
                write!(f, "process {process} out of range ({process_count} clocks)")
            }
            CoreError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "group remap dimension mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}
