//! The paper's online timestamping algorithm (Section 3, Figure 5).
//!
//! Each process keeps a vector of dimension `d = |edge decomposition|`. To
//! stamp a message over a channel in edge group `E_g`:
//!
//! 1. the sender piggybacks its vector `v_i` on the message (line 02);
//! 2. the receiver sends its pre-update vector `v_j` back on the
//!    acknowledgement (line 04), then sets `v_j := max(v_j, v_i)` and
//!    increments `v_j[g]` (lines 05–06);
//! 3. the sender, on the acknowledgement, performs the same max and
//!    increment (lines 09–10).
//!
//! Both sides end with the identical vector, which *is* the message's
//! timestamp. Theorem 4 shows `m1 ↦ m2 ⟺ v(m1) < v(m2)`.
//!
//! The protocol is generic over the clock representation (the
//! [`Clock`] trait): [`GenericProcessClock`] and [`GenericOnlineSession`]
//! run the very same Figure 5 steps on any backend, and the aliases
//! [`ProcessClock`] / [`OnlineSession`] pin the default dense vector.
//!
//! Two entry points:
//!
//! * [`ProcessClock`] — one endpoint of the protocol, message by message;
//!   this is what a real runtime (see `synctime-runtime`) embeds, with the
//!   vectors physically piggybacked on program messages and acks.
//! * [`OnlineStamper`] — stamps a whole recorded [`SyncComputation`] in
//!   rendezvous order. [`stamp_computation_as`] is the backend-generic
//!   equivalent.

use synctime_graph::{Edge, EdgeDecomposition, GroupRemap};
use synctime_trace::SyncComputation;

use crate::clock::{Clock, DenseVec};
use crate::{CoreError, MessageTimestamps, VectorTime};

/// One process's local clock and its half of the Figure 5 protocol,
/// generic over the [`Clock`] backend.
///
/// ```
/// use synctime_core::online::ProcessClock;
///
/// let mut sender = ProcessClock::new(2);
/// let mut receiver = ProcessClock::new(2);
/// // Sender piggybacks its vector; channel lies in edge group 1.
/// let payload = sender.send_payload();
/// let (ack, t_recv) = receiver.on_receive(&payload, 1)?;
/// let t_send = sender.on_acknowledgement(&ack, 1)?;
/// assert_eq!(t_send, t_recv); // both sides agree on the timestamp
/// # Ok::<(), synctime_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericProcessClock<C: Clock> {
    vector: C,
}

/// The default dense-vector process clock (see [`GenericProcessClock`]).
pub type ProcessClock = GenericProcessClock<DenseVec>;

impl<C: Clock> From<C> for GenericProcessClock<C> {
    /// Wraps an existing clock value as a process clock — infallible entry
    /// point for callers that already hold a validated clock.
    fn from(vector: C) -> Self {
        GenericProcessClock { vector }
    }
}

impl<C: Clock> GenericProcessClock<C> {
    /// A fresh clock of dimension `dim`, initially all zeros.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionUnsupported`] when the backend cannot hold
    /// `dim` components.
    pub fn try_new(dim: usize) -> Result<Self, CoreError> {
        Ok(GenericProcessClock {
            vector: C::try_zero(dim)?,
        })
    }

    /// A fresh clock of dimension `dim`, initially all zeros.
    ///
    /// # Panics
    ///
    /// Panics when the backend cannot hold `dim` components (see
    /// [`GenericProcessClock::try_new`] for the fallible form). The
    /// default dense backend supports every dimension.
    pub fn new(dim: usize) -> Self {
        match Self::try_new(dim) {
            Ok(clock) => clock,
            Err(e) => panic!("{e}"),
        }
    }

    /// The current local clock.
    pub fn current(&self) -> &C {
        &self.vector
    }

    /// The current local clock in dense interchange form.
    pub fn current_vector(&self) -> VectorTime {
        self.vector.to_vector()
    }

    /// The clock to piggyback on an outgoing message (line 02).
    pub fn send_payload(&self) -> C {
        self.vector.clone()
    }

    /// Handles an incoming message whose channel lies in edge group
    /// `group`: returns the acknowledgement payload (the *pre-update*
    /// local clock, line 04) and the message's timestamp (lines 05–07).
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] if the payload dimension differs
    /// from this clock's; the clock is left unchanged.
    pub fn on_receive(&mut self, payload: &C, group: usize) -> Result<(C, C), CoreError> {
        let ack = self.vector.clone();
        self.vector.try_merge_max(payload)?;
        self.vector.increment(group);
        Ok((ack, self.vector.clone()))
    }

    /// Handles the acknowledgement of a message this process sent over a
    /// channel in edge group `group`: returns the message's timestamp
    /// (lines 09–11).
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] if the acknowledgement dimension
    /// differs from this clock's; the clock is left unchanged.
    pub fn on_acknowledgement(&mut self, ack: &C, group: usize) -> Result<C, CoreError> {
        self.vector.try_merge_max(ack)?;
        self.vector.increment(group);
        Ok(self.vector.clone())
    }

    /// Wire-facing [`GenericProcessClock::on_receive`]: the payload
    /// arrives in dense interchange form, optionally accompanied by the
    /// Singhal–Kshemkalyani change-set the stream decoder recovered. With
    /// a change-set the merge is delta-driven — sublinear for backends
    /// like [`crate::clock::TreeClock`] — sound because every earlier
    /// frame of a FIFO stream was already merged into this clock.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] as for
    /// [`GenericProcessClock::on_receive`].
    pub fn on_receive_interchange(
        &mut self,
        payload: &VectorTime,
        changes: Option<&[(usize, u64)]>,
        group: usize,
    ) -> Result<(VectorTime, VectorTime), CoreError> {
        let ack = self.vector.to_vector();
        match changes {
            Some(changes) => self.vector.merge_delta(changes)?,
            None => self.vector.merge_from_vector(payload)?,
        }
        self.vector.increment(group);
        Ok((ack, self.vector.to_vector()))
    }

    /// Wire-facing [`GenericProcessClock::on_acknowledgement`]; see
    /// [`GenericProcessClock::on_receive_interchange`] for the change-set
    /// contract.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] as for
    /// [`GenericProcessClock::on_acknowledgement`].
    pub fn on_acknowledgement_interchange(
        &mut self,
        ack: &VectorTime,
        changes: Option<&[(usize, u64)]>,
        group: usize,
    ) -> Result<VectorTime, CoreError> {
        match changes {
            Some(changes) => self.vector.merge_delta(changes)?,
            None => self.vector.merge_from_vector(ack)?,
        }
        self.vector.increment(group);
        Ok(self.vector.to_vector())
    }

    /// Rebases this clock after the edge decomposition was edited in place
    /// (see [`synctime_graph::IncrementalDecomposition`]): a surviving
    /// group's count moves to its new position, dissolved groups' counts
    /// are dropped, and fresh groups start at zero.
    ///
    /// Sound because every component of a stamp counts the group's
    /// rendezvous chain (any two messages of a star or triangle group share
    /// a process, so they are totally ordered): groups the remap preserves
    /// keep their chain and their count; fresh groups begin a new chain at
    /// zero *uniformly across processes*. Theorem 4 therefore continues to
    /// hold among messages stamped after the remap. Stamps issued *before*
    /// it live in the old coordinate space and must not be compared with
    /// newer ones unless the remap [is the
    /// identity](synctime_graph::GroupRemap::is_identity).
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] if the remap's domain differs from
    /// this clock's dimension, or [`CoreError::DimensionUnsupported`] if
    /// the backend cannot hold the new dimension.
    pub fn remap(&mut self, remap: &GroupRemap) -> Result<(), CoreError> {
        if remap.old_to_new.len() != self.vector.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.vector.dim(),
                got: remap.old_to_new.len(),
            });
        }
        let mut fresh = vec![0u64; remap.new_len];
        for (old, target) in remap.old_to_new.iter().enumerate() {
            if let Some(new) = target {
                fresh[*new] = self.vector.component(old);
            }
        }
        self.vector = C::from_vector(&VectorTime::from(fresh))?;
        Ok(())
    }
}

/// Stamps whole computations against a fixed edge decomposition.
#[derive(Debug, Clone)]
pub struct OnlineStamper {
    decomposition: EdgeDecomposition,
}

impl OnlineStamper {
    /// Creates a stamper for the given decomposition (assumed, as in the
    /// paper, to be known to all processes).
    pub fn new(decomposition: &EdgeDecomposition) -> Self {
        OnlineStamper {
            decomposition: decomposition.clone(),
        }
    }

    /// The timestamp dimension `d`.
    pub fn dim(&self) -> usize {
        self.decomposition.len()
    }

    /// The decomposition in use.
    pub fn decomposition(&self) -> &EdgeDecomposition {
        &self.decomposition
    }

    /// Runs the Figure 5 protocol over every message of `computation` in
    /// rendezvous order and returns the per-message timestamps.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ChannelNotInDecomposition`] if a message uses a
    /// channel outside the decomposition.
    pub fn stamp_computation(
        &self,
        computation: &SyncComputation,
    ) -> Result<MessageTimestamps, CoreError> {
        stamp_computation_as::<DenseVec>(&self.decomposition, computation)
    }
}

/// Runs the Figure 5 protocol over `computation` with clock backend `C`
/// and returns the per-message timestamps in dense interchange form.
///
/// Every backend produces the same stamps — the protocol is deterministic
/// component arithmetic — which is what the cross-backend differential
/// battery checks end to end.
///
/// # Errors
///
/// [`CoreError::ChannelNotInDecomposition`] if a message uses a channel
/// outside the decomposition; [`CoreError::DimensionUnsupported`] if the
/// backend cannot hold the decomposition's dimension.
pub fn stamp_computation_as<C: Clock>(
    decomposition: &EdgeDecomposition,
    computation: &SyncComputation,
) -> Result<MessageTimestamps, CoreError> {
    let mut session =
        GenericOnlineSession::<C>::try_new(decomposition, computation.process_count())?;
    let mut stamps = Vec::with_capacity(computation.message_count());
    for m in computation.messages() {
        stamps.push(session.stamp(m.sender, m.receiver)?);
    }
    Ok(MessageTimestamps::new(stamps))
}

/// An incremental stamping session: the clocks of all `n` processes, fed
/// one rendezvous at a time, generic over the [`Clock`] backend.
/// [`OnlineStamper::stamp_computation`] is a convenience wrapper around
/// the dense alias [`OnlineSession`].
///
/// ```
/// use synctime_core::online::OnlineSession;
/// use synctime_graph::{decompose, topology};
///
/// let topo = topology::star(3);
/// let dec = decompose::best_known(&topo);
/// let mut session = OnlineSession::new(&dec, topo.node_count());
/// let t1 = session.stamp(1, 0)?; // leaf 1 -> hub
/// let t2 = session.stamp(0, 2)?; // hub -> leaf 2
/// assert!(t1 < t2); // stars are totally ordered (Lemma 1)
/// # Ok::<(), synctime_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GenericOnlineSession<C: Clock> {
    decomposition: EdgeDecomposition,
    clocks: Vec<GenericProcessClock<C>>,
    stamped: usize,
}

/// The default dense-vector session (see [`GenericOnlineSession`]).
pub type OnlineSession = GenericOnlineSession<DenseVec>;

impl<C: Clock> GenericOnlineSession<C> {
    /// Starts a session for `process_count` processes.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionUnsupported`] when the backend cannot hold
    /// the decomposition's dimension.
    pub fn try_new(
        decomposition: &EdgeDecomposition,
        process_count: usize,
    ) -> Result<Self, CoreError> {
        let clock = GenericProcessClock::<C>::try_new(decomposition.len())?;
        Ok(GenericOnlineSession {
            decomposition: decomposition.clone(),
            clocks: vec![clock; process_count],
            stamped: 0,
        })
    }

    /// Starts a session for `process_count` processes.
    ///
    /// # Panics
    ///
    /// Panics when the backend cannot hold the decomposition's dimension
    /// (see [`GenericOnlineSession::try_new`]); the default dense backend
    /// supports every dimension.
    pub fn new(decomposition: &EdgeDecomposition, process_count: usize) -> Self {
        match Self::try_new(decomposition, process_count) {
            Ok(session) => session,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of messages stamped so far.
    pub fn stamped(&self) -> usize {
        self.stamped
    }

    /// The current clock of a process.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProcessOutOfRange`] for a bad id.
    pub fn clock(&self, process: usize) -> Result<&GenericProcessClock<C>, CoreError> {
        self.clocks
            .get(process)
            .ok_or(CoreError::ProcessOutOfRange {
                process,
                process_count: self.clocks.len(),
            })
    }

    /// Adds a fresh process (all-zero clock) to a running session and
    /// returns its id — the dynamic-join case: together with
    /// [`EdgeDecomposition::extend_star`] a new client can enter an
    /// existing star without changing the timestamp dimension or
    /// invalidating any issued timestamp.
    ///
    /// [`EdgeDecomposition::extend_star`]: synctime_graph::EdgeDecomposition::extend_star
    pub fn add_process(&mut self) -> usize {
        let clock = GenericProcessClock::<C>::try_new(self.decomposition.len())
            .expect("session dimension was validated at construction");
        self.clocks.push(clock);
        self.clocks.len() - 1
    }

    /// Extends star group `group` of the session's decomposition with a new
    /// channel (see [`EdgeDecomposition::extend_star`]).
    ///
    /// # Errors
    ///
    /// Propagates the decomposition's validation errors.
    ///
    /// [`EdgeDecomposition::extend_star`]: synctime_graph::EdgeDecomposition::extend_star
    pub fn extend_star(
        &mut self,
        group: usize,
        edge: Edge,
    ) -> Result<(), synctime_graph::GraphError> {
        self.decomposition.extend_star(group, edge)
    }

    /// Switches the session to a reconfigured decomposition whose group ids
    /// shifted per `remap` (as reported by
    /// [`synctime_graph::IncrementalDecomposition`]'s edits), rebasing every
    /// process clock with [`GenericProcessClock::remap`].
    ///
    /// After this call the session stamps against `decomposition`;
    /// timestamps issued before the call are comparable with later ones only
    /// if the remap [is the identity](GroupRemap::is_identity) (see
    /// [`GenericProcessClock::remap`] for why later stamps remain mutually
    /// sound).
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] if the remap's domain is not the
    /// session's current dimension or its codomain is not the new
    /// decomposition's size; [`CoreError::DimensionUnsupported`] if the
    /// backend cannot hold the new dimension.
    pub fn reconfigure(
        &mut self,
        decomposition: &EdgeDecomposition,
        remap: &GroupRemap,
    ) -> Result<(), CoreError> {
        if remap.old_to_new.len() != self.decomposition.len() {
            return Err(CoreError::DimensionMismatch {
                expected: self.decomposition.len(),
                got: remap.old_to_new.len(),
            });
        }
        if remap.new_len != decomposition.len() {
            return Err(CoreError::DimensionMismatch {
                expected: decomposition.len(),
                got: remap.new_len,
            });
        }
        for clock in &mut self.clocks {
            clock.remap(remap)?;
        }
        self.decomposition = decomposition.clone();
        Ok(())
    }

    /// Performs one rendezvous (message + acknowledgement) between
    /// `sender` and `receiver` and returns the message's timestamp in
    /// dense interchange form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ChannelNotInDecomposition`] if the channel's
    /// edge is in no group, or [`CoreError::ProcessOutOfRange`] for bad
    /// process ids.
    pub fn stamp(&mut self, sender: usize, receiver: usize) -> Result<VectorTime, CoreError> {
        for &p in &[sender, receiver] {
            if p >= self.clocks.len() {
                return Err(CoreError::ProcessOutOfRange {
                    process: p,
                    process_count: self.clocks.len(),
                });
            }
        }
        let edge = Edge::new(sender, receiver);
        let group = self
            .decomposition
            .group_of(edge)
            .ok_or(CoreError::ChannelNotInDecomposition { edge })?;
        let payload = self.clocks[sender].send_payload();
        let (ack, t_recv) = self.clocks[receiver].on_receive(&payload, group)?;
        let t_send = self.clocks[sender].on_acknowledgement(&ack, group)?;
        debug_assert_eq!(t_send, t_recv, "protocol endpoints must agree");
        self.stamped += 1;
        Ok(t_send.to_vector())
    }
}

/// Stamps a computation using the smallest decomposition the fast
/// constructions find for the given topology ([`synctime_graph::decompose::best_known`]).
///
/// # Errors
///
/// Returns [`CoreError::ChannelNotInDecomposition`] if the computation uses
/// a channel outside `topology`.
pub fn stamp_with_topology(
    computation: &SyncComputation,
    topology: &synctime_graph::Graph,
) -> Result<MessageTimestamps, CoreError> {
    let dec = synctime_graph::decompose::best_known(topology);
    OnlineStamper::new(&dec).stamp_computation(computation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{FixedArray16, TreeClock};
    use synctime_graph::{decompose, topology};
    use synctime_trace::examples::{figure6, figure6_decomposition};
    use synctime_trace::{Builder, MessageId, Oracle};

    #[test]
    fn fig6_exact_timestamps() {
        // Figure 6 of the paper: K5, decomposition {star@P1, star@P2,
        // triangle(P3,P4,P5)}, eight messages. The paper's walkthrough:
        // m3 = P2 -> P3 is stamped (1,1,1) from locals (1,0,0) and (0,0,1).
        let comp = figure6();
        let dec = figure6_decomposition();
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let expected: Vec<Vec<u64>> = vec![
            vec![1, 0, 0], // m1: P1 -> P2 (E1)
            vec![0, 0, 1], // m2: P3 -> P4 (E3)
            vec![1, 1, 1], // m3: P2 -> P3 (E2)  <- the paper's example
            vec![0, 0, 2], // m4: P4 -> P5 (E3)
            vec![2, 0, 2], // m5: P1 -> P4 (E1)
            vec![1, 2, 2], // m6: P2 -> P5 (E2)
            vec![1, 2, 3], // m7: P5 -> P3 (E3)
            vec![3, 2, 2], // m8: P1 -> P2 (E1)
        ];
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(
                stamps.vector(MessageId(i)).as_slice(),
                exp.as_slice(),
                "m{}",
                i + 1
            );
        }
        // And the timestamps encode the poset (Theorem 4).
        assert!(stamps.encodes(&Oracle::new(&comp)));
        // Every backend reproduces the walkthrough bit for bit.
        for stamps in [
            stamp_computation_as::<TreeClock>(&dec, &comp).unwrap(),
            stamp_computation_as::<FixedArray16>(&dec, &comp).unwrap(),
        ] {
            for (i, exp) in expected.iter().enumerate() {
                assert_eq!(stamps.vector(MessageId(i)).as_slice(), exp.as_slice());
            }
        }
    }

    #[test]
    fn protocol_sides_agree() {
        let mut a = ProcessClock::new(3);
        let mut b = ProcessClock::new(3);
        let payload = a.send_payload();
        let (ack, tr) = b.on_receive(&payload, 2).unwrap();
        let ts = a.on_acknowledgement(&ack, 2).unwrap();
        assert_eq!(tr, ts);
        assert_eq!(a.current(), b.current());
        assert_eq!(ts.as_slice(), &[0, 0, 1]);
    }

    #[test]
    fn protocol_rejects_mismatched_payloads() {
        let mut clock = ProcessClock::new(2);
        let before = clock.current().clone();
        assert!(clock.on_receive(&VectorTime::zero(3), 0).is_err());
        assert!(clock.on_acknowledgement(&VectorTime::zero(5), 0).is_err());
        // A refused merge leaves the clock untouched.
        assert_eq!(clock.current(), &before);
    }

    #[test]
    fn interchange_paths_match_native_protocol() {
        // The wire-facing delta path and the native path produce the same
        // stamps on every backend.
        let mut native = GenericProcessClock::<TreeClock>::try_new(4).unwrap();
        let mut wire = GenericProcessClock::<TreeClock>::try_new(4).unwrap();
        let payload = VectorTime::from(vec![2, 0, 1, 0]);
        let (ack_n, stamp_n) = native
            .on_receive(&TreeClock::from_vector(&payload).unwrap(), 1)
            .unwrap();
        // The change-set names exactly the nonzero components.
        let (ack_w, stamp_w) = wire
            .on_receive_interchange(&payload, Some(&[(0, 2), (2, 1)]), 1)
            .unwrap();
        assert_eq!(ack_n.to_vector(), ack_w);
        assert_eq!(stamp_n.to_vector(), stamp_w);
        let t_n = native
            .on_acknowledgement(&TreeClock::from_vector(&payload).unwrap(), 0)
            .unwrap();
        let t_w = wire
            .on_acknowledgement_interchange(&payload, None, 0)
            .unwrap();
        assert_eq!(t_n.to_vector(), t_w);
    }

    #[test]
    fn ack_carries_pre_update_vector() {
        // Line 04 of Figure 5: the ack is the receiver's vector *before*
        // the max/increment. If it carried the post-update vector the
        // sender would double-increment.
        let mut receiver = ProcessClock::new(1);
        let (ack, stamp) = receiver.on_receive(&VectorTime::zero(1), 0).unwrap();
        assert_eq!(ack.as_slice(), &[0]);
        assert_eq!(stamp.as_slice(), &[1]);
    }

    #[test]
    fn star_topology_single_integer() {
        // Lemma 1: on a star every pair of messages is ordered; a single
        // component suffices and the stamps are strictly increasing.
        let topo = topology::star(4);
        let dec = decompose::best_known(&topo);
        assert_eq!(dec.len(), 1);
        let mut b = Builder::with_topology(&topo);
        for leaf in 1..=4 {
            b.message(0, leaf).unwrap();
            b.message(leaf, 0).unwrap();
        }
        let comp = b.build();
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let values: Vec<u64> = stamps.vectors().iter().map(|v| v.component(0)).collect();
        assert_eq!(values, (1..=8).collect::<Vec<u64>>());
        assert!(stamps.encodes(&Oracle::new(&comp)));
    }

    #[test]
    fn unknown_channel_rejected() {
        let dec = decompose::best_known(&topology::path(3)); // covers 0-1, 1-2
        let mut b = Builder::new(3);
        b.message(0, 2).unwrap(); // not a channel of the path
        let comp = b.build();
        let err = OnlineStamper::new(&dec)
            .stamp_computation(&comp)
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::ChannelNotInDecomposition {
                edge: Edge::new(0, 2)
            }
        );
    }

    #[test]
    fn session_rejects_bad_process() {
        let dec = decompose::best_known(&topology::path(3));
        let mut s = OnlineSession::new(&dec, 3);
        assert!(matches!(
            s.stamp(0, 9),
            Err(CoreError::ProcessOutOfRange { process: 9, .. })
        ));
        assert!(s.clock(5).is_err());
        assert!(s.clock(2).is_ok());
    }

    #[test]
    fn fixed_backend_session_rejects_wide_decompositions() {
        // complete:20 decomposes to d = 18 > 16 lanes: typed error, no
        // truncation.
        let dec = decompose::best_known(&topology::complete(20));
        assert!(dec.len() > 16);
        let err = GenericOnlineSession::<FixedArray16>::try_new(&dec, 20).unwrap_err();
        assert!(matches!(err, CoreError::DimensionUnsupported { .. }));
    }

    #[test]
    fn incremental_session_matches_batch() {
        let topo = topology::complete(4);
        let dec = decompose::best_known(&topo);
        let mut b = Builder::with_topology(&topo);
        let pairs = [(0, 1), (2, 3), (1, 2), (3, 0), (1, 3)];
        for (s, r) in pairs {
            b.message(s, r).unwrap();
        }
        let comp = b.build();
        let batch = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let mut session = OnlineSession::new(&dec, 4);
        let mut tree = GenericOnlineSession::<TreeClock>::try_new(&dec, 4).unwrap();
        for (i, (s, r)) in pairs.iter().enumerate() {
            let t = session.stamp(*s, *r).unwrap();
            assert_eq!(&t, batch.vector(MessageId(i)));
            assert_eq!(tree.stamp(*s, *r).unwrap(), t);
        }
        assert_eq!(session.stamped(), pairs.len());
    }

    #[test]
    fn clock_remap_moves_surviving_counts() {
        let mut clock = ProcessClock::new(3);
        // Drive the clock to (2, 1, 3).
        for (group, times) in [(0usize, 2usize), (1, 1), (2, 3)] {
            for _ in 0..times {
                clock
                    .on_acknowledgement(&VectorTime::zero(3), group)
                    .unwrap();
            }
        }
        assert_eq!(clock.current().as_slice(), &[2, 1, 3]);
        // Group 1 dissolves, groups 0 and 2 swap, one fresh group appears.
        clock
            .remap(&GroupRemap {
                old_to_new: vec![Some(2), None, Some(0)],
                new_len: 4,
            })
            .unwrap();
        assert_eq!(clock.current().as_slice(), &[3, 0, 2, 0]);
    }

    #[test]
    fn session_reconfigure_follows_topology_edits() {
        use synctime_graph::IncrementalDecomposition;

        // A hub with two clients; a third client joins mid-session, then a
        // disconnected pair appears (fresh group), then the pair is cut.
        let mut g = synctime_graph::Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut cache = IncrementalDecomposition::new(&g);
        let mut session = OnlineSession::new(cache.decomposition(), 6);
        let t1 = session.stamp(1, 0).unwrap();

        // Join absorbed by the hub star: identity remap, old stamps stay
        // comparable and the session keeps its counts.
        let remap = cache.insert_edge(0, 3).unwrap();
        assert!(remap.is_identity());
        session.reconfigure(cache.decomposition(), &remap).unwrap();
        let t2 = session.stamp(3, 0).unwrap();
        assert!(t1 < t2);

        // A disconnected pair: dimension grows; surviving counts carry over.
        let remap = cache.insert_edge(4, 5).unwrap();
        session.reconfigure(cache.decomposition(), &remap).unwrap();
        let t3 = session.stamp(4, 5).unwrap();
        let t4 = session.stamp(0, 2).unwrap();
        assert!(t3 < t4 || t4.partial_cmp(&t3).is_none());
        assert_eq!(t4.dim(), cache.decomposition().len());

        // Cutting the pair dissolves its singleton group.
        let remap = cache.remove_edge(4, 5).unwrap();
        session.reconfigure(cache.decomposition(), &remap).unwrap();
        let t5 = session.stamp(2, 0).unwrap();
        assert_eq!(t5.dim(), cache.decomposition().len());
        // The hub group's chain kept counting across every reconfiguration.
        assert!(t4.as_slice().iter().max() < t5.as_slice().iter().max());
    }

    #[test]
    fn reconfigure_rejects_mismatched_remaps() {
        let dec = decompose::best_known(&topology::path(3)); // d = 1
        let mut session = OnlineSession::new(&dec, 3);
        let bad_domain = GroupRemap {
            old_to_new: vec![Some(0), Some(1)],
            new_len: dec.len(),
        };
        assert!(matches!(
            session.reconfigure(&dec, &bad_domain),
            Err(CoreError::DimensionMismatch { .. })
        ));
        let bad_codomain = GroupRemap {
            old_to_new: (0..dec.len()).map(Some).collect(),
            new_len: dec.len() + 2,
        };
        assert!(matches!(
            session.reconfigure(&dec, &bad_codomain),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn stamp_with_topology_convenience() {
        let topo = topology::client_server(2, 3);
        let mut b = Builder::with_topology(&topo);
        b.message(2, 0).unwrap();
        b.message(3, 1).unwrap();
        let comp = b.build();
        let stamps = stamp_with_topology(&comp, &topo).unwrap();
        assert_eq!(stamps.dim(), 2);
        assert!(stamps.encodes(&Oracle::new(&comp)));
    }

    #[test]
    fn empty_computation_stamps_nothing() {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let comp = Builder::with_topology(&topo).build();
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        assert!(stamps.is_empty());
    }
}
