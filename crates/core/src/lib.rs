//! Message and event timestamping for synchronous computations — the
//! algorithms of *Garg & Skawratananond, "Timestamping Messages in
//! Synchronous Computations" (ICDCS 2002)*.
//!
//! In a system of `N` processes whose messages are all **synchronous**
//! (blocking rendezvous), the messages form a poset `(M, ↦)` under
//! "synchronously precedes". This crate assigns each message a vector
//! timestamp `v(m)` with
//!
//! ```text
//! m1 ↦ m2  ⟺  v(m1) < v(m2)        (vector order)
//! ```
//!
//! using far fewer than `N` components:
//!
//! * [`online`] — the paper's **online algorithm** (Figure 5): one
//!   component per edge group of a star/triangle decomposition of the
//!   communication topology; sender and receiver exchange vectors on each
//!   message (piggybacked on the message and its acknowledgement), take the
//!   component-wise max, and increment the component of the channel's
//!   group. Vector size ≤ `min(β(G), N − 2)` (Theorem 5).
//! * [`offline`] — the **offline algorithm** (Figure 9): the message poset
//!   has width ≤ `⌊N/2⌋` (Theorem 8), so a chain realizer of that many
//!   linear extensions exists; `V_m[i]` is the number of messages before
//!   `m` in extension `L_i`.
//! * [`events`] — the Section 5 extension to **internal events**: the
//!   triple `(prev(e), succ(e), c(e))` captures Lamport's happened-before
//!   (Theorem 9).
//! * [`fm`] — the Fidge–Mattern baseline (one component per process), for
//!   both messages and events.
//! * [`lamport`] — scalar Lamport clocks, which also witness synchrony.
//!
//! The related-work mechanisms of the paper's Section 6 are implemented for
//! quantitative comparison: [`plausible`] (Torres-Rojas & Ahamad's
//! fixed-size, approximate clocks), [`fz`] (Fowler–Zwaenepoel direct
//! dependencies with offline tracing), and [`wire`] (varint wire encodings
//! including the Singhal–Kshemkalyani differential technique).
//!
//! The clock *representation* is pluggable: the [`clock`] module defines
//! the [`Clock`] trait with three backends — [`DenseVec`] (a plain
//! vector), [`TreeClock`] (sublinear delta merges), and [`FixedArray`]
//! (fixed-lane fast path for small dimensions) — all producing identical
//! stamps.
//!
//! # Quickstart
//!
//! ```
//! use synctime_core::online::OnlineStamper;
//! use synctime_graph::{decompose, topology};
//! use synctime_trace::Builder;
//!
//! // A 3-server, 5-client RPC system: clocks have 3 components, not 8.
//! let topo = topology::client_server(3, 5);
//! let dec = decompose::best_known(&topo);
//! assert_eq!(dec.len(), 3);
//!
//! let mut b = Builder::with_topology(&topo);
//! let m1 = b.message(3, 0)?; // client 0 calls server 0
//! let m2 = b.message(4, 1)?; // client 1 calls server 1 (concurrent)
//! let m3 = b.message(3, 1)?; // client 0 then calls server 1
//! let comp = b.build();
//!
//! let stamps = OnlineStamper::new(&dec).stamp_computation(&comp)?;
//! assert!(stamps.precedes(m1, m3));
//! assert!(stamps.concurrent(m1, m2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod vector;

pub mod clock;
pub mod events;
pub mod fm;
pub mod fz;
pub mod kernel;
pub mod lamport;
pub mod offline;
pub mod online;
pub mod plausible;
pub mod wire;

pub use clock::{Clock, ClockBackend, DenseVec, FixedArray, FixedArray16, TreeClock};
pub use error::CoreError;
pub use vector::{MessageTimestamps, VectorOrder, VectorTime};
