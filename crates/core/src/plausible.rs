//! Plausible clocks (Torres-Rojas & Ahamad), the fixed-size baseline the
//! paper's related-work section contrasts against.
//!
//! A plausible clock keeps a **constant number of entries** `R` regardless
//! of the process count, mapping process `p` to entry `p mod R` (the
//! "R-entries vector" scheme). It is *consistent* — `m1 ↦ m2 ⇒ v(m1) <
//! v(m2)` — but not *characterizing*: when distinct processes share an
//! entry, concurrent messages can appear ordered. Its accuracy degrades as
//! `N/R` grows, whereas the paper's edge-decomposition clocks are exact at
//! dimension `d` (often constant too). The `table_plausible` experiment
//! quantifies that trade.

use synctime_trace::{MessageId, Oracle, SyncComputation};

use crate::{MessageTimestamps, VectorOrder, VectorTime};

/// Stamps every message with an `R`-entry plausible clock.
///
/// On a rendezvous of `P_i` and `P_j`, both adopt the component-wise max
/// and the entries `i mod R` and `j mod R` are incremented (once if they
/// coincide).
///
/// # Panics
///
/// Panics if `entries == 0`.
pub fn stamp_messages(computation: &SyncComputation, entries: usize) -> MessageTimestamps {
    assert!(entries > 0, "a plausible clock needs at least one entry");
    let mapping: Vec<usize> = (0..computation.process_count())
        .map(|p| p % entries)
        .collect();
    stamp_messages_with_mapping(computation, entries, &mapping)
}

/// Plausible clocks with an arbitrary process→entry `mapping` — the
/// general form behind both the mod-`R` scheme ([`stamp_messages`]) and
/// *cluster clocks* in the spirit of Ward & Taylor's hierarchical
/// timestamps: map each process to its cluster and events inside a cluster
/// share an entry. Topology-aware mappings (e.g. one cluster per server
/// star) lose far less concurrency than blind mod-`R` at the same size,
/// which the `table_plausible` experiment quantifies.
///
/// Consistency (`m1 ↦ m2 ⇒ v(m1) < v(m2)`) holds for every mapping; only
/// concurrency detection degrades.
///
/// # Panics
///
/// Panics if `entries == 0`, `mapping.len()` differs from the process
/// count, or a mapping entry is out of range.
pub fn stamp_messages_with_mapping(
    computation: &SyncComputation,
    entries: usize,
    mapping: &[usize],
) -> MessageTimestamps {
    assert!(entries > 0, "a plausible clock needs at least one entry");
    assert_eq!(
        mapping.len(),
        computation.process_count(),
        "one mapping entry per process"
    );
    assert!(
        mapping.iter().all(|&e| e < entries),
        "mapping entries must be below the clock size"
    );
    let n = computation.process_count();
    let mut clocks: Vec<VectorTime> = vec![VectorTime::zero(entries); n];
    let mut stamps = Vec::with_capacity(computation.message_count());
    for m in computation.messages() {
        let mut v = clocks[m.sender].clone();
        v.merge_max(&clocks[m.receiver])
            .expect("all plausible clocks share one entry count");
        let (ei, ej) = (mapping[m.sender], mapping[m.receiver]);
        v.increment(ei);
        if ej != ei {
            v.increment(ej);
        }
        clocks[m.sender] = v.clone();
        clocks[m.receiver] = v.clone();
        stamps.push(v);
    }
    MessageTimestamps::new(stamps)
}

/// Accuracy of a plausible-clock stamping against the ground truth: the
/// rates of correct verdicts over ordered and concurrent pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Ordered pairs (either direction) whose order the clock reported
    /// correctly, over all ordered pairs. Consistency predicts 1.0.
    pub ordered_recall: f64,
    /// Concurrent pairs the clock correctly left unordered, over all
    /// concurrent pairs. This is what shrinking `R` sacrifices.
    pub concurrency_recall: f64,
    /// Number of ordered pairs examined.
    pub ordered_pairs: usize,
    /// Number of concurrent pairs examined.
    pub concurrent_pairs: usize,
}

/// Measures [`Accuracy`] of `stamps` against `oracle` over every unordered
/// message pair. `O(|M|²)`.
pub fn accuracy(stamps: &MessageTimestamps, oracle: &Oracle) -> Accuracy {
    let n = stamps.len();
    let mut ordered_pairs = 0usize;
    let mut ordered_ok = 0usize;
    let mut concurrent_pairs = 0usize;
    let mut concurrent_ok = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (MessageId(i), MessageId(j));
            let cmp = stamps.vector(a).compare(stamps.vector(b));
            if oracle.synchronously_precedes(a, b) {
                ordered_pairs += 1;
                ordered_ok += usize::from(cmp == VectorOrder::Less);
            } else if oracle.synchronously_precedes(b, a) {
                ordered_pairs += 1;
                ordered_ok += usize::from(cmp == VectorOrder::Greater);
            } else {
                concurrent_pairs += 1;
                concurrent_ok +=
                    usize::from(matches!(cmp, VectorOrder::Concurrent | VectorOrder::Equal));
            }
        }
    }
    Accuracy {
        ordered_recall: if ordered_pairs == 0 {
            1.0
        } else {
            ordered_ok as f64 / ordered_pairs as f64
        },
        concurrency_recall: if concurrent_pairs == 0 {
            1.0
        } else {
            concurrent_ok as f64 / concurrent_pairs as f64
        },
        ordered_pairs,
        concurrent_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synctime_trace::Builder;

    fn random_comp(n: usize, msgs: usize, seed: u64) -> SyncComputation {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Builder::new(n);
        for _ in 0..msgs {
            let s = rng.gen_range(0..n);
            let mut r = rng.gen_range(0..n);
            while r == s {
                r = rng.gen_range(0..n);
            }
            b.message(s, r).unwrap();
        }
        b.build()
    }

    #[test]
    fn full_size_plausible_is_exact() {
        // R = N degenerates to the FM construction: exact.
        let comp = random_comp(6, 40, 1);
        let stamps = stamp_messages(&comp, 6);
        let oracle = Oracle::new(&comp);
        assert!(stamps.encodes(&oracle));
        let acc = accuracy(&stamps, &oracle);
        assert_eq!(acc.ordered_recall, 1.0);
        assert_eq!(acc.concurrency_recall, 1.0);
    }

    #[test]
    fn consistency_holds_at_any_size() {
        // Ordered pairs are always reported ordered, even at R = 1.
        let comp = random_comp(8, 60, 2);
        let oracle = Oracle::new(&comp);
        for r in [1, 2, 3, 5] {
            let acc = accuracy(&stamp_messages(&comp, r), &oracle);
            assert_eq!(acc.ordered_recall, 1.0, "R={r}");
        }
    }

    #[test]
    fn small_clocks_lose_concurrency() {
        // With many processes folded into R = 1 entry, every pair looks
        // ordered: concurrency recall collapses (yet consistency holds).
        let comp = random_comp(10, 80, 3);
        let oracle = Oracle::new(&comp);
        let tiny = accuracy(&stamp_messages(&comp, 1), &oracle);
        let full = accuracy(&stamp_messages(&comp, 10), &oracle);
        assert!(tiny.concurrency_recall < full.concurrency_recall);
        assert_eq!(full.concurrency_recall, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        stamp_messages(&Builder::new(2).build(), 0);
    }

    #[test]
    fn cluster_mapping_beats_blind_mod_r() {
        // A 2-server client-server workload: cluster each client with the
        // server it mostly talks to. At size 2, the cluster mapping keeps
        // far more concurrency than p mod 2.
        let mut b = Builder::new(6); // servers 0,1; clients 2,3 (-> 0), 4,5 (-> 1)
        for round in 0..8 {
            let c0 = 2 + (round % 2);
            let c1 = 4 + (round % 2);
            b.message(c0, 0).unwrap();
            b.message(0, c0).unwrap();
            b.message(c1, 1).unwrap();
            b.message(1, c1).unwrap();
        }
        let comp = b.build();
        let oracle = Oracle::new(&comp);
        // Cluster mapping: {0,2,3} -> 0, {1,4,5} -> 1.
        let clustered = stamp_messages_with_mapping(&comp, 2, &[0, 1, 0, 0, 1, 1]);
        let blind = stamp_messages(&comp, 2);
        let acc_c = accuracy(&clustered, &oracle);
        let acc_b = accuracy(&blind, &oracle);
        assert_eq!(acc_c.ordered_recall, 1.0);
        assert_eq!(acc_b.ordered_recall, 1.0);
        assert!(
            acc_c.concurrency_recall > acc_b.concurrency_recall,
            "clustered {} <= blind {}",
            acc_c.concurrency_recall,
            acc_b.concurrency_recall
        );
        // In fact, clustering by the two independent halves is exact here.
        assert_eq!(acc_c.concurrency_recall, 1.0);
    }

    #[test]
    #[should_panic(expected = "one mapping entry per process")]
    fn mapping_arity_checked() {
        stamp_messages_with_mapping(&Builder::new(3).build(), 2, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "below the clock size")]
    fn mapping_range_checked() {
        stamp_messages_with_mapping(&Builder::new(2).build(), 2, &[0, 5]);
    }
}
