//! Chunked 8-lane merge/compare kernels over `u64` lanes.
//!
//! These are the scalar-code-shaped inner loops behind
//! [`VectorTime::merge_max`], [`VectorTime::compare`], and the
//! [`FixedArray`] backend: each walks its input in chunks of exactly
//! eight lanes (`chunks_exact`) with an exact-remainder tail, which is
//! the shape LLVM reliably autovectorizes on stable Rust without any
//! nightly features, `unsafe`, or per-target intrinsics. The fixed trip
//! count inside a chunk removes the loop-carried bounds checks and lets
//! the backend pick whatever SIMD width the target offers.
//!
//! Semantics are bit-for-bit identical to the straightforward scalar
//! loops they replaced, so every [`Clock`] backend stays byte-identical
//! under the cross-backend differential battery.
//!
//! [`VectorTime::merge_max`]: crate::VectorTime::merge_max
//! [`VectorTime::compare`]: crate::VectorTime::compare
//! [`FixedArray`]: crate::FixedArray
//! [`Clock`]: crate::Clock

/// Lanes per vectorized chunk.
const LANES: usize = 8;

/// Component-wise maximum: `dst[i] = max(dst[i], src[i])` for all lanes.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length; callers
/// validate dimensions before reaching the kernel.
#[inline]
pub fn merge_max_lanes(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let split = dst.len() - dst.len() % LANES;
    let (dst_body, dst_tail) = dst.split_at_mut(split);
    let (src_body, src_tail) = src.split_at(split);
    for (d, s) in dst_body
        .chunks_exact_mut(LANES)
        .zip(src_body.chunks_exact(LANES))
    {
        for i in 0..LANES {
            d[i] = d[i].max(s[i]);
        }
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d = (*d).max(*s);
    }
}

/// Vector-order comparison skeleton: returns `(some_less, some_greater)`
/// where `some_less` means `a[i] < b[i]` for at least one lane and
/// `some_greater` means `a[i] > b[i]` for at least one lane.
///
/// The per-chunk accumulation is branchless (`|=` of lane predicates);
/// the only branch is a per-chunk early exit once both flags are set,
/// at which point the answer (`Concurrent`) can no longer change.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length.
#[inline]
pub fn compare_lanes(a: &[u64], b: &[u64]) -> (bool, bool) {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut some_less = false;
    let mut some_greater = false;
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        let mut less = false;
        let mut greater = false;
        for i in 0..LANES {
            less |= ca[i] < cb[i];
            greater |= ca[i] > cb[i];
        }
        some_less |= less;
        some_greater |= greater;
        if some_less && some_greater {
            return (true, true);
        }
    }
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        some_less |= x < y;
        some_greater |= x > y;
    }
    (some_less, some_greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementations: the pre-kernel scalar loops.
    fn merge_ref(dst: &mut [u64], src: &[u64]) {
        for (a, b) in dst.iter_mut().zip(src) {
            *a = (*a).max(*b);
        }
    }

    fn compare_ref(a: &[u64], b: &[u64]) -> (bool, bool) {
        let mut less = false;
        let mut greater = false;
        for (x, y) in a.iter().zip(b) {
            less |= x < y;
            greater |= x > y;
        }
        (less, greater)
    }

    fn pseudo(seed: u64, len: usize) -> Vec<u64> {
        // splitmix64 stream — deterministic, covers equal/less/greater lanes.
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) % 5
            })
            .collect()
    }

    #[test]
    fn merge_matches_reference_at_every_length() {
        for len in 0..=67 {
            let a = pseudo(len as u64, len);
            let b = pseudo(len as u64 + 1000, len);
            let mut kernel = a.clone();
            let mut reference = a.clone();
            merge_max_lanes(&mut kernel, &b);
            merge_ref(&mut reference, &b);
            assert_eq!(kernel, reference, "len={len}");
        }
    }

    #[test]
    fn compare_matches_reference_at_every_length() {
        for len in 0..=67 {
            for (sa, sb) in [(1, 2), (3, 3), (7, 11)] {
                let a = pseudo(sa + len as u64, len);
                let b = pseudo(sb + len as u64, len);
                assert_eq!(compare_lanes(&a, &b), compare_ref(&a, &b), "len={len}");
            }
        }
    }

    #[test]
    fn compare_directed_cases() {
        assert_eq!(compare_lanes(&[], &[]), (false, false));
        assert_eq!(compare_lanes(&[1; 9], &[1; 9]), (false, false));
        assert_eq!(compare_lanes(&[0; 17], &[1; 17]), (true, false));
        assert_eq!(compare_lanes(&[2; 17], &[1; 17]), (false, true));
        let mut a = vec![1u64; 16];
        let mut b = vec![1u64; 16];
        a[0] = 0; // less in chunk 0
        b[15] = 0; // greater in chunk 1
        assert_eq!(compare_lanes(&a, &b), (true, true));
        // Divergence only in the tail.
        let a = [1u64, 1, 1, 1, 1, 1, 1, 1, 0];
        let b = [1u64, 1, 1, 1, 1, 1, 1, 1, 2];
        assert_eq!(compare_lanes(&a, &b), (true, false));
    }
}
