//! Scalar Lamport clocks for synchronous computations.
//!
//! One integer per process: a rendezvous between `P_i` and `P_j` sets both
//! clocks to `max(L_i, L_j) + 1`, which is the message's scalar timestamp.
//! Lamport clocks are *consistent* (`m1 ↦ m2 ⇒ L(m1) < L(m2)`) but not
//! *characterizing* — concurrent messages may receive ordered scalars — so
//! they serve here as the cheap baseline and as a synchrony witness: the
//! assignment increases along every local history and is equal at the two
//! endpoints of each message, which is exactly Charron-Bost et al.'s
//! criterion for a computation being synchronous (Section 2 of the paper).

use synctime_trace::SyncComputation;

/// The scalar timestamp of each message, indexed by message id.
pub fn stamp_messages(computation: &SyncComputation) -> Vec<u64> {
    let mut clocks = vec![0u64; computation.process_count()];
    computation
        .messages()
        .iter()
        .map(|m| {
            let t = clocks[m.sender].max(clocks[m.receiver]) + 1;
            clocks[m.sender] = t;
            clocks[m.receiver] = t;
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_trace::examples::figure6;
    use synctime_trace::{Builder, MessageId, Oracle};

    #[test]
    fn consistency_with_the_order() {
        let comp = figure6();
        let stamps = stamp_messages(&comp);
        let oracle = Oracle::new(&comp);
        for i in 0..comp.message_count() {
            for j in 0..comp.message_count() {
                if oracle.synchronously_precedes(MessageId(i), MessageId(j)) {
                    assert!(stamps[i] < stamps[j], "m{} -> m{}", i + 1, j + 1);
                }
            }
        }
    }

    #[test]
    fn witness_properties() {
        let comp = figure6();
        let stamps = stamp_messages(&comp);
        // Increasing along every local history.
        for p in 0..comp.process_count() {
            let local: Vec<u64> = comp
                .process_messages(p)
                .iter()
                .map(|m| stamps[m.0])
                .collect();
            assert!(
                local.windows(2).all(|w| w[0] < w[1]),
                "P{}: {local:?}",
                p + 1
            );
        }
    }

    #[test]
    fn not_characterizing() {
        // Two concurrent messages get the same scalar — Lamport clocks
        // cannot detect concurrency, which is the point of vectors.
        let mut b = Builder::new(4);
        let a = b.message(0, 1).unwrap();
        let c = b.message(2, 3).unwrap();
        let comp = b.build();
        let stamps = stamp_messages(&comp);
        let oracle = Oracle::new(&comp);
        assert!(oracle.concurrent(a, c));
        assert_eq!(stamps[a.0], stamps[c.0]);
    }

    #[test]
    fn empty() {
        assert!(stamp_messages(&Builder::new(2).build()).is_empty());
    }
}
