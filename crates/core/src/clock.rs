//! Pluggable clock backends behind one [`Clock`] trait.
//!
//! Every timestamping algorithm in this crate bottoms out in the same four
//! operations on a vector of counters: component-wise max-merge, increment
//! of one component, vector-order comparison, and (de)serialization. The
//! [`Clock`] trait abstracts that seam so the representation can be chosen
//! per run without touching the protocol logic:
//!
//! * [`DenseVec`] — the plain `Vec<u64>` the paper describes
//!   ([`VectorTime`] itself); every merge walks all `N` components.
//! * [`TreeClock`] — a segment tree over the components with per-node
//!   `(min, max)` summaries. Merges driven by Singhal–Kshemkalyani delta
//!   change-sets touch `O(k log N)` nodes for `k` changed components, and
//!   full merges skip every subtree the incoming clock does not dominate —
//!   the sublinear-join idea of the *Tree Clock* paper (arXiv 2201.06325)
//!   specialised to our delta streams.
//! * [`FixedArray`] — a `[u64; K]` with a fixed-trip-count merge loop the
//!   compiler auto-vectorises; the small-dimension fast path (the paper's
//!   whole point is that `d ≪ N`, so most topologies fit `K = 16`).
//!
//! All three produce **identical** stamps for the same computation — the
//! differential battery in `tests/differential_timestamps.rs` proves every
//! backend pair order-isomorphic (and in fact equal) on random, faulted,
//! and reconfigured traces. Selection is plumbed through
//! `synctime run --clock dense|tree|fixed` via [`ClockBackend`].

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use crate::kernel;
use crate::{CoreError, VectorOrder, VectorTime};

/// The operations a vector-clock representation must provide to run the
/// paper's protocols (merge / increment / compare / dims / serialize).
///
/// Implementations must behave exactly like a `dim()`-component vector of
/// `u64` counters under component-wise max and vector order; the protocol
/// layers rely on that to keep every backend's stamps interchangeable.
pub trait Clock: Clone + PartialEq + Eq + fmt::Debug + Send + Sync + 'static {
    /// Short backend name (`"dense"`, `"tree"`, `"fixed"`), used by CLI
    /// selection and bench labels.
    const NAME: &'static str;

    /// The all-zero clock of the given dimension.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionUnsupported`] when the backend cannot
    /// represent `dim` components (e.g. [`FixedArray`] with `dim > K`).
    fn try_zero(dim: usize) -> Result<Self, CoreError>;

    /// The number of components.
    fn dim(&self) -> usize;

    /// One component's value.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    fn component(&self, idx: usize) -> u64;

    /// Increments component `idx` (lines 6 and 10 of Figure 5).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    fn increment(&mut self, idx: usize);

    /// Component-wise maximum with `other` (lines 5 and 9 of Figure 5).
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] when the dimensions differ; the
    /// clock is left unchanged. No backend may silently truncate.
    fn try_merge_max(&mut self, other: &Self) -> Result<(), CoreError>;

    /// Merges a Singhal–Kshemkalyani change-set: for every `(idx, value)`
    /// pair, `self[idx] := max(self[idx], value)`. Sound as a substitute
    /// for a full merge whenever the unchanged components of the sending
    /// clock were already merged on an earlier message of the same stream.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] when any index is out of range;
    /// entries before the offending one may already be applied (callers
    /// treat the error as terminal for the stream, exactly like a failed
    /// full merge).
    fn merge_delta(&mut self, changes: &[(usize, u64)]) -> Result<(), CoreError>;

    /// Merges a dense [`VectorTime`] into this clock — the interchange
    /// path used when the other side of the wire sent a full vector.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] when the dimensions differ.
    fn merge_from_vector(&mut self, v: &VectorTime) -> Result<(), CoreError> {
        let other = Self::from_vector(v)?;
        self.try_merge_max(&other)
    }

    /// Full vector-order comparison (Equation 2).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (comparisons across dimensions are a
    /// caller bug, exactly as for [`VectorTime::compare`]).
    fn compare(&self, other: &Self) -> VectorOrder;

    /// The dense interchange form. Stamps leave every backend as
    /// [`VectorTime`]s, which is what keeps cross-backend outputs directly
    /// comparable (and [`crate::MessageTimestamps`] backend-agnostic).
    fn to_vector(&self) -> VectorTime;

    /// Builds a clock from its dense interchange form.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionUnsupported`] when the backend cannot
    /// represent `v.dim()` components.
    fn from_vector(v: &VectorTime) -> Result<Self, CoreError>;

    /// Serializes the clock in the crate's wire format
    /// ([`crate::wire::encode_full`] of the interchange vector), so every
    /// backend is bit-compatible on the wire.
    fn encode_wire(&self) -> Vec<u8> {
        crate::wire::encode_full(&self.to_vector())
    }
}

/// The paper's plain dense vector — [`VectorTime`] itself, byte-identical
/// to the pre-trait behavior.
pub type DenseVec = VectorTime;

impl Clock for VectorTime {
    const NAME: &'static str = "dense";

    fn try_zero(dim: usize) -> Result<Self, CoreError> {
        Ok(VectorTime::zero(dim))
    }

    fn dim(&self) -> usize {
        VectorTime::dim(self)
    }

    fn component(&self, idx: usize) -> u64 {
        VectorTime::component(self, idx)
    }

    fn increment(&mut self, idx: usize) {
        VectorTime::increment(self, idx);
    }

    fn try_merge_max(&mut self, other: &Self) -> Result<(), CoreError> {
        VectorTime::merge_max(self, other)
    }

    fn merge_delta(&mut self, changes: &[(usize, u64)]) -> Result<(), CoreError> {
        let dim = VectorTime::dim(self);
        let slice = self.as_mut_slice();
        for &(idx, value) in changes {
            match slice.get_mut(idx) {
                Some(c) => *c = (*c).max(value),
                None => {
                    return Err(CoreError::DimensionMismatch {
                        expected: dim,
                        got: idx + 1,
                    })
                }
            }
        }
        Ok(())
    }

    fn merge_from_vector(&mut self, v: &VectorTime) -> Result<(), CoreError> {
        VectorTime::merge_max(self, v)
    }

    fn compare(&self, other: &Self) -> VectorOrder {
        VectorTime::compare(self, other)
    }

    fn to_vector(&self) -> VectorTime {
        self.clone()
    }

    fn from_vector(v: &VectorTime) -> Result<Self, CoreError> {
        Ok(v.clone())
    }
}

/// A clock stored as a segment tree over its components, with `(min, max)`
/// summaries per node.
///
/// The summaries buy two things:
///
/// * **Delta merges are `O(k log N)`** — [`Clock::merge_delta`] touches
///   only the root-to-leaf paths of the `k` changed components, never the
///   other `N − k`. SK delta streams hand the runtime exactly that
///   change-set, so the rendezvous hot path becomes sublinear in `N`.
/// * **Full merges skip dominated subtrees** — a subtree where the
///   incoming clock's `max` is at most this clock's `min` cannot change
///   anything and is pruned in one comparison; comparisons prune the same
///   way and exit as soon as both order flags are set.
///
/// Layout: a 1-indexed implicit binary tree with `base =
/// dim.next_power_of_two()` leaves. Padding leaves hold the inverted pair
/// `(min, max) = (u64::MAX, 0)`, which is neutral under summary combine
/// and lets fully-padded subtrees be recognised (`min > max`) without
/// span bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeClock {
    dim: usize,
    /// First leaf index; nodes `base..base + dim` are the components.
    base: usize,
    mins: Vec<u64>,
    maxs: Vec<u64>,
}

impl TreeClock {
    fn empty(dim: usize) -> Self {
        let base = dim.next_power_of_two().max(1);
        let mut clock = TreeClock {
            dim,
            base,
            mins: vec![u64::MAX; 2 * base],
            maxs: vec![0; 2 * base],
        };
        for leaf in 0..dim {
            clock.mins[clock.base + leaf] = 0;
        }
        clock.rebuild();
        clock
    }

    /// Recomputes every internal summary from the leaves.
    fn rebuild(&mut self) {
        for n in (1..self.base).rev() {
            self.mins[n] = self.mins[2 * n].min(self.mins[2 * n + 1]);
            self.maxs[n] = self.maxs[2 * n].max(self.maxs[2 * n + 1]);
        }
    }

    /// Refreshes the summaries on the path from leaf `n` to the root.
    fn update_path(&mut self, mut n: usize) {
        n /= 2;
        while n >= 1 {
            self.mins[n] = self.mins[2 * n].min(self.mins[2 * n + 1]);
            self.maxs[n] = self.maxs[2 * n].max(self.maxs[2 * n + 1]);
            n /= 2;
        }
    }

    /// `self[idx] := max(self[idx], value)`, updating summaries only when
    /// the leaf actually moved.
    ///
    /// The ancestor walk exploits that only this one leaf changed: the new
    /// parent `max` is `max(old, value)` directly (one compare, no child
    /// loads), only `min` needs the sibling, and the walk stops at the
    /// first ancestor whose summary is unchanged — every ancestor above it
    /// is unchanged too. This is the hot path of `merge_delta`, the
    /// sublinear merge the runtime feeds with SK change-sets.
    fn raise(&mut self, idx: usize, value: u64) {
        let mut n = self.base + idx;
        if value <= self.maxs[n] {
            return;
        }
        self.maxs[n] = value;
        self.mins[n] = value;
        // Walk up carrying this child's (already final) min, so each level
        // loads only the sibling's — the raised leaf is the sole change
        // below, which also makes `max(old, value)` the exact new summary.
        let mut child_min = value;
        while n > 1 {
            let sibling_min = self.mins[n ^ 1];
            n /= 2;
            let min = child_min.min(sibling_min);
            let max_moved = value > self.maxs[n];
            if max_moved {
                self.maxs[n] = value;
            }
            let min_moved = min != self.mins[n];
            if min_moved {
                self.mins[n] = min;
            }
            if !max_moved && !min_moved {
                // An unchanged summary here means every ancestor's is
                // unchanged too.
                break;
            }
            child_min = min;
        }
    }

    /// Merges `other`'s subtree rooted at `n` into this clock's, pruning
    /// dominated and padded subtrees. Returns whether anything changed, so
    /// parents only recompute summaries on a mutated path.
    fn merge_node(&mut self, other: &TreeClock, n: usize) -> bool {
        // A fully-padded subtree (inverted summary) has no real leaves.
        if other.mins[n] > other.maxs[n] {
            return false;
        }
        // Nothing in `other`'s span exceeds anything in ours: a no-op.
        if other.maxs[n] <= self.mins[n] {
            return false;
        }
        if n >= self.base {
            let v = other.maxs[n];
            if v > self.maxs[n] {
                self.maxs[n] = v;
                self.mins[n] = v;
                return true;
            }
            return false;
        }
        let left = self.merge_node(other, 2 * n);
        let right = self.merge_node(other, 2 * n + 1);
        if left || right {
            self.mins[n] = self.mins[2 * n].min(self.mins[2 * n + 1]);
            self.maxs[n] = self.maxs[2 * n].max(self.maxs[2 * n + 1]);
        }
        left || right
    }

    /// Accumulates the vector-order flags over the subtree at `n`,
    /// short-circuiting once both are set (the pair is concurrent).
    fn compare_node(&self, other: &TreeClock, n: usize, less: &mut bool, greater: &mut bool) {
        if (*less && *greater) || self.mins[n] > self.maxs[n] {
            return;
        }
        if self.maxs[n] < other.mins[n] {
            // Every component here is strictly below its counterpart.
            *less = true;
            return;
        }
        if self.mins[n] > other.maxs[n] {
            *greater = true;
            return;
        }
        if self.mins[n] == self.maxs[n] && other.mins[n] == other.maxs[n] {
            // Both subtrees are uniform: one scalar comparison settles
            // every leaf below (equal values settle to "no flag").
            match self.mins[n].cmp(&other.mins[n]) {
                Ordering::Less => *less = true,
                Ordering::Greater => *greater = true,
                Ordering::Equal => {}
            }
            return;
        }
        if n >= self.base {
            match self.maxs[n].cmp(&other.maxs[n]) {
                Ordering::Less => *less = true,
                Ordering::Greater => *greater = true,
                Ordering::Equal => {}
            }
            return;
        }
        self.compare_node(other, 2 * n, less, greater);
        self.compare_node(other, 2 * n + 1, less, greater);
    }
}

impl Clock for TreeClock {
    const NAME: &'static str = "tree";

    fn try_zero(dim: usize) -> Result<Self, CoreError> {
        Ok(TreeClock::empty(dim))
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn component(&self, idx: usize) -> u64 {
        assert!(
            idx < self.dim,
            "component {idx} out of range ({})",
            self.dim
        );
        self.maxs[self.base + idx]
    }

    fn increment(&mut self, idx: usize) {
        assert!(
            idx < self.dim,
            "component {idx} out of range ({})",
            self.dim
        );
        let leaf = self.base + idx;
        self.maxs[leaf] += 1;
        self.mins[leaf] = self.maxs[leaf];
        self.update_path(leaf);
    }

    fn try_merge_max(&mut self, other: &Self) -> Result<(), CoreError> {
        if self.dim != other.dim {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: other.dim,
            });
        }
        self.merge_node(other, 1);
        Ok(())
    }

    fn merge_delta(&mut self, changes: &[(usize, u64)]) -> Result<(), CoreError> {
        for &(idx, value) in changes {
            if idx >= self.dim {
                return Err(CoreError::DimensionMismatch {
                    expected: self.dim,
                    got: idx + 1,
                });
            }
            self.raise(idx, value);
        }
        Ok(())
    }

    fn merge_from_vector(&mut self, v: &VectorTime) -> Result<(), CoreError> {
        if self.dim != v.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim,
                got: v.dim(),
            });
        }
        for (idx, &value) in v.as_slice().iter().enumerate() {
            self.raise(idx, value);
        }
        Ok(())
    }

    fn compare(&self, other: &Self) -> VectorOrder {
        assert_eq!(
            self.dim, other.dim,
            "cannot compare clocks of dimensions {} and {}",
            self.dim, other.dim
        );
        let (mut less, mut greater) = (false, false);
        self.compare_node(other, 1, &mut less, &mut greater);
        match (less, greater) {
            (false, false) => VectorOrder::Equal,
            (true, false) => VectorOrder::Less,
            (false, true) => VectorOrder::Greater,
            (true, true) => VectorOrder::Concurrent,
        }
    }

    fn to_vector(&self) -> VectorTime {
        VectorTime::from(self.maxs[self.base..self.base + self.dim].to_vec())
    }

    fn from_vector(v: &VectorTime) -> Result<Self, CoreError> {
        let mut clock = TreeClock::empty(v.dim());
        for (idx, &value) in v.as_slice().iter().enumerate() {
            let leaf = clock.base + idx;
            clock.maxs[leaf] = value;
            clock.mins[leaf] = value;
        }
        clock.rebuild();
        Ok(clock)
    }
}

/// A clock inlined into a `[u64; K]`: the small-dimension fast path.
///
/// All merge/compare loops run over the full `K` lanes with no
/// data-dependent trip count, which the compiler turns into straight-line
/// SIMD; the unused lanes stay zero, so they are no-ops under max-merge
/// and invisible to comparisons. Construction fails with a typed
/// [`CoreError::DimensionUnsupported`] when `dim > K` — there is no
/// truncating fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedArray<const K: usize> {
    len: usize,
    lanes: [u64; K],
}

/// The standard small-dimension backend: 16 lanes covers every topology
/// with `d ≤ 16` (recall `d ≤ min(β(G), N − 2)` — most deployments).
pub type FixedArray16 = FixedArray<16>;

impl<const K: usize> Clock for FixedArray<K> {
    const NAME: &'static str = "fixed";

    fn try_zero(dim: usize) -> Result<Self, CoreError> {
        if dim > K {
            return Err(CoreError::DimensionUnsupported { dim, capacity: K });
        }
        Ok(FixedArray {
            len: dim,
            lanes: [0; K],
        })
    }

    fn dim(&self) -> usize {
        self.len
    }

    fn component(&self, idx: usize) -> u64 {
        assert!(
            idx < self.len,
            "component {idx} out of range ({})",
            self.len
        );
        self.lanes[idx]
    }

    fn increment(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "component {idx} out of range ({})",
            self.len
        );
        self.lanes[idx] += 1;
    }

    fn try_merge_max(&mut self, other: &Self) -> Result<(), CoreError> {
        if self.len != other.len {
            return Err(CoreError::DimensionMismatch {
                expected: self.len,
                got: other.len,
            });
        }
        // Chunked 8-lane kernel over every lane: the zero padding is inert
        // under max, so merging all K lanes keeps the trip count fixed.
        kernel::merge_max_lanes(&mut self.lanes, &other.lanes);
        Ok(())
    }

    fn merge_delta(&mut self, changes: &[(usize, u64)]) -> Result<(), CoreError> {
        for &(idx, value) in changes {
            if idx >= self.len {
                return Err(CoreError::DimensionMismatch {
                    expected: self.len,
                    got: idx + 1,
                });
            }
            self.lanes[idx] = self.lanes[idx].max(value);
        }
        Ok(())
    }

    fn merge_from_vector(&mut self, v: &VectorTime) -> Result<(), CoreError> {
        if self.len != v.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.len,
                got: v.dim(),
            });
        }
        for (lane, &value) in self.lanes.iter_mut().zip(v.as_slice()) {
            *lane = (*lane).max(value);
        }
        Ok(())
    }

    fn compare(&self, other: &Self) -> VectorOrder {
        assert_eq!(
            self.len, other.len,
            "cannot compare clocks of dimensions {} and {}",
            self.len, other.len
        );
        // Branchless chunked kernel over all K lanes (padding lanes are
        // equal and contribute nothing).
        let (less, greater) = kernel::compare_lanes(&self.lanes, &other.lanes);
        match (less, greater) {
            (false, false) => VectorOrder::Equal,
            (true, false) => VectorOrder::Less,
            (false, true) => VectorOrder::Greater,
            (true, true) => VectorOrder::Concurrent,
        }
    }

    fn to_vector(&self) -> VectorTime {
        VectorTime::from(self.lanes[..self.len].to_vec())
    }

    fn from_vector(v: &VectorTime) -> Result<Self, CoreError> {
        let mut clock = Self::try_zero(v.dim())?;
        clock.lanes[..v.dim()].copy_from_slice(v.as_slice());
        Ok(clock)
    }
}

/// A runtime-selectable clock backend, as named on the command line
/// (`--clock dense|tree|fixed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockBackend {
    /// Pick automatically: [`FixedArray16`] when the dimension fits its
    /// lanes, [`DenseVec`] otherwise. The default.
    #[default]
    Auto,
    /// [`DenseVec`] — the plain vector.
    Dense,
    /// [`TreeClock`] — sublinear delta merges.
    Tree,
    /// [`FixedArray16`] — the small-dimension SIMD-friendly path.
    Fixed,
}

impl ClockBackend {
    /// Lane count of the [`ClockBackend::Fixed`] backend.
    pub const FIXED_CAPACITY: usize = 16;

    /// Resolves the selection against a concrete dimension: `Auto` picks
    /// the fixed-array path exactly when the dimension fits. Never
    /// returns `Auto`.
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionUnsupported`] when `Fixed` was explicitly
    /// requested for a dimension beyond [`ClockBackend::FIXED_CAPACITY`].
    pub fn resolve(self, dim: usize) -> Result<ClockBackend, CoreError> {
        match self {
            ClockBackend::Auto => Ok(if dim <= Self::FIXED_CAPACITY {
                ClockBackend::Fixed
            } else {
                ClockBackend::Dense
            }),
            ClockBackend::Fixed if dim > Self::FIXED_CAPACITY => {
                Err(CoreError::DimensionUnsupported {
                    dim,
                    capacity: Self::FIXED_CAPACITY,
                })
            }
            other => Ok(other),
        }
    }
}

impl FromStr for ClockBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ClockBackend::Auto),
            "dense" => Ok(ClockBackend::Dense),
            "tree" => Ok(ClockBackend::Tree),
            "fixed" => Ok(ClockBackend::Fixed),
            other => Err(format!(
                "unknown clock backend `{other}` (auto|dense|tree|fixed)"
            )),
        }
    }
}

impl fmt::Display for ClockBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClockBackend::Auto => "auto",
            ClockBackend::Dense => DenseVec::NAME,
            ClockBackend::Tree => TreeClock::NAME,
            ClockBackend::Fixed => FixedArray16::NAME,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one backend through a deterministic op mix and checks it
    /// against the dense reference after every operation.
    fn differential_ops<C: Clock>(dim: usize) {
        let mut reference = VectorTime::zero(dim);
        let mut clock = C::try_zero(dim).unwrap();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..400 {
            match rng() % 4 {
                0 => {
                    let idx = (rng() % dim as u64) as usize;
                    reference.increment(idx);
                    clock.increment(idx);
                }
                1 => {
                    // Full merge with a random same-dimension vector.
                    let other: Vec<u64> = (0..dim).map(|_| rng() % 50).collect();
                    let other = VectorTime::from(other);
                    reference.merge_max(&other).unwrap();
                    clock.merge_from_vector(&other).unwrap();
                }
                2 => {
                    // Sparse delta change-set.
                    let k = (rng() % 4) as usize;
                    let changes: Vec<(usize, u64)> = (0..k)
                        .map(|_| ((rng() % dim as u64) as usize, rng() % 60))
                        .collect();
                    <VectorTime as Clock>::merge_delta(&mut reference, &changes).unwrap();
                    clock.merge_delta(&changes).unwrap();
                }
                _ => {
                    // Backend-native merge of a random clock.
                    let other: Vec<u64> = (0..dim).map(|_| rng() % 50).collect();
                    let other = VectorTime::from(other);
                    let backend_other = C::from_vector(&other).unwrap();
                    let expected = {
                        let mut r = reference.clone();
                        r.merge_max(&other).unwrap();
                        r
                    };
                    reference = expected;
                    clock.try_merge_max(&backend_other).unwrap();
                }
            }
            assert_eq!(clock.to_vector(), reference, "step {step} diverged");
            assert_eq!(clock.dim(), dim);
            // Compare against a perturbed copy in both directions.
            let perturbed = {
                let mut p = reference.clone();
                if dim > 0 {
                    p.increment((rng() % dim as u64) as usize);
                }
                p
            };
            let backend_perturbed = C::from_vector(&perturbed).unwrap();
            assert_eq!(
                clock.compare(&backend_perturbed),
                reference.compare(&perturbed)
            );
            assert_eq!(
                backend_perturbed.compare(&clock),
                perturbed.compare(&reference)
            );
        }
    }

    #[test]
    fn tree_matches_dense_reference() {
        for dim in [1, 2, 3, 7, 16, 33] {
            differential_ops::<TreeClock>(dim);
        }
    }

    #[test]
    fn fixed_matches_dense_reference() {
        for dim in [1, 2, 3, 7, 16] {
            differential_ops::<FixedArray16>(dim);
        }
    }

    #[test]
    fn dense_trait_impl_matches_inherent() {
        differential_ops::<DenseVec>(5);
    }

    #[test]
    fn zero_dimension_clocks_work() {
        let mut t = TreeClock::try_zero(0).unwrap();
        let f = FixedArray16::try_zero(0).unwrap();
        assert_eq!(t.to_vector(), VectorTime::zero(0));
        assert_eq!(f.to_vector(), VectorTime::zero(0));
        assert_eq!(t.compare(&t.clone()), VectorOrder::Equal);
        t.merge_delta(&[]).unwrap();
    }

    #[test]
    fn fixed_rejects_oversized_dimension() {
        assert_eq!(
            FixedArray16::try_zero(17),
            Err(CoreError::DimensionUnsupported {
                dim: 17,
                capacity: 16
            })
        );
        assert!(FixedArray16::from_vector(&VectorTime::zero(20)).is_err());
    }

    #[test]
    fn merges_reject_dimension_mismatch_typed() {
        let mut t = TreeClock::try_zero(3).unwrap();
        let other = TreeClock::try_zero(4).unwrap();
        assert_eq!(
            t.try_merge_max(&other),
            Err(CoreError::DimensionMismatch {
                expected: 3,
                got: 4
            })
        );
        assert!(t.merge_from_vector(&VectorTime::zero(4)).is_err());
        assert!(t.merge_delta(&[(3, 1)]).is_err());
        let mut f = FixedArray16::try_zero(2).unwrap();
        assert!(f
            .try_merge_max(&FixedArray16::try_zero(3).unwrap())
            .is_err());
        assert!(f.merge_delta(&[(2, 1)]).is_err());
        assert!(f.merge_from_vector(&VectorTime::zero(5)).is_err());
    }

    #[test]
    fn tree_prunes_but_stays_exact_on_adversarial_shapes() {
        // A spiky vector (one huge component) against a flat one exercises
        // the dominated-subtree prune in both directions.
        let mut spiky = vec![0u64; 33];
        spiky[17] = 1_000;
        let flat = vec![3u64; 33];
        let mut a = TreeClock::from_vector(&VectorTime::from(spiky.clone())).unwrap();
        let b = TreeClock::from_vector(&VectorTime::from(flat.clone())).unwrap();
        assert_eq!(a.compare(&b), VectorOrder::Concurrent);
        a.try_merge_max(&b).unwrap();
        let mut expected = VectorTime::from(spiky);
        expected.merge_max(&VectorTime::from(flat)).unwrap();
        assert_eq!(a.to_vector(), expected);
    }

    #[test]
    fn wire_encoding_is_backend_invariant() {
        let v = VectorTime::from(vec![4, 0, 700, 2]);
        let dense_bytes = crate::wire::encode_full(&v);
        assert_eq!(
            TreeClock::from_vector(&v).unwrap().encode_wire(),
            dense_bytes
        );
        assert_eq!(
            FixedArray16::from_vector(&v).unwrap().encode_wire(),
            dense_bytes
        );
    }

    #[test]
    fn backend_selection_resolves() {
        assert_eq!(ClockBackend::Auto.resolve(8).unwrap(), ClockBackend::Fixed);
        assert_eq!(ClockBackend::Auto.resolve(17).unwrap(), ClockBackend::Dense);
        assert_eq!(
            ClockBackend::Tree.resolve(1_000).unwrap(),
            ClockBackend::Tree
        );
        assert!(ClockBackend::Fixed.resolve(17).is_err());
        assert_eq!("tree".parse::<ClockBackend>().unwrap(), ClockBackend::Tree);
        assert!("vector".parse::<ClockBackend>().is_err());
        assert_eq!(ClockBackend::Fixed.to_string(), "fixed");
    }
}
