//! The paper's offline timestamping algorithm (Section 4, Figure 9).
//!
//! Given a *completed* computation, build the message poset `(M, ↦)`,
//! compute a minimum chain cover (whose size — the width — is at most
//! `⌊N/2⌋` by Theorem 8, since each message occupies two of the `N`
//! processes), derive a chain realizer `L_1..L_w` with
//! `∩ L_i = (M, ↦)`, and stamp each message `m` with
//! `V_m[i] = |{x : x <_{L_i} m}|`, i.e. `m`'s position in `L_i`.
//!
//! Because each `L_i` is a total order, `V(m1) < V(m2)` in vector order iff
//! `m1` precedes `m2` in *every* extension, which by the realizer property
//! is exactly `m1 ↦ m2`.

use synctime_poset::{realizer, Poset};
use synctime_trace::{Oracle, SyncComputation};

use crate::{MessageTimestamps, VectorTime};

/// Offline-stamps all messages of a completed computation.
///
/// The resulting dimension equals the width of the message poset
/// (≤ `⌊N/2⌋` by Theorem 8); for totally ordered message sets (e.g. any
/// computation on a star or triangle topology, Lemma 1) it is 1.
///
/// ```
/// use synctime_core::offline;
/// use synctime_trace::Builder;
///
/// let mut b = Builder::new(4);
/// let a = b.message(0, 1)?;
/// let c = b.message(2, 3)?; // concurrent with a
/// let comp = b.build();
/// let stamps = offline::stamp_computation(&comp);
/// assert_eq!(stamps.dim(), 2); // the poset's width
/// assert!(stamps.concurrent(a, c));
/// # Ok::<(), synctime_trace::TraceError>(())
/// ```
pub fn stamp_computation(computation: &SyncComputation) -> MessageTimestamps {
    stamp_poset(Oracle::new(computation).message_poset())
}

/// Offline-stamps the elements of an arbitrary message poset (step (2) and
/// (3) of Figure 9). Exposed separately so callers who already built the
/// poset — or who study posets directly — can reuse it.
pub fn stamp_poset(poset: &Poset) -> MessageTimestamps {
    let extensions = realizer::chain_realizer(poset);
    debug_assert!(realizer::verify(poset, &extensions));
    let table = realizer::position_table(poset, &extensions);
    let vectors: Vec<VectorTime> = (0..poset.len())
        .map(|m| {
            VectorTime::from(
                table
                    .iter()
                    .map(|positions| positions[m] as u64)
                    .collect::<Vec<u64>>(),
            )
        })
        .collect();
    MessageTimestamps::new(vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_graph::topology;
    use synctime_poset::chains;
    use synctime_trace::examples::figure6;
    use synctime_trace::{Builder, MessageId};

    #[test]
    fn fig9_offline_2d() {
        // Section 4: applying the offline algorithm to the Figure 6
        // computation needs only 2-dimensional vectors.
        let comp = figure6();
        let oracle = Oracle::new(&comp);
        assert_eq!(chains::width(oracle.message_poset()), 2);
        let stamps = stamp_computation(&comp);
        assert_eq!(stamps.dim(), 2);
        assert!(stamps.encodes(&oracle));
    }

    #[test]
    fn width_bounded_by_half_n() {
        // Theorem 8 on a dense computation over K6.
        let topo = topology::complete(6);
        let mut b = Builder::with_topology(&topo);
        for (s, r) in [
            (0, 1),
            (2, 3),
            (4, 5),
            (1, 2),
            (3, 4),
            (5, 0),
            (0, 2),
            (1, 4),
        ] {
            b.message(s, r).unwrap();
        }
        let comp = b.build();
        let stamps = stamp_computation(&comp);
        assert!(stamps.dim() <= 3, "width {} > N/2", stamps.dim());
        assert!(stamps.encodes(&Oracle::new(&comp)));
    }

    #[test]
    fn chain_computation_dimension_one() {
        // All messages share process 0: totally ordered, width 1.
        let mut b = Builder::new(4);
        for r in [1, 2, 3, 1, 2] {
            b.message(0, r).unwrap();
        }
        let comp = b.build();
        let stamps = stamp_computation(&comp);
        assert_eq!(stamps.dim(), 1);
        // Positions are 0..m in rendezvous order.
        for i in 0..comp.message_count() {
            assert_eq!(stamps.vector(MessageId(i)).component(0), i as u64);
        }
    }

    #[test]
    fn empty_computation() {
        let comp = Builder::new(3).build();
        let stamps = stamp_computation(&comp);
        assert!(stamps.is_empty());
        assert_eq!(stamps.dim(), 0);
    }

    #[test]
    fn stamp_poset_directly() {
        use synctime_poset::Poset;
        let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
        let stamps = stamp_poset(&p);
        assert_eq!(stamps.dim(), chains::width(&p));
        // Encodes the poset: check every pair by hand.
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(
                        stamps.precedes(MessageId(a), MessageId(b)),
                        p.lt(a, b),
                        "pair ({a}, {b})"
                    );
                }
            }
        }
    }
}
