//! The paper's offline timestamping algorithm (Section 4, Figure 9).
//!
//! Given a *completed* computation, build the message poset `(M, ↦)`,
//! compute a minimum chain cover (whose size — the width — is at most
//! `⌊N/2⌋` by Theorem 8, since each message occupies two of the `N`
//! processes), derive a chain realizer `L_1..L_w` with
//! `∩ L_i = (M, ↦)`, and stamp each message `m` with
//! `V_m[i] = |{x : x <_{L_i} m}|`, i.e. `m`'s position in `L_i`.
//!
//! Because each `L_i` is a total order, `V(m1) < V(m2)` in vector order iff
//! `m1` precedes `m2` in *every* extension, which by the realizer property
//! is exactly `m1 ↦ m2`.

use synctime_par::ThreadPool;
use synctime_poset::{realizer, Poset, SparsePoset};
use synctime_trace::{stream, Oracle, SyncComputation};

use crate::clock::Clock;
use crate::{CoreError, MessageTimestamps, VectorTime};

/// Offline-stamps all messages of a completed computation.
///
/// The resulting dimension equals the width of the message poset
/// (≤ `⌊N/2⌋` by Theorem 8); for totally ordered message sets (e.g. any
/// computation on a star or triangle topology, Lemma 1) it is 1.
///
/// ```
/// use synctime_core::offline;
/// use synctime_trace::Builder;
///
/// let mut b = Builder::new(4);
/// let a = b.message(0, 1)?;
/// let c = b.message(2, 3)?; // concurrent with a
/// let comp = b.build();
/// let stamps = offline::stamp_computation(&comp);
/// assert_eq!(stamps.dim(), 2); // the poset's width
/// assert!(stamps.concurrent(a, c));
/// # Ok::<(), synctime_trace::TraceError>(())
/// ```
pub fn stamp_computation(computation: &SyncComputation) -> MessageTimestamps {
    stamp_poset(Oracle::new(computation).message_poset())
}

/// Offline-stamps the elements of an arbitrary message poset (step (2) and
/// (3) of Figure 9). Exposed separately so callers who already built the
/// poset — or who study posets directly — can reuse it.
pub fn stamp_poset(poset: &Poset) -> MessageTimestamps {
    let extensions = realizer::chain_realizer(poset);
    debug_assert!(realizer::verify(poset, &extensions));
    let table = realizer::position_table(poset, &extensions);
    let vectors: Vec<VectorTime> = (0..poset.len())
        .map(|m| {
            VectorTime::from(
                table
                    .iter()
                    .map(|positions| positions[m] as u64)
                    .collect::<Vec<u64>>(),
            )
        })
        .collect();
    MessageTimestamps::new(vectors)
}

/// Sparse-engine offline stamping: per-sender chain partition, chain-merge
/// reachability, and a heap-based deferring realizer — `O(M·k)` memory and
/// `O(k·(M + E) log M)` time for `k` non-empty sender chains, against the
/// dense engine's `O(M²)` closure.
///
/// The tradeoff is dimension: the sparse vectors have one component per
/// *sending process* (≤ `N`), while the dense engine pays the `O(M²)`
/// minimum-chain-cover matching to reach `width(P) ≤ ⌊N/2⌋` components.
/// Both encode exactly the same order (they are order-isomorphic and both
/// encode `↦`), so pick by scale: `dense` for the tightest vectors on
/// small traces, `sparse` past tens of thousands of messages.
///
/// ```
/// use synctime_core::offline;
/// use synctime_trace::Builder;
///
/// let mut b = Builder::new(4);
/// let a = b.message(0, 1)?;
/// let c = b.message(2, 3)?; // concurrent with a
/// let comp = b.build();
/// let stamps = offline::stamp_computation_sparse(&comp);
/// assert!(stamps.concurrent(a, c));
/// # Ok::<(), synctime_trace::TraceError>(())
/// ```
pub fn stamp_computation_sparse(computation: &SyncComputation) -> MessageTimestamps {
    stamp_sparse_poset(&stream::sparse_message_poset(computation))
}

/// [`stamp_computation`] with the vectors carried by clock backend `C`.
///
/// The dense engine computes each stamp as before; every vector is then
/// pushed through `C`'s delta-merge path and read back, so the backend's
/// arithmetic — not just [`VectorTime`]'s — is exercised end to end. The
/// output is bit-identical to [`stamp_computation`] for every backend.
///
/// # Errors
///
/// [`CoreError::DimensionUnsupported`] when the backend cannot hold the
/// poset's width (e.g. a fixed-lane backend on a wide poset).
pub fn stamp_computation_as<C: Clock>(
    computation: &SyncComputation,
) -> Result<MessageTimestamps, CoreError> {
    reemit_through_backend::<C>(stamp_computation(computation))
}

/// [`stamp_computation_sparse`] with the vectors carried by clock backend
/// `C`; see [`stamp_computation_as`].
///
/// # Errors
///
/// [`CoreError::DimensionUnsupported`] when the backend cannot hold one
/// component per sending process.
pub fn stamp_computation_sparse_as<C: Clock>(
    computation: &SyncComputation,
) -> Result<MessageTimestamps, CoreError> {
    reemit_through_backend::<C>(stamp_computation_sparse(computation))
}

/// Re-emits every stamp through backend `C`: zero clock, delta-merge of the
/// nonzero components, read back as a dense vector.
fn reemit_through_backend<C: Clock>(
    stamps: MessageTimestamps,
) -> Result<MessageTimestamps, CoreError> {
    let mut vectors = Vec::with_capacity(stamps.len());
    for v in stamps.vectors() {
        let mut clock = C::try_zero(v.dim())?;
        let changes: Vec<(usize, u64)> = v
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0)
            .map(|(i, &x)| (i, x))
            .collect();
        clock.merge_delta(&changes)?;
        vectors.push(clock.to_vector());
    }
    Ok(MessageTimestamps::new(vectors))
}

/// Parallel [`stamp_computation_sparse`]: realizer extensions and
/// per-message vectors fan out over `pool`, merged deterministically so
/// the output is **bit-identical** to the sequential engine.
pub fn stamp_computation_sparse_parallel(
    computation: &SyncComputation,
    pool: &ThreadPool,
) -> MessageTimestamps {
    stamp_sparse_poset_with(&stream::sparse_message_poset(computation), Some(pool))
}

/// Stamps an arbitrary [`SparsePoset`] sequentially (steps (2) and (3) of
/// Figure 9 over the sparse representation).
pub fn stamp_sparse_poset(poset: &SparsePoset) -> MessageTimestamps {
    stamp_sparse_poset_with(poset, None)
}

/// Stamps an arbitrary [`SparsePoset`], fanning out across `pool` when one
/// is supplied. Results are merged by chain / message index, never by
/// completion order, so every pool size yields the same bytes.
pub fn stamp_sparse_poset_with(
    poset: &SparsePoset,
    pool: Option<&ThreadPool>,
) -> MessageTimestamps {
    let (_, extensions) = match pool {
        Some(pool) => realizer::sparse_chain_realizer_parallel(poset, pool),
        None => realizer::sparse_chain_realizer(poset),
    };
    // Full pairwise verification is quadratic; keep the debug assertion to
    // sizes where it is instant (every unit/property test qualifies).
    debug_assert!(poset.len() > 2048 || realizer::sparse_verify(poset, &extensions));
    let invert = |ext: &Vec<usize>| -> Vec<u32> {
        let mut pos = vec![0u32; poset.len()];
        for (i, &v) in ext.iter().enumerate() {
            pos[v] = i as u32;
        }
        pos
    };
    let positions: Vec<Vec<u32>> = match pool {
        Some(pool) => pool.map_indexed(extensions.len(), |i| invert(&extensions[i])),
        None => extensions.iter().map(invert).collect(),
    };
    let vector_of = |m: usize| -> VectorTime {
        VectorTime::from(
            positions
                .iter()
                .map(|pos| pos[m] as u64)
                .collect::<Vec<u64>>(),
        )
    };
    let vectors: Vec<VectorTime> = match pool {
        Some(pool) => pool.map_indexed(poset.len(), vector_of),
        None => (0..poset.len()).map(vector_of).collect(),
    };
    MessageTimestamps::new(vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_graph::topology;
    use synctime_poset::chains;
    use synctime_trace::examples::figure6;
    use synctime_trace::{Builder, MessageId};

    #[test]
    fn fig9_offline_2d() {
        // Section 4: applying the offline algorithm to the Figure 6
        // computation needs only 2-dimensional vectors.
        let comp = figure6();
        let oracle = Oracle::new(&comp);
        assert_eq!(chains::width(oracle.message_poset()), 2);
        let stamps = stamp_computation(&comp);
        assert_eq!(stamps.dim(), 2);
        assert!(stamps.encodes(&oracle));
    }

    #[test]
    fn width_bounded_by_half_n() {
        // Theorem 8 on a dense computation over K6.
        let topo = topology::complete(6);
        let mut b = Builder::with_topology(&topo);
        for (s, r) in [
            (0, 1),
            (2, 3),
            (4, 5),
            (1, 2),
            (3, 4),
            (5, 0),
            (0, 2),
            (1, 4),
        ] {
            b.message(s, r).unwrap();
        }
        let comp = b.build();
        let stamps = stamp_computation(&comp);
        assert!(stamps.dim() <= 3, "width {} > N/2", stamps.dim());
        assert!(stamps.encodes(&Oracle::new(&comp)));
    }

    #[test]
    fn chain_computation_dimension_one() {
        // All messages share process 0: totally ordered, width 1.
        let mut b = Builder::new(4);
        for r in [1, 2, 3, 1, 2] {
            b.message(0, r).unwrap();
        }
        let comp = b.build();
        let stamps = stamp_computation(&comp);
        assert_eq!(stamps.dim(), 1);
        // Positions are 0..m in rendezvous order.
        for i in 0..comp.message_count() {
            assert_eq!(stamps.vector(MessageId(i)).component(0), i as u64);
        }
    }

    #[test]
    fn empty_computation() {
        let comp = Builder::new(3).build();
        let stamps = stamp_computation(&comp);
        assert!(stamps.is_empty());
        assert_eq!(stamps.dim(), 0);
        let sparse = stamp_computation_sparse(&comp);
        assert!(sparse.is_empty());
        assert_eq!(sparse.dim(), 0);
    }

    #[test]
    fn sparse_engine_encodes_figure6() {
        let comp = figure6();
        let oracle = Oracle::new(&comp);
        let stamps = stamp_computation_sparse(&comp);
        assert!(stamps.encodes(&oracle));
        // Dimension: one component per sending process, not per chain of a
        // minimum cover.
        let senders: std::collections::BTreeSet<usize> =
            comp.messages().iter().map(|m| m.sender).collect();
        assert_eq!(stamps.dim(), senders.len());
    }

    #[test]
    fn sparse_parallel_is_bit_identical_to_sequential() {
        let comp = figure6();
        let seq = stamp_computation_sparse(&comp);
        for workers in [1, 2, 8] {
            let pool = ThreadPool::new(workers);
            let par = stamp_computation_sparse_parallel(&comp, &pool);
            assert_eq!(seq.len(), par.len());
            for m in 0..seq.len() {
                assert_eq!(
                    seq.vector(MessageId(m)),
                    par.vector(MessageId(m)),
                    "workers = {workers}, message {m}"
                );
            }
        }
    }

    #[test]
    fn sparse_and_dense_engines_are_order_isomorphic() {
        let comp = figure6();
        let dense = stamp_computation(&comp);
        let sparse = stamp_computation_sparse(&comp);
        for a in 0..comp.message_count() {
            for b in 0..comp.message_count() {
                if a != b {
                    assert_eq!(
                        dense.precedes(MessageId(a), MessageId(b)),
                        sparse.precedes(MessageId(a), MessageId(b)),
                        "pair ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn backend_reemission_is_bit_identical() {
        use crate::clock::{FixedArray16, TreeClock};
        let comp = figure6();
        let dense = stamp_computation(&comp);
        assert_eq!(stamp_computation_as::<TreeClock>(&comp).unwrap(), dense);
        assert_eq!(stamp_computation_as::<FixedArray16>(&comp).unwrap(), dense);
        let sparse = stamp_computation_sparse(&comp);
        assert_eq!(
            stamp_computation_sparse_as::<TreeClock>(&comp).unwrap(),
            sparse
        );
        assert_eq!(
            stamp_computation_sparse_as::<FixedArray16>(&comp).unwrap(),
            sparse
        );
    }

    #[test]
    fn backend_reemission_reports_unsupported_width() {
        use crate::clock::FixedArray;
        let comp = figure6(); // width 2 > 1 lane
        assert!(matches!(
            stamp_computation_as::<FixedArray<1>>(&comp),
            Err(CoreError::DimensionUnsupported { .. })
        ));
    }

    #[test]
    fn stamp_poset_directly() {
        use synctime_poset::Poset;
        let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
        let stamps = stamp_poset(&p);
        assert_eq!(stamps.dim(), chains::width(&p));
        // Encodes the poset: check every pair by hand.
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(
                        stamps.precedes(MessageId(a), MessageId(b)),
                        p.lt(a, b),
                        "pair ({a}, {b})"
                    );
                }
            }
        }
    }
}
