use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};
use synctime_trace::MessageId;

use crate::kernel;
use crate::CoreError;

/// The outcome of comparing two vector timestamps under *vector order*
/// (Equation 2 of the paper): `u < v` iff `u[k] ≤ v[k]` for all `k` and
/// `u[j] < v[j]` for some `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorOrder {
    /// All components equal.
    Equal,
    /// Strictly less in vector order.
    Less,
    /// Strictly greater in vector order.
    Greater,
    /// Incomparable: some component smaller, some larger.
    Concurrent,
}

/// A vector timestamp of fixed dimension.
///
/// For message timestamps produced by this crate, the dimension is the
/// edge-decomposition size (online), the poset width (offline), or the
/// process count (Fidge–Mattern) — never one-per-process unless you asked
/// for the baseline.
///
/// `PartialOrd` implements vector order:
///
/// ```
/// use synctime_core::VectorTime;
///
/// let a = VectorTime::from(vec![1, 0, 2]);
/// let b = VectorTime::from(vec![1, 1, 2]);
/// let c = VectorTime::from(vec![0, 3, 0]);
/// assert!(a < b);
/// assert!(!(a < c) && !(c < a)); // concurrent
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorTime {
    components: Vec<u64>,
}

impl VectorTime {
    /// The zero vector of the given dimension.
    pub fn zero(dim: usize) -> Self {
        VectorTime {
            components: vec![0; dim],
        }
    }

    /// The number of components.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.components
    }

    /// The components as a mutable slice — for the in-crate [`Clock`]
    /// backend implementation only.
    ///
    /// [`Clock`]: crate::clock::Clock
    pub(crate) fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.components
    }

    /// One component.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    pub fn component(&self, idx: usize) -> u64 {
        self.components[idx]
    }

    /// Component-wise maximum with `other` (lines 5 and 9 of Figure 5).
    ///
    /// # Errors
    ///
    /// [`CoreError::DimensionMismatch`] on a dimension mismatch, with the
    /// vector left unchanged — merging differently-sized vectors would
    /// silently truncate causal history, so every call site must handle
    /// (or consciously rule out) the mismatch.
    pub fn merge_max(&mut self, other: &VectorTime) -> Result<(), CoreError> {
        if self.dim() != other.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                got: other.dim(),
            });
        }
        kernel::merge_max_lanes(&mut self.components, &other.components);
        Ok(())
    }

    /// Increments component `idx` (lines 6 and 10 of Figure 5).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= dim()`.
    pub fn increment(&mut self, idx: usize) {
        self.components[idx] += 1;
    }

    /// Full vector-order comparison.
    pub fn compare(&self, other: &VectorTime) -> VectorOrder {
        assert_eq!(
            self.dim(),
            other.dim(),
            "cannot compare vectors of dimensions {} and {}",
            self.dim(),
            other.dim()
        );
        let (some_less, some_greater) = kernel::compare_lanes(&self.components, &other.components);
        match (some_less, some_greater) {
            (false, false) => VectorOrder::Equal,
            (true, false) => VectorOrder::Less,
            (false, true) => VectorOrder::Greater,
            (true, true) => VectorOrder::Concurrent,
        }
    }

    /// Component-wise `≤` (used by the Theorem 9 event test, where equality
    /// is allowed).
    pub fn le(&self, other: &VectorTime) -> bool {
        matches!(self.compare(other), VectorOrder::Less | VectorOrder::Equal)
    }
}

impl From<Vec<u64>> for VectorTime {
    fn from(components: Vec<u64>) -> Self {
        VectorTime { components }
    }
}

impl PartialOrd for VectorTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.compare(other) {
            VectorOrder::Equal => Some(Ordering::Equal),
            VectorOrder::Less => Some(Ordering::Less),
            VectorOrder::Greater => Some(Ordering::Greater),
            VectorOrder::Concurrent => None,
        }
    }
}

impl fmt::Display for VectorTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// The per-message timestamps produced by one run of a timestamping
/// algorithm, with the paper's precedence test as methods.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageTimestamps {
    vectors: Vec<VectorTime>,
    dim: usize,
}

impl MessageTimestamps {
    /// Wraps a per-message vector table (indexed by message id).
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not all share one dimension.
    pub fn new(vectors: Vec<VectorTime>) -> Self {
        let dim = vectors.first().map_or(0, VectorTime::dim);
        assert!(
            vectors.iter().all(|v| v.dim() == dim),
            "all timestamps must share one dimension"
        );
        MessageTimestamps { vectors, dim }
    }

    /// The timestamp dimension (number of vector components).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stamped messages.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether no messages were stamped.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The timestamp of a message.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn vector(&self, m: MessageId) -> &VectorTime {
        &self.vectors[m.0]
    }

    /// All timestamps, indexed by message id.
    pub fn vectors(&self) -> &[VectorTime] {
        &self.vectors
    }

    /// The precedence test: `m1 ↦ m2` iff `v(m1) < v(m2)`.
    pub fn precedes(&self, m1: MessageId, m2: MessageId) -> bool {
        self.vectors[m1.0].compare(&self.vectors[m2.0]) == VectorOrder::Less
    }

    /// The concurrency test: neither vector is below the other and the
    /// messages are distinct.
    pub fn concurrent(&self, m1: MessageId, m2: MessageId) -> bool {
        m1 != m2
            && matches!(
                self.vectors[m1.0].compare(&self.vectors[m2.0]),
                VectorOrder::Concurrent | VectorOrder::Equal
            )
    }

    /// Whether these timestamps encode the poset exactly: for every ordered
    /// pair, `precedes(m1, m2) ⟺ m1 ↦ m2` per the ground-truth `oracle`
    /// (the central property, Theorem 4 / Figure 9). `O(|M|²)`.
    pub fn encodes(&self, oracle: &synctime_trace::Oracle) -> bool {
        let n = self.vectors.len();
        if oracle.message_poset().len() != n {
            return false;
        }
        (0..n).all(|i| {
            (0..n).all(|j| {
                i == j
                    || self.precedes(MessageId(i), MessageId(j))
                        == oracle.synchronously_precedes(MessageId(i), MessageId(j))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_accessors() {
        let v = VectorTime::zero(3);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.as_slice(), &[0, 0, 0]);
        assert_eq!(v.component(1), 0);
    }

    #[test]
    fn merge_and_increment() {
        let mut a = VectorTime::from(vec![3, 0, 5]);
        a.merge_max(&VectorTime::from(vec![1, 4, 5])).unwrap();
        assert_eq!(a.as_slice(), &[3, 4, 5]);
        a.increment(1);
        assert_eq!(a.as_slice(), &[3, 5, 5]);
    }

    #[test]
    fn merge_rejects_dimension_mismatch() {
        let mut a = VectorTime::from(vec![7, 7]);
        assert_eq!(
            a.merge_max(&VectorTime::zero(3)),
            Err(CoreError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        );
        // The failed merge left the vector untouched.
        assert_eq!(a.as_slice(), &[7, 7]);
    }

    #[test]
    fn vector_order_cases() {
        let a = VectorTime::from(vec![1, 2]);
        let b = VectorTime::from(vec![1, 3]);
        let c = VectorTime::from(vec![2, 1]);
        assert_eq!(a.compare(&b), VectorOrder::Less);
        assert_eq!(b.compare(&a), VectorOrder::Greater);
        assert_eq!(a.compare(&a.clone()), VectorOrder::Equal);
        assert_eq!(a.compare(&c), VectorOrder::Concurrent);
        assert!(a < b);
        assert!(a.le(&a.clone()));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert_eq!(a.partial_cmp(&c), None);
    }

    #[test]
    fn display_form() {
        assert_eq!(VectorTime::from(vec![1, 1, 1]).to_string(), "(1,1,1)");
        assert_eq!(VectorTime::zero(0).to_string(), "()");
    }

    #[test]
    fn message_timestamps_tests() {
        let ts = MessageTimestamps::new(vec![
            VectorTime::from(vec![1, 0]),
            VectorTime::from(vec![1, 1]),
            VectorTime::from(vec![0, 1]),
        ]);
        assert_eq!(ts.dim(), 2);
        assert_eq!(ts.len(), 3);
        assert!(ts.precedes(MessageId(0), MessageId(1)));
        assert!(!ts.precedes(MessageId(1), MessageId(0)));
        assert!(ts.concurrent(MessageId(0), MessageId(2)));
        assert!(!ts.concurrent(MessageId(0), MessageId(0)));
    }

    #[test]
    #[should_panic(expected = "one dimension")]
    fn message_timestamps_reject_mixed_dims() {
        MessageTimestamps::new(vec![VectorTime::zero(1), VectorTime::zero(2)]);
    }
}
