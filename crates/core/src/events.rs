//! Timestamping internal events (Section 5 of the paper).
//!
//! Message timestamps order the *external* events for free (an external
//! event is an endpoint of its message). For internal events the paper
//! assigns the triple `(prev(e), succ(e), c(e))`:
//!
//! * `prev(e)` — the timestamp of the last message at-or-before `e` on its
//!   process, or ⊥ if none ([`PrevTime::Bottom`]; the paper writes the zero
//!   vector, see the note on [`PrevTime`]);
//! * `succ(e)` — the timestamp of the first message at-or-after `e`, or an
//!   all-∞ vector if none ([`SuccTime::Infinity`]);
//! * `c(e)` — a per-process counter reset at every external event and
//!   incremented at every internal event, disambiguating events that sit in
//!   the same inter-message segment.
//!
//! Theorem 9: for events on different processes,
//! `e → f ⟺ succ(e) ≤ prev(f)` (component-wise, equality allowed).
//!
//! **Deviation from the paper (documented in DESIGN.md):** the paper
//! suggests `c(e) < c(f)` resolves pairs with equal `(prev, succ)`, but two
//! events on *different* processes can share both bounding messages (their
//! processes exchanged two consecutive messages with each other) while
//! being truly concurrent. We therefore apply the counter rule only to
//! same-process pairs, which is exactly what makes the test match Lamport's
//! happened-before.

use std::fmt;

use serde::{Deserialize, Serialize};
use synctime_trace::{EventId, Oracle, ProcessId, SyncComputation};

use crate::{MessageTimestamps, VectorTime};

/// The `succ(e)` bound: the next message's timestamp, or ∞ in every
/// component when no message follows `e` on its process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuccTime {
    /// The timestamp of the first message at-or-after the event.
    At(VectorTime),
    /// No message follows; the paper writes this as the all-∞ vector.
    Infinity,
}

impl fmt::Display for SuccTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuccTime::At(v) => write!(f, "{v}"),
            SuccTime::Infinity => write!(f, "(∞)"),
        }
    }
}

/// The `prev(e)` bound: the last message's timestamp, or ⊥ when no message
/// precedes the event on its process.
///
/// The paper writes ⊥ as the all-zero vector, which is sound for the
/// *online* algorithm (every message timestamp has a positive component)
/// but not in general: the offline realizer stamps a globally minimal
/// message with the all-zero vector (position 0 in every extension), which
/// would collide with the sentinel. An explicit ⊥ keeps the construction
/// correct for every encoding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrevTime {
    /// The timestamp of the last message at-or-before the event.
    At(VectorTime),
    /// No message precedes the event on its process.
    Bottom,
}

impl fmt::Display for PrevTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrevTime::At(v) => write!(f, "{v}"),
            PrevTime::Bottom => write!(f, "(⊥)"),
        }
    }
}

/// The Theorem 9 comparison `succ(e) ≤ prev(f)`: both bounds must be
/// concrete message timestamps (an event with no following message can
/// reach nothing through a message; an event with no preceding message can
/// be reached by nothing).
fn succ_le_prev(succ: &SuccTime, prev: &PrevTime) -> bool {
    match (succ, prev) {
        (SuccTime::At(s), PrevTime::At(p)) => s.le(p),
        _ => false,
    }
}

/// The Section 5 timestamp of one event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventStamp {
    /// The process the event occurred on (needed only for the counter
    /// tie-break; see the module docs).
    pub process: ProcessId,
    /// `prev(e)`: last message timestamp at-or-before, or ⊥.
    pub prev: PrevTime,
    /// `succ(e)`: first message timestamp at-or-after, or ∞.
    pub succ: SuccTime,
    /// `c(e)`: position within the event's inter-message segment
    /// (0 for external events).
    pub counter: u64,
}

impl EventStamp {
    /// The Theorem 9 precedence test.
    pub fn precedes(&self, other: &EventStamp) -> bool {
        if succ_le_prev(&self.succ, &other.prev) {
            return true;
        }
        self.process == other.process
            && self.prev == other.prev
            && self.succ == other.succ
            && self.counter < other.counter
    }

    /// Whether two stamps are concurrent (neither precedes the other and
    /// they differ).
    pub fn concurrent(&self, other: &EventStamp) -> bool {
        self != other && !self.precedes(other) && !other.precedes(self)
    }
}

impl fmt::Display for EventStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, c={})", self.prev, self.succ, self.counter)
    }
}

/// The event stamps of a whole computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTimestamps {
    stamps: Vec<Vec<EventStamp>>,
}

impl EventTimestamps {
    /// The stamp of one event.
    ///
    /// # Panics
    ///
    /// Panics if the event id is out of range.
    pub fn stamp(&self, e: EventId) -> &EventStamp {
        &self.stamps[e.process][e.index]
    }

    /// The happened-before test over event ids.
    pub fn happened_before(&self, e: EventId, f: EventId) -> bool {
        if e.process == f.process {
            // Within a process the local order is definitive (and the
            // stamps agree with it; this avoids comparing an event with
            // itself).
            return e.index < f.index;
        }
        self.stamp(e).precedes(self.stamp(f))
    }

    /// Whether the stamps agree with the ground-truth `oracle` on every
    /// ordered pair of events. `O(E²)`.
    pub fn encodes(&self, computation: &SyncComputation, oracle: &Oracle) -> bool {
        let events: Vec<EventId> = computation.events().collect();
        events.iter().all(|&e| {
            events.iter().all(|&f| {
                e == f || self.happened_before(e, f) == oracle.happened_before(computation, e, f)
            })
        })
    }
}

/// Assigns every event of `computation` its Section 5 triple, given the
/// message timestamps produced by any encoding algorithm (online, offline,
/// or Fidge–Mattern — the construction only needs the property of
/// Theorem 4).
///
/// Note that, as the paper observes, an internal event's stamp is only
/// known once the *next* message of its process has been stamped — this is
/// inherently a post-processing step.
pub fn stamp_events(
    computation: &SyncComputation,
    messages: &MessageTimestamps,
) -> EventTimestamps {
    let mut stamps = Vec::with_capacity(computation.process_count());
    for p in 0..computation.process_count() {
        let history = computation.history(p);
        let mut per_process = Vec::with_capacity(history.len());
        let mut counter = 0u64;
        for (i, ev) in history.iter().enumerate() {
            let counter_value = if ev.is_internal() {
                counter += 1;
                counter
            } else {
                counter = 0;
                0
            };
            let e = EventId::new(p, i);
            let prev = computation
                .message_at_or_before(e)
                .map(|m| PrevTime::At(messages.vector(m).clone()))
                .unwrap_or(PrevTime::Bottom);
            let succ = computation
                .message_at_or_after(e)
                .map(|m| SuccTime::At(messages.vector(m).clone()))
                .unwrap_or(SuccTime::Infinity);
            per_process.push(EventStamp {
                process: p,
                prev,
                succ,
                counter: counter_value,
            });
        }
        stamps.push(per_process);
    }
    EventTimestamps { stamps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineStamper;
    use synctime_graph::{decompose, topology};
    use synctime_trace::Builder;

    fn stamp_all(comp: &SyncComputation, topo: &synctime_graph::Graph) -> EventTimestamps {
        let dec = decompose::best_known(topo);
        let msgs = OnlineStamper::new(&dec).stamp_computation(comp).unwrap();
        stamp_events(comp, &msgs)
    }

    #[test]
    fn thm9_on_a_small_computation() {
        let topo = topology::complete(3);
        let mut b = Builder::with_topology(&topo);
        b.internal(0).unwrap();
        b.message(0, 1).unwrap();
        b.internal(1).unwrap();
        b.message(1, 2).unwrap();
        b.internal(2).unwrap();
        b.internal(0).unwrap();
        b.message(2, 0).unwrap();
        let comp = b.build();
        let ev = stamp_all(&comp, &topo);
        assert!(ev.encodes(&comp, &Oracle::new(&comp)));
    }

    #[test]
    fn counter_orders_same_segment_internals() {
        let topo = topology::path(2);
        let mut b = Builder::with_topology(&topo);
        b.message(0, 1).unwrap();
        let e1 = b.internal(0).unwrap();
        let e2 = b.internal(0).unwrap();
        let comp = b.build();
        let ev = stamp_all(&comp, &topo);
        let (s1, s2) = (ev.stamp(e1), ev.stamp(e2));
        assert_eq!(s1.prev, s2.prev);
        assert_eq!(s1.succ, s2.succ);
        assert_eq!((s1.counter, s2.counter), (1, 2));
        assert!(s1.precedes(s2));
        assert!(!s2.precedes(s1));
        assert!(ev.happened_before(e1, e2));
    }

    #[test]
    fn cross_process_equal_bounds_stay_concurrent() {
        // P0 and P1 exchange two consecutive messages with an internal
        // event in between on each side: those internals share (prev, succ)
        // but are concurrent. The paper's bare counter rule would order
        // them; our same-process restriction keeps them concurrent.
        let topo = topology::path(2);
        let mut b = Builder::with_topology(&topo);
        b.message(0, 1).unwrap();
        let e0 = b.internal(0).unwrap();
        let e1 = b.internal(1).unwrap();
        b.message(1, 0).unwrap();
        let comp = b.build();
        let ev = stamp_all(&comp, &topo);
        let oracle = Oracle::new(&comp);
        assert!(oracle.events_concurrent(&comp, e0, e1));
        assert_eq!(ev.stamp(e0).prev, ev.stamp(e1).prev);
        assert_eq!(ev.stamp(e0).succ, ev.stamp(e1).succ);
        assert!(ev.stamp(e0).concurrent(ev.stamp(e1)));
        assert!(ev.encodes(&comp, &oracle));
    }

    #[test]
    fn boundary_vectors() {
        let topo = topology::path(2);
        let mut b = Builder::with_topology(&topo);
        let early = b.internal(0).unwrap();
        b.message(0, 1).unwrap();
        let late = b.internal(1).unwrap();
        let comp = b.build();
        let ev = stamp_all(&comp, &topo);
        // Before any message: prev is bottom.
        assert_eq!(ev.stamp(early).prev, PrevTime::Bottom);
        // After the last message: succ is infinity.
        assert_eq!(ev.stamp(late).succ, SuccTime::Infinity);
        // And the early event still precedes the late one across processes.
        assert!(ev.happened_before(early, late));
        assert!(!ev.happened_before(late, early));
    }

    #[test]
    fn isolated_processes_concurrent() {
        let topo = topology::path(3);
        let mut b = Builder::with_topology(&topo);
        let a = b.internal(0).unwrap();
        let c = b.internal(2).unwrap();
        let comp = b.build();
        let ev = stamp_all(&comp, &topo);
        assert!(!ev.happened_before(a, c));
        assert!(!ev.happened_before(c, a));
        // Both have zero prev and infinite succ but different processes.
        assert!(ev.stamp(a).concurrent(ev.stamp(c)));
    }

    #[test]
    fn works_with_offline_and_fm_stamps_too() {
        let mut b = Builder::new(4);
        b.internal(0).unwrap();
        b.message(0, 1).unwrap();
        b.message(2, 3).unwrap();
        b.internal(2).unwrap();
        b.message(1, 2).unwrap();
        b.internal(3).unwrap();
        let comp = b.build();
        let oracle = Oracle::new(&comp);
        let offline = crate::offline::stamp_computation(&comp);
        assert!(stamp_events(&comp, &offline).encodes(&comp, &oracle));
        let fm = crate::fm::stamp_messages(&comp);
        assert!(stamp_events(&comp, &fm).encodes(&comp, &oracle));
    }

    #[test]
    fn display_forms() {
        let s = EventStamp {
            process: 0,
            prev: PrevTime::Bottom,
            succ: SuccTime::Infinity,
            counter: 3,
        };
        assert_eq!(s.to_string(), "((⊥), (∞), c=3)");
        let t = EventStamp {
            process: 0,
            prev: PrevTime::At(VectorTime::from(vec![1])),
            succ: SuccTime::At(VectorTime::from(vec![2])),
            counter: 0,
        };
        assert_eq!(t.to_string(), "((1), (2), c=0)");
    }
}
