//! Crate-level property tests: algebraic laws of vector timestamps, the
//! protocol pieces, and the wire encodings.

use proptest::prelude::*;
use synctime_core::online::ProcessClock;
use synctime_core::wire;
use synctime_core::{VectorOrder, VectorTime};

prop_compose! {
    fn arb_vec(dim: usize)(components in proptest::collection::vec(0u64..1000, dim)) -> VectorTime {
        VectorTime::from(components)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vector_order_is_a_strict_partial_order(
        a in arb_vec(5), b in arb_vec(5), c in arb_vec(5)
    ) {
        // Irreflexive / antisymmetric.
        prop_assert_eq!(a.compare(&a), VectorOrder::Equal);
        if a.compare(&b) == VectorOrder::Less {
            prop_assert_eq!(b.compare(&a), VectorOrder::Greater);
        }
        // Transitive.
        if a.compare(&b) == VectorOrder::Less && b.compare(&c) == VectorOrder::Less {
            prop_assert_eq!(a.compare(&c), VectorOrder::Less);
        }
        // compare agrees with PartialOrd.
        prop_assert_eq!(a < b, a.compare(&b) == VectorOrder::Less);
        prop_assert_eq!(a.le(&b), matches!(a.compare(&b), VectorOrder::Less | VectorOrder::Equal));
    }

    #[test]
    fn merge_max_is_least_upper_bound(a in arb_vec(6), b in arb_vec(6)) {
        let mut m = a.clone();
        m.merge_max(&b).unwrap();
        // Upper bound.
        prop_assert!(a.le(&m) && b.le(&m));
        // Least: componentwise it equals one of the inputs.
        for i in 0..6 {
            prop_assert_eq!(m.component(i), a.component(i).max(b.component(i)));
        }
        // Commutative and idempotent.
        let mut m2 = b.clone();
        m2.merge_max(&a).unwrap();
        prop_assert_eq!(&m, &m2);
        let mut m3 = m.clone();
        m3.merge_max(&m2).unwrap();
        prop_assert_eq!(m3, m);
    }

    #[test]
    fn protocol_sides_always_agree(
        sender in arb_vec(4),
        receiver in arb_vec(4),
        group in 0usize..4,
    ) {
        // Whatever the pre-states, one Figure 5 exchange leaves both sides
        // with the identical timestamp, strictly above both pre-states.
        let mut s = ProcessClock::new(4);
        let mut r = ProcessClock::new(4);
        // Drive the clocks to the arbitrary pre-states via merges.
        s.on_acknowledgement(&sender, group).unwrap();
        r.on_acknowledgement(&receiver, group).unwrap();
        let pre_s = s.current().clone();
        let pre_r = r.current().clone();
        let payload = s.send_payload();
        let (ack, t_r) = r.on_receive(&payload, group).unwrap();
        let t_s = s.on_acknowledgement(&ack, group).unwrap();
        prop_assert_eq!(&t_s, &t_r);
        prop_assert!(pre_s < t_s);
        prop_assert!(pre_r < t_s.clone());
    }

    #[test]
    fn wire_full_roundtrip(v in arb_vec(8)) {
        let bytes = wire::encode_full(&v);
        prop_assert_eq!(wire::decode_full(&bytes), Some(v));
    }

    #[test]
    fn wire_delta_roundtrip(a in arb_vec(8), b in arb_vec(8)) {
        let delta = wire::encode_delta(&a, &b);
        prop_assert_eq!(wire::apply_delta(&a, &delta), Some(b));
    }

    #[test]
    fn wire_stream_roundtrip(vs in proptest::collection::vec(arb_vec(5), 1..20)) {
        let mut enc = wire::DeltaEncoder::new();
        let mut dec = wire::DeltaDecoder::new();
        for v in &vs {
            let bytes = enc.encode(3, v);
            let decoded = dec.decode(3, &bytes);
            prop_assert_eq!(decoded.as_ref(), Some(v));
        }
    }

    #[test]
    fn truncated_wire_data_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
        // Fuzz the decoders: garbage must return None, never panic.
        let _ = wire::decode_full(&bytes);
        let _ = wire::apply_delta(&VectorTime::zero(4), &bytes);
        let mut d = wire::DeltaDecoder::new();
        let _ = d.decode(0, &bytes);
    }
}
