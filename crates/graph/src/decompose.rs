//! Star/triangle edge decompositions (Definition 2 of the paper).
//!
//! An *edge decomposition* of a topology `G = (V, E)` is a partition
//! `{E_1, ..., E_d}` of `E` in which every part induces a star or a
//! triangle. The paper's online timestamping algorithm uses one vector-clock
//! component per part, so the whole game is making `d` small:
//!
//! * [`greedy`] — the paper's Figure 7 approximation algorithm
//!   (ratio 2 by Theorem 6; optimal on forests by Theorem 7),
//! * [`from_vertex_cover`] — stars rooted at a vertex cover (Theorem 5),
//! * [`trivial`] — the `N − 3` stars + 1 triangle fallback (≤ `N − 2`
//!   groups for any graph),
//! * [`optimal`] — exact minimum by branch-and-bound over edge subsets, for
//!   the small graphs used in ratio experiments,
//! * [`best_known`] — the smallest decomposition among the fast methods.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Edge, Graph, GraphError, NodeId};

/// One part of an edge decomposition: a star or a triangle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeGroup {
    /// Edges all incident to `center`.
    Star {
        /// The node every edge of the group touches.
        center: NodeId,
        /// The edges of the group, sorted.
        edges: Vec<Edge>,
    },
    /// The three edges of a triangle on `nodes`.
    Triangle {
        /// The triangle's vertices, sorted ascending.
        nodes: [NodeId; 3],
    },
}

impl EdgeGroup {
    /// Creates a star group, sorting its edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or an edge is not incident to `center`.
    pub fn star(center: NodeId, mut edges: Vec<Edge>) -> Self {
        assert!(
            !edges.is_empty(),
            "a star group must have at least one edge"
        );
        for e in &edges {
            assert!(
                e.is_incident_to(center),
                "edge {e} not incident to star center {center}"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        EdgeGroup::Star { center, edges }
    }

    /// Creates a triangle group from its three vertices.
    ///
    /// # Panics
    ///
    /// Panics if the vertices are not distinct.
    pub fn triangle(x: NodeId, y: NodeId, z: NodeId) -> Self {
        let mut nodes = [x, y, z];
        nodes.sort_unstable();
        assert!(
            nodes[0] != nodes[1] && nodes[1] != nodes[2],
            "triangle vertices must be distinct"
        );
        EdgeGroup::Triangle { nodes }
    }

    /// The edges of the group, in sorted order.
    pub fn edges(&self) -> Vec<Edge> {
        match self {
            EdgeGroup::Star { edges, .. } => edges.clone(),
            EdgeGroup::Triangle { nodes: [x, y, z] } => {
                vec![Edge::new(*x, *y), Edge::new(*x, *z), Edge::new(*y, *z)]
            }
        }
    }

    /// Number of edges in the group.
    pub fn len(&self) -> usize {
        match self {
            EdgeGroup::Star { edges, .. } => edges.len(),
            EdgeGroup::Triangle { .. } => 3,
        }
    }

    /// Whether the group has no edges (never true for valid groups).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this group is a star.
    pub fn is_star(&self) -> bool {
        matches!(self, EdgeGroup::Star { .. })
    }
}

impl fmt::Display for EdgeGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeGroup::Star { center, edges } => {
                write!(f, "star@{center}{{")?;
                for (i, e) in edges.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            EdgeGroup::Triangle { nodes: [x, y, z] } => write!(f, "triangle({x}, {y}, {z})"),
        }
    }
}

/// A validated star/triangle partition of a topology's edge set.
///
/// Component `g` of the online vector clock corresponds to `groups()[g]`;
/// [`EdgeDecomposition::group_of`] maps a channel's edge to its component.
///
/// ```
/// use synctime_graph::{decompose, topology, Edge};
///
/// let k5 = topology::complete(5);
/// let dec = decompose::best_known(&k5);
/// assert_eq!(dec.len(), 3); // N - 2, the complete-graph optimum
/// let g = dec.group_of(Edge::new(1, 3)).expect("every channel is grouped");
/// assert!(dec.groups()[g].edges().contains(&Edge::new(1, 3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeDecomposition {
    groups: Vec<EdgeGroup>,
    edge_to_group: BTreeMap<Edge, usize>,
}

impl EdgeDecomposition {
    /// Builds a decomposition from groups, checking they are disjoint.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OverlappingGroups`] if two groups share an edge
    /// or [`GraphError::EmptyGroup`] if a group has no edges. Coverage of a
    /// particular graph is checked separately by [`validate`].
    ///
    /// [`validate`]: EdgeDecomposition::validate
    pub fn new(groups: Vec<EdgeGroup>) -> Result<Self, GraphError> {
        let mut edge_to_group = BTreeMap::new();
        for (idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(GraphError::EmptyGroup { group: idx });
            }
            for e in group.edges() {
                if let Some(prev) = edge_to_group.insert(e, idx) {
                    return Err(GraphError::OverlappingGroups {
                        edge: e,
                        first: prev,
                        second: idx,
                    });
                }
            }
        }
        Ok(EdgeDecomposition {
            groups,
            edge_to_group,
        })
    }

    /// Number of groups `d` — the vector-clock dimension of the online
    /// algorithm.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups (only for edgeless topologies).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The groups, in component order.
    pub fn groups(&self) -> &[EdgeGroup] {
        &self.groups
    }

    /// The vector component assigned to a channel, i.e. the index `g` with
    /// `edge ∈ E_g`. Returns `None` for edges outside the decomposition.
    pub fn group_of(&self, edge: Edge) -> Option<usize> {
        self.edge_to_group.get(&edge).copied()
    }

    /// Checks this decomposition against a topology per Definition 2: the
    /// groups must exactly partition `g`'s edge set and each group must be a
    /// star or a triangle.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`GraphError`].
    pub fn validate(&self, g: &Graph) -> Result<(), GraphError> {
        for (idx, group) in self.groups.iter().enumerate() {
            match group {
                EdgeGroup::Star { center, edges } => {
                    if edges.is_empty() {
                        return Err(GraphError::EmptyGroup { group: idx });
                    }
                    if !edges.iter().all(|e| e.is_incident_to(*center)) {
                        return Err(GraphError::NotAStar { group: idx });
                    }
                }
                EdgeGroup::Triangle { nodes: [x, y, z] } => {
                    let distinct = x != y && y != z && x != z;
                    if !distinct {
                        return Err(GraphError::NotATriangle { group: idx });
                    }
                }
            }
            for e in group.edges() {
                if !g.contains(e) {
                    return Err(GraphError::UnknownEdge(e));
                }
            }
        }
        for e in g.edges() {
            if !self.edge_to_group.contains_key(&e) {
                return Err(GraphError::UncoveredEdge(e));
            }
        }
        // Disjointness was enforced at construction; the partition property
        // follows from coverage + disjointness + membership.
        Ok(())
    }

    /// Extends star group `group` with a new channel — the dynamic-topology
    /// case the paper's client–server discussion implies: a client joining
    /// a server's star adds an edge without adding a vector component, so
    /// running clocks keep their dimension and all previously issued
    /// timestamps stay valid.
    ///
    /// # Errors
    ///
    /// [`GraphError::NotAStar`] if `group` is not a star or the edge is not
    /// incident to its center; [`GraphError::OverlappingGroups`] if the
    /// edge is already in some group.
    pub fn extend_star(&mut self, group: usize, edge: Edge) -> Result<(), GraphError> {
        if let Some(prev) = self.edge_to_group.get(&edge) {
            return Err(GraphError::OverlappingGroups {
                edge,
                first: *prev,
                second: group,
            });
        }
        match self.groups.get_mut(group) {
            Some(EdgeGroup::Star { center, edges }) if edge.is_incident_to(*center) => {
                edges.push(edge);
                edges.sort_unstable();
                self.edge_to_group.insert(edge, group);
                Ok(())
            }
            _ => Err(GraphError::NotAStar { group }),
        }
    }

    /// Appends a new singleton star group for `edge`, rooted at `center`,
    /// and returns its index. This *grows the dimension by one*; clocks
    /// created before the growth cannot be mixed with clocks created after
    /// (their vectors have different lengths), so use this only between
    /// stamping sessions.
    ///
    /// # Errors
    ///
    /// [`GraphError::NotAStar`] if `center` is not an endpoint of `edge`;
    /// [`GraphError::OverlappingGroups`] if the edge is already grouped.
    pub fn push_star(&mut self, center: NodeId, edge: Edge) -> Result<usize, GraphError> {
        if !edge.is_incident_to(center) {
            return Err(GraphError::NotAStar {
                group: self.groups.len(),
            });
        }
        if let Some(prev) = self.edge_to_group.get(&edge) {
            return Err(GraphError::OverlappingGroups {
                edge,
                first: *prev,
                second: self.groups.len(),
            });
        }
        let idx = self.groups.len();
        self.groups.push(EdgeGroup::star(center, vec![edge]));
        self.edge_to_group.insert(edge, idx);
        Ok(idx)
    }

    /// Removes a channel from star group `group` — the inverse of
    /// [`extend_star`], for dynamic topologies shedding an edge. The group
    /// keeps its index (and so its vector component), so running clocks
    /// stay valid.
    ///
    /// # Errors
    ///
    /// [`GraphError::NotAStar`] if `group` is not a star;
    /// [`GraphError::UnknownEdge`] if the edge is not in that group;
    /// [`GraphError::EmptyGroup`] if removing the edge would leave the
    /// group empty (drop the whole group instead).
    ///
    /// [`extend_star`]: EdgeDecomposition::extend_star
    pub fn retract_star_edge(&mut self, group: usize, edge: Edge) -> Result<(), GraphError> {
        if self.edge_to_group.get(&edge) != Some(&group) {
            return Err(GraphError::UnknownEdge(edge));
        }
        match self.groups.get_mut(group) {
            Some(EdgeGroup::Star { edges, .. }) => {
                if edges.len() == 1 {
                    return Err(GraphError::EmptyGroup { group });
                }
                edges.retain(|e| *e != edge);
                self.edge_to_group.remove(&edge);
                Ok(())
            }
            _ => Err(GraphError::NotAStar { group }),
        }
    }

    /// Replaces group `idx` wholesale, rewiring the edge index. Used by the
    /// incremental cache's triangle-break patch; the replacement's edges
    /// must be disjoint from every *other* group's.
    pub(crate) fn replace_group(&mut self, idx: usize, group: EdgeGroup) {
        for e in self.groups[idx].edges() {
            self.edge_to_group.remove(&e);
        }
        for e in group.edges() {
            let prev = self.edge_to_group.insert(e, idx);
            debug_assert!(prev.is_none(), "replacement group overlaps group {prev:?}");
        }
        self.groups[idx] = group;
    }

    /// Appends a pre-built group, returning its index. The group's edges
    /// must be disjoint from every existing group's.
    pub(crate) fn push_group(&mut self, group: EdgeGroup) -> usize {
        let idx = self.groups.len();
        for e in group.edges() {
            let prev = self.edge_to_group.insert(e, idx);
            debug_assert!(prev.is_none(), "pushed group overlaps group {prev:?}");
        }
        self.groups.push(group);
        idx
    }

    /// Removes the listed groups and compacts the survivors' indices,
    /// returning the old-index → new-index map (`None` for the removed).
    pub(crate) fn remove_groups(&mut self, doomed: &[usize]) -> Vec<Option<usize>> {
        let mut dead = vec![false; self.groups.len()];
        for &d in doomed {
            dead[d] = true;
        }
        let mut old_to_new = Vec::with_capacity(self.groups.len());
        let mut next = 0usize;
        for &d in &dead {
            old_to_new.push(if d {
                None
            } else {
                next += 1;
                Some(next - 1)
            });
        }
        let survivors: Vec<EdgeGroup> = std::mem::take(&mut self.groups)
            .into_iter()
            .enumerate()
            .filter_map(|(i, g)| (!dead[i]).then_some(g))
            .collect();
        self.groups = survivors;
        self.edge_to_group.clear();
        for (idx, g) in self.groups.iter().enumerate() {
            for e in g.edges() {
                self.edge_to_group.insert(e, idx);
            }
        }
        old_to_new
    }

    /// Number of star groups.
    pub fn star_count(&self) -> usize {
        self.groups.iter().filter(|g| g.is_star()).count()
    }

    /// Number of triangle groups.
    pub fn triangle_count(&self) -> usize {
        self.groups.len() - self.star_count()
    }
}

impl fmt::Display for EdgeDecomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EdgeDecomposition[")?;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "E{}={g}", i + 1)?;
        }
        write!(f, "]")
    }
}

/// One group-emitting action of the greedy algorithm, recorded so that runs
/// can be compared against the paper's Figure 8 narration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GreedyStep {
    /// Step 1: a degree-1 node `leaf` triggered a star rooted at `root`.
    Degree1Star {
        /// The degree-1 node.
        leaf: NodeId,
        /// The star's center (the leaf's unique neighbor).
        root: NodeId,
    },
    /// Step 2: a pendant triangle (two of its vertices had residual degree
    /// exactly 2) was emitted.
    PendantTriangle {
        /// The triangle's vertices, ascending.
        nodes: [NodeId; 3],
    },
    /// Step 3: the edge with the most adjacent edges triggered a star at
    /// each endpoint.
    DoubleStar {
        /// The chosen max-adjacency edge `(x, y)`.
        edge: Edge,
    },
}

/// The result of a [`greedy`] run: the decomposition plus the step trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyRun {
    /// The decomposition produced.
    pub decomposition: EdgeDecomposition,
    /// The actions taken, in order.
    pub steps: Vec<GreedyStep>,
}

/// How step 3 of the greedy algorithm picks its seed edge. The paper
/// observes (after Theorem 6) that correctness and the ratio bound are
/// independent of this choice; max-adjacency is expected to delete more
/// edges per step and hence produce smaller decompositions. The
/// `ablate_step3` bench quantifies that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Step3Rule {
    /// The edge with the largest number of adjacent edges (the paper's
    /// choice, line 12 of Figure 7).
    #[default]
    MaxAdjacency,
    /// The first remaining edge in sorted order.
    FirstEdge,
}

/// The paper's Figure 7 approximation algorithm (ratio bound 2, Theorem 6;
/// optimal on acyclic graphs, Theorem 7). Runs in `O(|V|·|E|)`.
///
/// Deterministic: node scans are in ascending id order and step-3 ties are
/// broken toward the smallest edge.
///
/// ```
/// use synctime_graph::{decompose, topology};
///
/// let run = decompose::greedy_with_trace(&topology::figure4_tree());
/// run.decomposition.validate(&topology::figure4_tree()).unwrap();
/// assert_eq!(run.decomposition.len(), 3); // Figure 4: three stars
/// ```
pub fn greedy(g: &Graph) -> EdgeDecomposition {
    greedy_with_trace(g).decomposition
}

/// [`greedy`] with a configurable step-3 rule (for the ablation study).
pub fn greedy_with_rule(g: &Graph, rule: Step3Rule) -> EdgeDecomposition {
    greedy_run(g, rule).decomposition
}

/// Like [`greedy`], but also returns the step-by-step trace (used to
/// reproduce Figure 8).
pub fn greedy_with_trace(g: &Graph) -> GreedyRun {
    greedy_run(g, Step3Rule::MaxAdjacency)
}

fn greedy_run(g: &Graph, rule: Step3Rule) -> GreedyRun {
    let mut f = g.clone(); // residual edge set F := E
    let mut groups = Vec::new();
    let mut steps = Vec::new();

    while !f.is_empty() {
        // First step: peel stars around neighbors of degree-1 nodes.
        loop {
            let Some(leaf) = f.nodes().find(|&x| f.degree(x) == 1) else {
                break;
            };
            let root = f
                .neighbors(leaf)
                .next()
                .expect("degree-1 node has a neighbor");
            let star_edges: Vec<Edge> = f.incident_edges(root).collect();
            for e in &star_edges {
                f.remove_edge(e.lo(), e.hi());
            }
            groups.push(EdgeGroup::star(root, star_edges));
            steps.push(GreedyStep::Degree1Star { leaf, root });
        }
        // Second step: pendant triangles — (x, y, z) whose x and y have no
        // edges outside the triangle.
        loop {
            let found = f.triangles().into_iter().find_map(|(x, y, z)| {
                // Two of the three vertices must have residual degree 2.
                let degs = [f.degree(x), f.degree(y), f.degree(z)];
                let deg2 = degs.iter().filter(|&&d| d == 2).count();
                (deg2 >= 2).then_some([x, y, z])
            });
            let Some(nodes) = found else {
                break;
            };
            let [x, y, z] = nodes;
            for (a, b) in [(x, y), (x, z), (y, z)] {
                f.remove_edge(a, b);
            }
            groups.push(EdgeGroup::triangle(x, y, z));
            steps.push(GreedyStep::PendantTriangle { nodes });
        }
        // Third step: the edge with the largest number of adjacent edges
        // seeds a star at each endpoint.
        if !f.is_empty() {
            let edge = match rule {
                Step3Rule::MaxAdjacency => f
                    .edges()
                    .max_by_key(|&e| (f.adjacent_edge_count(e), std::cmp::Reverse(e)))
                    .expect("residual graph is non-empty"),
                Step3Rule::FirstEdge => f.edges().next().expect("residual graph is non-empty"),
            };
            let (x, y) = edge.endpoints();
            let star_y: Vec<Edge> = f.incident_edges(y).collect();
            for e in &star_y {
                f.remove_edge(e.lo(), e.hi());
            }
            groups.push(EdgeGroup::star(y, star_y));
            let star_x: Vec<Edge> = f.incident_edges(x).collect();
            if !star_x.is_empty() {
                for e in &star_x {
                    f.remove_edge(e.lo(), e.hi());
                }
                groups.push(EdgeGroup::star(x, star_x));
            }
            steps.push(GreedyStep::DoubleStar { edge });
        }
    }

    let decomposition = EdgeDecomposition::new(groups)
        .expect("greedy removes emitted edges, so groups are disjoint");
    GreedyRun {
        decomposition,
        steps,
    }
}

/// Decomposition into stars rooted at a vertex cover (the construction in
/// Theorem 5's proof): every edge is assigned to one covered endpoint; an
/// edge with both endpoints covered goes to the smaller id. Cover vertices
/// with no assigned edges produce no group, so the size is at most
/// `cover.len()`.
///
/// # Panics
///
/// Panics if `cover` is not a vertex cover of `g`.
pub fn from_vertex_cover(g: &Graph, cover: &[NodeId]) -> EdgeDecomposition {
    assert!(
        crate::cover::is_vertex_cover(g, cover),
        "the provided vertex set is not a vertex cover"
    );
    let in_cover = {
        let mut v = vec![false; g.node_count()];
        for &c in cover {
            v[c] = true;
        }
        v
    };
    let mut star_edges: BTreeMap<NodeId, Vec<Edge>> = BTreeMap::new();
    for e in g.edges() {
        let (u, v) = e.endpoints();
        let root = if in_cover[u] { u } else { v };
        star_edges.entry(root).or_default().push(e);
    }
    let groups = star_edges
        .into_iter()
        .map(|(center, edges)| EdgeGroup::star(center, edges))
        .collect();
    EdgeDecomposition::new(groups).expect("per-root assignment is disjoint")
}

/// The trivial decomposition of size at most `N − 2` used in Theorem 5 when
/// the vertex cover is large: stars at nodes `0..N−3` (each taking its edges
/// toward higher-numbered nodes), with the leftover edges among the last
/// three nodes forming a final triangle or star. For the complete graph
/// `K_N` this is exactly Figure 3(a)'s `N − 3` stars plus one triangle.
pub fn trivial(g: &Graph) -> EdgeDecomposition {
    let n = g.node_count();
    let mut groups = Vec::new();
    let cutoff = n.saturating_sub(3);
    // Each edge goes to the star of its smaller endpoint, provided that
    // endpoint is below the cutoff; what remains lies entirely among the
    // last three nodes.
    for v in 0..cutoff {
        let edges: Vec<Edge> = g.incident_edges(v).filter(|e| e.lo() == v).collect();
        if !edges.is_empty() {
            groups.push(EdgeGroup::star(v, edges));
        }
    }
    // Leftover: edges entirely among the last three nodes — a subgraph of a
    // triangle, hence a triangle or a star.
    let last: Vec<Edge> = g.edges().filter(|e| e.lo() >= cutoff).collect();
    if !last.is_empty() {
        // At most three edges among three nodes: a triangle, or one/two
        // edges sharing a vertex (a star) — group_from_edges covers both.
        groups.push(group_from_edges(&last));
    }
    EdgeDecomposition::new(groups).expect("trivial construction assigns each edge once")
}

/// Maximum number of edges supported by [`optimal`]'s exact search.
pub const OPTIMAL_EDGE_LIMIT: usize = 26;

/// Exact minimum edge decomposition by memoized branch-and-bound over edge
/// subsets. Intended for the small graphs of ratio experiments.
///
/// The search branches, for the lowest-index uncovered edge `(u, v)`, over
/// the maximal residual star at `u`, the maximal residual star at `v`, and
/// every residual triangle through the edge. Taking maximal stars is safe:
/// removing an edge from any star or triangle leaves a valid (possibly
/// empty) group, so any optimum can be rewritten to use maximal stars.
///
/// # Panics
///
/// Panics if `g` has more than [`OPTIMAL_EDGE_LIMIT`] edges.
pub fn optimal(g: &Graph) -> EdgeDecomposition {
    let edges: Vec<Edge> = g.edges().collect();
    let m = edges.len();
    assert!(
        m <= OPTIMAL_EDGE_LIMIT,
        "optimal() supports at most {OPTIMAL_EDGE_LIMIT} edges, got {m}"
    );
    if m == 0 {
        return EdgeDecomposition::new(Vec::new()).expect("empty decomposition is valid");
    }
    let index: HashMap<Edge, usize> = edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let full: u64 = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };

    // Precompute incident-edge masks per node and triangles per edge.
    let mut incident = vec![0u64; g.node_count()];
    for (i, e) in edges.iter().enumerate() {
        incident[e.lo()] |= 1 << i;
        incident[e.hi()] |= 1 << i;
    }
    let mut tri_by_edge: Vec<Vec<u64>> = vec![Vec::new(); m];
    for (x, y, z) in g.triangles() {
        let mask = (1u64 << index[&Edge::new(x, y)])
            | (1u64 << index[&Edge::new(x, z)])
            | (1u64 << index[&Edge::new(y, z)]);
        for (a, b) in [(x, y), (x, z), (y, z)] {
            tri_by_edge[index[&Edge::new(a, b)]].push(mask);
        }
    }

    struct Search<'a> {
        edges: &'a [Edge],
        incident: &'a [u64],
        tri_by_edge: &'a [Vec<u64>],
        memo: HashMap<u64, (usize, u64)>, // remaining mask -> (best count, chosen group mask)
    }

    impl Search<'_> {
        fn solve(&mut self, remaining: u64) -> usize {
            if remaining == 0 {
                return 0;
            }
            if let Some(&(count, _)) = self.memo.get(&remaining) {
                return count;
            }
            let lowest = remaining.trailing_zeros() as usize;
            let e = self.edges[lowest];
            let mut best = usize::MAX;
            let mut best_group = 0u64;
            let star_u = self.incident[e.lo()] & remaining;
            let star_v = self.incident[e.hi()] & remaining;
            let mut candidates = vec![star_u, star_v];
            for &tri in &self.tri_by_edge[lowest] {
                if tri & remaining == tri {
                    candidates.push(tri);
                }
            }
            for group in candidates {
                debug_assert!(group & (1 << lowest) != 0);
                let sub = self.solve(remaining & !group);
                if sub != usize::MAX && sub + 1 < best {
                    best = sub + 1;
                    best_group = group;
                }
            }
            self.memo.insert(remaining, (best, best_group));
            best
        }
    }

    let mut search = Search {
        edges: &edges,
        incident: &incident,
        tri_by_edge: &tri_by_edge,
        memo: HashMap::new(),
    };
    let size = search.solve(full);
    debug_assert_ne!(size, usize::MAX);

    // Reconstruct the chosen groups from the memo.
    let mut groups = Vec::with_capacity(size);
    let mut remaining = full;
    while remaining != 0 {
        let (_, group_mask) = search.memo[&remaining];
        let group_edges: Vec<Edge> = (0..m)
            .filter(|i| group_mask & (1 << i) != 0)
            .map(|i| edges[i])
            .collect();
        groups.push(group_from_edges(&group_edges));
        remaining &= !group_mask;
    }
    let dec = EdgeDecomposition::new(groups).expect("search picks disjoint groups");
    debug_assert_eq!(dec.len(), size);
    dec
}

/// Size of the exact optimal decomposition, `α(G)`.
///
/// # Panics
///
/// Panics if `g` has more than [`OPTIMAL_EDGE_LIMIT`] edges.
pub fn alpha(g: &Graph) -> usize {
    optimal(g).len()
}

/// A lower bound on `α(G)`: the size of a greedily built maximal matching.
/// Pairwise non-adjacent edges must occupy pairwise distinct groups (both
/// stars and triangles have pairwise adjacent edges), so any matching's size
/// bounds the decomposition from below.
pub fn matching_lower_bound(g: &Graph) -> usize {
    let mut covered = vec![false; g.node_count()];
    let mut size = 0;
    for e in g.edges() {
        let (u, v) = e.endpoints();
        if !covered[u] && !covered[v] {
            covered[u] = true;
            covered[v] = true;
            size += 1;
        }
    }
    size
}

/// The smallest decomposition among the fast (polynomial) constructions:
/// [`greedy`], [`from_vertex_cover`] over the exact cover when the graph is
/// small (else the two-approximate cover), and [`trivial`]. This is what the
/// higher layers use by default to size their vector clocks.
pub fn best_known(g: &Graph) -> EdgeDecomposition {
    let mut best = greedy(g);
    let cover = if let Some(exact) = crate::cover::bipartite_exact(g) {
        exact // polynomial-time optimal (König) at any scale
    } else if g.node_count() <= 24 {
        crate::cover::exact_min(g)
    } else {
        crate::cover::greedy_max_degree(g)
    };
    for candidate in [from_vertex_cover(g, &cover), trivial(g)] {
        if candidate.len() < best.len() {
            best = candidate;
        }
    }
    best
}

fn group_from_edges(edges: &[Edge]) -> EdgeGroup {
    debug_assert!(!edges.is_empty());
    // Try a star first: find a common endpoint.
    let (a, b) = edges[0].endpoints();
    for center in [a, b] {
        if edges.iter().all(|e| e.is_incident_to(center)) {
            return EdgeGroup::star(center, edges.to_vec());
        }
    }
    // Otherwise it must be a triangle.
    debug_assert_eq!(edges.len(), 3);
    let mut nodes: Vec<NodeId> = edges.iter().flat_map(|e| [e.lo(), e.hi()]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    debug_assert_eq!(nodes.len(), 3);
    EdgeGroup::triangle(nodes[0], nodes[1], nodes[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_topology_is_one_group() {
        let g = topology::star(6);
        let dec = greedy(&g);
        dec.validate(&g).unwrap();
        assert_eq!(dec.len(), 1);
        assert_eq!(alpha(&g), 1);
    }

    #[test]
    fn triangle_topology_is_one_group() {
        let g = topology::triangle();
        let dec = greedy(&g);
        dec.validate(&g).unwrap();
        assert_eq!(dec.len(), 1);
        assert!(!dec.groups()[0].is_star());
    }

    #[test]
    fn fig3_k5_decompositions() {
        // Figure 3: K5 decomposes into (a) 2 stars + 1 triangle via the
        // trivial construction, and (b) 4 stars via a vertex cover.
        let k5 = topology::complete(5);
        let a = trivial(&k5);
        a.validate(&k5).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.star_count(), 2);
        assert_eq!(a.triangle_count(), 1);

        let cover = crate::cover::exact_min(&k5); // 4 vertices
        let b = from_vertex_cover(&k5, &cover);
        b.validate(&k5).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b.triangle_count(), 0);

        // And N - 2 = 3 is optimal for K5.
        assert_eq!(alpha(&k5), 3);
    }

    #[test]
    fn fig4_tree20_three_stars() {
        let g = topology::figure4_tree();
        let dec = greedy(&g);
        dec.validate(&g).unwrap();
        // Figure 4: E1 (root's star is absorbed into hub stars), three
        // groups total, all stars.
        assert!(dec.len() <= 4, "got {}", dec.len());
        assert_eq!(dec.triangle_count(), 0);
        // Theorem 7: greedy is optimal on acyclic graphs; the hub cover
        // {1, 2, 3} yields 3 stars, and a 20-node tree with 3 hubs cannot
        // do better than 3 (matching (0,1),(2,x),(3,y) is size 3).
        assert_eq!(dec.len(), 3);
    }

    #[test]
    fn fig8_greedy_run_matches_narration() {
        let g = topology::figure2b();
        let run = greedy_with_trace(&g);
        run.decomposition.validate(&g).unwrap();
        // Step sequence: one degree-1 star, one pendant triangle, one
        // double-star, then the loop-back degree-1 star on (j, k).
        let kinds: Vec<&str> = run
            .steps
            .iter()
            .map(|s| match s {
                GreedyStep::Degree1Star { .. } => "star1",
                GreedyStep::PendantTriangle { .. } => "triangle",
                GreedyStep::DoubleStar { .. } => "double",
            })
            .collect();
        assert_eq!(kinds, vec!["star1", "triangle", "double", "star1"]);
        // The loop-back star is the edge (j, k) = (9, 10).
        match run.steps.last().unwrap() {
            GreedyStep::Degree1Star { leaf, root } => {
                assert_eq!(Edge::new(*leaf, *root), Edge::new(9, 10));
            }
            other => panic!("unexpected final step {other:?}"),
        }
        // Greedy emits 5 groups (double-star emits two), matching the
        // optimal size; the optimal uses 4 stars + 1 triangle (Figure 8(f)).
        assert_eq!(run.decomposition.len(), 5);
        let opt = optimal(&g);
        opt.validate(&g).unwrap();
        assert_eq!(opt.len(), 5);
        // The greedy maximal matching is a valid (if not tight) lower
        // bound; the true maximum matching {(0,1),(2,3),(4,6),(5,7),(9,10)}
        // has size 5, certifying that 5 groups are optimal.
        let lb = matching_lower_bound(&g);
        assert!(lb >= 4 && lb <= opt.len());
        // An optimal decomposition with 4 stars + 1 triangle exists.
        let witness = EdgeDecomposition::new(vec![
            EdgeGroup::star(1, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(1, 3)]),
            EdgeGroup::triangle(2, 3, 4),
            EdgeGroup::star(
                4,
                vec![
                    Edge::new(4, 5),
                    Edge::new(4, 6),
                    Edge::new(4, 7),
                    Edge::new(4, 8),
                    Edge::new(4, 9),
                ],
            ),
            EdgeGroup::star(
                5,
                vec![
                    Edge::new(5, 6),
                    Edge::new(5, 7),
                    Edge::new(5, 8),
                    Edge::new(5, 10),
                ],
            ),
            EdgeGroup::star(9, vec![Edge::new(9, 10)]),
        ])
        .unwrap();
        witness.validate(&g).unwrap();
        assert_eq!(witness.len(), 5);
        assert_eq!(witness.star_count(), 4);
        assert_eq!(witness.triangle_count(), 1);
    }

    #[test]
    fn client_server_decomposes_to_server_stars() {
        let g = topology::client_server(3, 12);
        let dec = best_known(&g);
        dec.validate(&g).unwrap();
        assert_eq!(dec.len(), 3);
    }

    #[test]
    fn greedy_is_optimal_on_forests() {
        let mut rng = StdRng::seed_from_u64(20);
        for n in 2..14 {
            let g = topology::random_tree(n, &mut rng);
            let gr = greedy(&g);
            gr.validate(&g).unwrap();
            assert_eq!(gr.len(), alpha(&g), "tree n={n}");
            assert_eq!(gr.triangle_count(), 0);
        }
    }

    #[test]
    fn greedy_within_ratio_two() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in 3..9 {
            for p in [0.3, 0.6] {
                let g = topology::gnp(n, p, &mut rng);
                if g.edge_count() == 0 || g.edge_count() > OPTIMAL_EDGE_LIMIT {
                    continue;
                }
                let gr = greedy(&g);
                gr.validate(&g).unwrap();
                let opt = alpha(&g);
                assert!(gr.len() <= 2 * opt, "n={n} p={p}: {} > 2*{}", gr.len(), opt);
            }
        }
    }

    #[test]
    fn disjoint_triangles_alpha_vs_beta() {
        // The tight example for β ≤ 2α: t triangles.
        let g = topology::disjoint_triangles(3);
        assert_eq!(alpha(&g), 3);
        assert_eq!(crate::cover::beta(&g), 6);
        let dec = greedy(&g);
        dec.validate(&g).unwrap();
        assert_eq!(dec.len(), 3);
        assert_eq!(dec.triangle_count(), 3);
    }

    #[test]
    fn trivial_at_most_n_minus_2() {
        let mut rng = StdRng::seed_from_u64(22);
        for n in 3..12 {
            let g = topology::gnp(n, 0.5, &mut rng);
            if g.is_empty() {
                continue;
            }
            let dec = trivial(&g);
            dec.validate(&g).unwrap();
            assert!(dec.len() <= n - 2, "n={n}: {}", dec.len());
        }
    }

    #[test]
    fn trivial_on_complete_matches_figure3a() {
        for n in 4..9 {
            let g = topology::complete(n);
            let dec = trivial(&g);
            dec.validate(&g).unwrap();
            assert_eq!(dec.len(), n - 2, "K_{n}");
            assert_eq!(dec.star_count(), n - 3);
            assert_eq!(dec.triangle_count(), 1);
        }
    }

    #[test]
    fn from_vertex_cover_respects_cover_size() {
        let mut rng = StdRng::seed_from_u64(23);
        for n in 3..12 {
            let g = topology::random_connected(n, 2, &mut rng);
            let cover = crate::cover::exact_min(&g);
            let dec = from_vertex_cover(&g, &cover);
            dec.validate(&g).unwrap();
            assert!(dec.len() <= cover.len());
            assert_eq!(dec.triangle_count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not a vertex cover")]
    fn from_vertex_cover_rejects_non_cover() {
        let g = topology::path(4);
        from_vertex_cover(&g, &[0]);
    }

    #[test]
    fn extend_star_adds_channels_in_place() {
        let mut dec = EdgeDecomposition::new(vec![
            EdgeGroup::star(0, vec![Edge::new(0, 1)]),
            EdgeGroup::triangle(2, 3, 4),
        ])
        .unwrap();
        dec.extend_star(0, Edge::new(0, 5)).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec.group_of(Edge::new(0, 5)), Some(0));
        // Duplicate edges are rejected.
        assert!(matches!(
            dec.extend_star(0, Edge::new(0, 5)),
            Err(GraphError::OverlappingGroups { .. })
        ));
        // Edges not incident to the center are rejected.
        assert!(matches!(
            dec.extend_star(0, Edge::new(5, 6)),
            Err(GraphError::NotAStar { group: 0 })
        ));
        // Triangles cannot be extended.
        assert!(matches!(
            dec.extend_star(1, Edge::new(2, 5)),
            Err(GraphError::NotAStar { group: 1 })
        ));
    }

    #[test]
    fn push_star_grows_dimension() {
        let mut dec =
            EdgeDecomposition::new(vec![EdgeGroup::star(0, vec![Edge::new(0, 1)])]).unwrap();
        let idx = dec.push_star(7, Edge::new(7, 8)).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(dec.len(), 2);
        assert_eq!(dec.group_of(Edge::new(7, 8)), Some(1));
        assert!(matches!(
            dec.push_star(8, Edge::new(7, 8)),
            Err(GraphError::OverlappingGroups { .. })
        ));
        assert!(matches!(
            dec.push_star(3, Edge::new(7, 9)),
            Err(GraphError::NotAStar { .. })
        ));
    }

    #[test]
    fn decomposition_rejects_overlap() {
        let e = Edge::new(0, 1);
        let err = EdgeDecomposition::new(vec![
            EdgeGroup::star(0, vec![e]),
            EdgeGroup::star(1, vec![e]),
        ])
        .unwrap_err();
        assert!(matches!(err, GraphError::OverlappingGroups { .. }));
    }

    #[test]
    fn validate_rejects_uncovered_and_unknown_edges() {
        let g = topology::path(3); // edges (0,1), (1,2)
        let partial =
            EdgeDecomposition::new(vec![EdgeGroup::star(1, vec![Edge::new(0, 1)])]).unwrap();
        assert!(matches!(
            partial.validate(&g),
            Err(GraphError::UncoveredEdge(_))
        ));

        let foreign =
            EdgeDecomposition::new(vec![EdgeGroup::star(0, vec![Edge::new(0, 2)])]).unwrap();
        assert!(matches!(
            foreign.validate(&g),
            Err(GraphError::UnknownEdge(_))
        ));
    }

    #[test]
    fn group_of_maps_channels_to_components() {
        let g = topology::figure2b();
        let dec = greedy(&g);
        for e in g.edges() {
            let idx = dec.group_of(e).expect("every edge has a group");
            assert!(dec.groups()[idx].edges().contains(&e));
        }
        assert_eq!(dec.group_of(Edge::new(0, 10)), None);
    }

    #[test]
    fn optimal_matches_lower_bound_families() {
        // alpha(path_n) = ceil((n-1)/2)? No: stars at alternating internal
        // nodes cover two edges each, so alpha = ceil(m/2) for paths.
        for n in 2..10 {
            let g = topology::path(n);
            assert_eq!(alpha(&g), (n - 1).div_ceil(2), "path {n}");
        }
        // Cycle: each star covers at most 2 edges, no triangles for n > 3.
        for n in 4..9 {
            let g = topology::cycle(n);
            assert_eq!(alpha(&g), n.div_ceil(2), "cycle {n}");
        }
    }

    #[test]
    fn greedy_deterministic() {
        let g = topology::figure2b();
        assert_eq!(greedy_with_trace(&g), greedy_with_trace(&g));
    }

    #[test]
    fn display_forms() {
        let dec = EdgeDecomposition::new(vec![
            EdgeGroup::star(0, vec![Edge::new(0, 1)]),
            EdgeGroup::triangle(2, 3, 4),
        ])
        .unwrap();
        let s = dec.to_string();
        assert!(s.contains("star@0"));
        assert!(s.contains("triangle(2, 3, 4)"));
    }

    #[test]
    fn empty_graph_decomposes_to_nothing() {
        let g = Graph::new(4);
        let dec = greedy(&g);
        dec.validate(&g).unwrap();
        assert!(dec.is_empty());
        assert_eq!(alpha(&g), 0);
        let t = trivial(&g);
        t.validate(&g).unwrap();
        assert!(t.is_empty());
    }
}
