//! Communication topologies and their star/triangle edge decompositions.
//!
//! This crate is the combinatorial substrate of the `synctime` project, a
//! reproduction of *Garg & Skawratananond, "Timestamping Messages in
//! Synchronous Computations" (ICDCS 2002)*. The paper's online timestamping
//! algorithm assigns one vector-clock component per **edge group** of an
//! *edge decomposition* of the communication topology: a partition of the
//! edge set in which every part is a [star](EdgeGroup::Star) or a
//! [triangle](EdgeGroup::Triangle) (Definition 2 of the paper).
//!
//! The crate provides:
//!
//! * [`Graph`] — a simple undirected graph over dense node ids,
//! * [`topology`] — generators for the topology families used throughout the
//!   paper and its evaluation (stars, trees, complete graphs, client–server
//!   bipartite graphs, random graphs, ...),
//! * [`cover`] — exact and approximate **vertex cover** algorithms, which
//!   bound the decomposition size (Theorem 5: `min(β(G), N − 2)` components
//!   suffice),
//! * [`decompose`] — the paper's greedy decomposition algorithm (Figure 7,
//!   ratio bound 2 by Theorem 6, optimal on forests by Theorem 7), a
//!   vertex-cover-based decomposition, the trivial complete-graph
//!   decomposition, and an exact branch-and-bound optimum for small graphs,
//! * [`incremental`] — a decomposition cache for **dynamic topologies**:
//!   edge insertions and removals patch the existing groups (re-running the
//!   greedy algorithm only on a component whose Theorem 6 ratio can no
//!   longer be certified), reporting how group ids shifted so running
//!   clocks can be rebased.
//!
//! # Example
//!
//! Decompose the 20-process tree of Figure 4 into three stars:
//!
//! ```
//! use synctime_graph::{topology, decompose};
//!
//! let tree = topology::balanced_tree(2, 4); // a binary tree
//! let dec = decompose::greedy(&tree);
//! dec.validate(&tree).unwrap();
//! assert!(dec.len() < tree.node_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;

pub mod cover;
pub mod decompose;
pub mod incremental;
pub mod topology;

pub use decompose::{EdgeDecomposition, EdgeGroup};
pub use error::GraphError;
pub use graph::{Edge, Graph, NodeId};
pub use incremental::{EdgeOp, GroupRemap, IncrementalDecomposition, Reconfiguration};
