use std::fmt;

use crate::{Edge, NodeId};

/// Errors produced by graph construction and decomposition validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint refers to a node id outside the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was supplied; communication topologies are
    /// simple graphs.
    SelfLoop(NodeId),
    /// The same edge was supplied twice.
    DuplicateEdge(Edge),
    /// A decomposition group contains an edge that is not in the graph.
    UnknownEdge(Edge),
    /// A decomposition assigns the same edge to two groups.
    OverlappingGroups {
        /// The edge covered twice.
        edge: Edge,
        /// Index of the first group containing it.
        first: usize,
        /// Index of the second group containing it.
        second: usize,
    },
    /// A decomposition misses an edge of the graph.
    UncoveredEdge(Edge),
    /// A group labelled as a star is not a star rooted at its center.
    NotAStar {
        /// Index of the offending group.
        group: usize,
    },
    /// A group labelled as a triangle does not consist of exactly the three
    /// edges of a triangle.
    NotATriangle {
        /// Index of the offending group.
        group: usize,
    },
    /// A group is empty; decompositions must consist of non-empty groups.
    EmptyGroup {
        /// Index of the offending group.
        group: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::DuplicateEdge(e) => write!(f, "duplicate edge {e}"),
            GraphError::UnknownEdge(e) => write!(f, "edge {e} is not present in the graph"),
            GraphError::OverlappingGroups {
                edge,
                first,
                second,
            } => write!(
                f,
                "edge {edge} assigned to both group {first} and group {second}"
            ),
            GraphError::UncoveredEdge(e) => write!(f, "edge {e} is not covered by any group"),
            GraphError::NotAStar { group } => write!(f, "group {group} is not a star"),
            GraphError::NotATriangle { group } => write!(f, "group {group} is not a triangle"),
            GraphError::EmptyGroup { group } => write!(f, "group {group} is empty"),
        }
    }
}

impl std::error::Error for GraphError {}
