//! Generators for the communication-topology families discussed in the
//! paper: stars and triangles (Lemma 1), trees (Figure 4), complete graphs
//! (Figure 3), client–server bipartite systems (Section 3.3), and the random
//! and structured families used by the benchmark sweeps.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, NodeId};

/// A star with `leaves` leaves rooted at node 0 (so `leaves + 1` nodes).
///
/// By Lemma 1 of the paper, every synchronous computation over a star
/// topology has a totally ordered message set, so a *single integer*
/// suffices as a timestamp.
///
/// # Panics
///
/// Panics if `leaves == 0`.
pub fn star(leaves: usize) -> Graph {
    assert!(leaves > 0, "a star needs at least one leaf");
    let mut g = Graph::new(leaves + 1);
    for leaf in 1..=leaves {
        g.add_edge(0, leaf);
    }
    g
}

/// The triangle on three nodes — the other topology whose computations are
/// always totally ordered (Lemma 1).
pub fn triangle() -> Graph {
    Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).expect("triangle edges are valid")
}

/// A simple path `0 - 1 - ... - (n-1)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2, "a path needs at least two nodes");
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v);
    }
    g
}

/// A cycle on `n >= 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least three nodes");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// The complete graph `K_n` — the paper's worst case, whose smallest edge
/// decomposition has `n - 2` groups (`n - 3` stars plus one triangle,
/// Figure 3(a)).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2, "a complete graph needs at least two nodes");
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// A balanced tree in which every internal node has `branching` children and
/// leaves sit at depth `depth`. Node 0 is the root; children are laid out in
/// breadth-first order. `depth == 0` yields a single isolated root.
///
/// # Panics
///
/// Panics if `branching == 0` and `depth > 0`.
pub fn balanced_tree(branching: usize, depth: usize) -> Graph {
    if depth == 0 {
        return Graph::new(1);
    }
    assert!(branching > 0, "branching factor must be positive");
    // Total nodes: 1 + b + b^2 + ... + b^depth.
    let mut level_size = 1usize;
    let mut total = 1usize;
    for _ in 0..depth {
        level_size *= branching;
        total += level_size;
    }
    let mut g = Graph::new(total);
    let mut next = 1usize;
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut new_frontier = Vec::with_capacity(frontier.len() * branching);
        for &parent in &frontier {
            for _ in 0..branching {
                g.add_edge(parent, next);
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    g
}

/// The 20-process tree of the paper's Figure 4, which decomposes into three
/// stars. The figure shows a three-level tree; we reconstruct it as a root
/// with three children, each internal child having further children for a
/// total of 20 nodes: the root (node 0), 3 hubs (1..=3), and 16 leaves
/// spread across the hubs.
pub fn figure4_tree() -> Graph {
    let mut g = Graph::new(20);
    // Root and its three hub children.
    for hub in 1..=3 {
        g.add_edge(0, hub);
    }
    // Leaves: 6 under hub 1, 5 under hub 2, 5 under hub 3.
    let mut next = 4;
    for (hub, count) in [(1, 6), (2, 5), (3, 5)] {
        for _ in 0..count {
            g.add_edge(hub, next);
            next += 1;
        }
    }
    debug_assert_eq!(next, 20);
    g
}

/// A client–server topology: the complete bipartite graph between `servers`
/// server nodes (ids `0..servers`) and `clients` client nodes (ids
/// `servers..servers+clients`). Clients only talk to servers, as in a system
/// built on synchronous RPC/RMI (Section 3.3 of the paper); the edge set
/// decomposes into one star per server, so timestamp vectors have
/// `servers` components regardless of the number of clients.
///
/// # Panics
///
/// Panics if `servers == 0` or `clients == 0`.
pub fn client_server(servers: usize, clients: usize) -> Graph {
    assert!(servers > 0 && clients > 0, "need at least one of each");
    let mut g = Graph::new(servers + clients);
    for s in 0..servers {
        for c in 0..clients {
            g.add_edge(s, servers + c);
        }
    }
    g
}

/// A 2-D grid topology with `rows * cols` nodes connected to their
/// horizontal and vertical neighbors.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// `t` vertex-disjoint triangles (`3t` nodes). This is the tight example for
/// the bound `β(G) ≤ 2·α(G)` (Section 3.3): the optimal star-and-triangle
/// decomposition has `t` groups while any pure-star (vertex-cover)
/// decomposition needs `2t`.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn disjoint_triangles(t: usize) -> Graph {
    assert!(t > 0, "need at least one triangle");
    let mut g = Graph::new(3 * t);
    for i in 0..t {
        let b = 3 * i;
        g.add_edge(b, b + 1);
        g.add_edge(b + 1, b + 2);
        g.add_edge(b, b + 2);
    }
    g
}

/// The `d`-dimensional hypercube (`2^d` nodes): vertices are bitstrings,
/// edges connect strings at Hamming distance 1. A classic interconnect.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: usize) -> Graph {
    assert!(d > 0 && d <= 20, "hypercube dimension must be in 1..=20");
    let n = 1usize << d;
    let mut g = Graph::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                g.add_edge(v, u);
            }
        }
    }
    g
}

/// A `rows × cols` torus: the grid with wrap-around edges in both
/// dimensions. Requires at least 3 rows and 3 columns so wrap-around edges
/// do not duplicate grid edges.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs at least 3x3");
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r % rows) * cols + (c % cols);
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id(r, c + 1));
            g.add_edge(id(r, c), id(r + 1, c));
        }
    }
    g
}

/// A wheel: a hub (node 0) connected to every rim node, plus the rim cycle
/// `1..=n`. Its hub is a one-node vertex cover of the spokes; the rim
/// still needs covering, making it a nice middle case between star and
/// cycle.
///
/// # Panics
///
/// Panics if `rim < 3`.
pub fn wheel(rim: usize) -> Graph {
    assert!(rim >= 3, "a wheel needs at least 3 rim nodes");
    let mut g = Graph::new(rim + 1);
    for v in 1..=rim {
        g.add_edge(0, v);
        g.add_edge(v, v % rim + 1);
    }
    g
}

/// A barbell: two complete graphs `K_k` joined by a path of `bridge`
/// edges. Stresses decompositions with two dense cores and a sparse cut.
///
/// # Panics
///
/// Panics if `k < 3` or `bridge == 0`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 3 && bridge >= 1, "need K_3 cores and a bridge");
    let n = 2 * k + bridge.saturating_sub(1);
    let mut g = Graph::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u, v);
            g.add_edge(k + bridge - 1 + u, k + bridge - 1 + v);
        }
    }
    // Path from node k-1 (in the first core) to node k+bridge-1 (first of
    // the second core) through bridge-1 intermediate nodes.
    let mut prev = k - 1;
    for step in 0..bridge {
        let next = k + step;
        g.add_edge(prev, next);
        prev = next;
    }
    g
}

/// A uniformly random labelled tree on `n` nodes, drawn via a random Prüfer
/// sequence.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "a tree needs at least two nodes");
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("valid edge");
    }
    let prufer: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut g = Graph::new(n);
    // Standard Prüfer decoding with a sorted set of current leaves.
    let mut leaves: std::collections::BTreeSet<NodeId> =
        (0..n).filter(|&v| degree[v] == 1).collect();
    for &v in &prufer {
        let leaf = *leaves.iter().next().expect("a leaf always exists");
        leaves.remove(&leaf);
        g.add_edge(leaf, v);
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.insert(v);
        }
    }
    let mut last = leaves.into_iter();
    let (u, v) = (
        last.next().expect("two leaves remain"),
        last.next().expect("two leaves remain"),
    );
    g.add_edge(u, v);
    g
}

/// An Erdős–Rényi random graph `G(n, p)`: each of the `n(n-1)/2` candidate
/// edges is present independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A connected random graph: a random tree plus `extra_edges` additional
/// distinct random non-tree edges (fewer if the graph saturates).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_connected<R: Rng + ?Sized>(n: usize, extra_edges: usize, rng: &mut R) -> Graph {
    let mut g = random_tree(n, rng);
    let mut candidates: Vec<(NodeId, NodeId)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .filter(|&(u, v)| !g.has_edge(u, v))
        .collect();
    candidates.shuffle(rng);
    for (u, v) in candidates.into_iter().take(extra_edges) {
        g.add_edge(u, v);
    }
    g
}

/// The 11-node topology of the paper's Figure 2(b), reconstructed (the exact
/// drawing is not recoverable from the text; see DESIGN.md). Vertices are
/// labelled `a..k` ↦ `0..10`. The reconstruction is constrained so that the
/// greedy decomposition run matches the narration of Figure 8:
///
/// 1. step 1 fires (there is a degree-1 node) and emits one star;
/// 2. step 2 then finds a pendant triangle `(x, y, z)` with
///    `deg(x) = deg(y) = 2` and emits it;
/// 3. step 3 emits two stars around the max-adjacency edge;
/// 4. looping back, step 1 emits the lone remaining edge `(j, k)`;
/// 5. the greedy total is 5 groups, and an optimal decomposition of the same
///    size exists consisting of 4 stars and 1 triangle (Figure 8(f)).
pub fn figure2b() -> Graph {
    // Labels: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10.
    Graph::from_edges(
        11,
        [
            // Pendant node a hanging off hub b: the only degree-1 node, so
            // step 1 fires exactly once, emitting the star at b.
            (0, 1),
            (1, 2),
            (1, 3),
            // Triangle c-d-e; after the step-1 deletion of b's edges, c and
            // d have degree exactly 2, so step 2 emits this triangle.
            (2, 3),
            (2, 4),
            (3, 4),
            // Dense middle around edge (e, f), the max-adjacency edge chosen
            // by step 3 (8 adjacent edges): step 3 emits the star at f and
            // the star at e.
            (4, 5),
            (4, 6),
            (4, 7),
            (4, 8),
            (4, 9),
            (5, 6),
            (5, 7),
            (5, 8),
            (5, 10),
            // After step 3 removes everything incident to e or f, only
            // (j, k) remains; the loop-back step 1 emits it and exits.
            (9, 10),
        ],
    )
    .expect("figure 2(b) reconstruction is a valid simple graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_star());
        assert_eq!(g.degree(0), 5);
    }

    #[test]
    fn triangle_shape() {
        let g = triangle();
        assert!(g.is_triangle());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn path_and_cycle() {
        assert!(path(5).is_acyclic());
        assert_eq!(path(5).edge_count(), 4);
        assert!(!cycle(5).is_acyclic());
        assert_eq!(cycle(5).edge_count(), 5);
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn balanced_tree_counts() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_acyclic());
        assert!(g.is_connected());
        let trivial = balanced_tree(3, 0);
        assert_eq!(trivial.node_count(), 1);
        assert_eq!(trivial.edge_count(), 0);
    }

    #[test]
    fn figure4_tree_shape() {
        let g = figure4_tree();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 19);
        assert!(g.is_acyclic());
        assert!(g.is_connected());
        // Every edge is incident to the root or one of the three hubs.
        for e in g.edges() {
            assert!(
                (0..=3).any(|hub| e.is_incident_to(hub)),
                "edge {e} not covered by hubs"
            );
        }
    }

    #[test]
    fn client_server_bipartite() {
        let g = client_server(3, 10);
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.edge_count(), 30);
        // No server-server or client-client edges.
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
    }

    #[test]
    fn disjoint_triangles_shape() {
        let g = disjoint_triangles(4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.triangles().len(), 4);
        assert!(!g.is_connected());
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(g.is_connected());
        // Bipartite (even/odd parity).
        assert!(crate::cover::bipartition(&g).is_some());
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 24);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(g.is_connected());
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree(0), 5);
        assert!(g.nodes().skip(1).all(|v| g.degree(v) == 3));
        assert_eq!(g.triangles().len(), 5);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 6 + 6 + 2);
        assert!(g.is_connected());
        let tight = barbell(3, 1);
        assert_eq!(tight.node_count(), 6);
        assert_eq!(tight.edge_count(), 3 + 3 + 1);
        assert!(tight.is_connected());
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in 2..30 {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.edge_count(), n - 1, "n={n}");
            assert!(g.is_acyclic(), "n={n}");
            assert!(g.is_connected(), "n={n}");
        }
    }

    #[test]
    fn random_tree_is_seed_deterministic() {
        let a = random_tree(12, &mut StdRng::seed_from_u64(42));
        let b = random_tree(12, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(8, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(8, 1.0, &mut rng).edge_count(), 28);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 2..20 {
            let g = random_connected(n, 3, &mut rng);
            assert!(g.is_connected());
            assert!(g.edge_count() >= n - 1);
        }
    }

    #[test]
    fn figure2b_is_connected_simple_graph() {
        let g = figure2b();
        assert_eq!(g.node_count(), 11);
        assert!(g.is_connected());
        // Node a (=0) must have degree 1 so that step 1 of Figure 8 fires.
        assert_eq!(g.degree(0), 1);
        // The lone far edge (j, k) exists.
        assert!(g.has_edge(9, 10));
    }
}
