use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// Identifier of a node (process) in a communication topology.
///
/// Nodes of a [`Graph`] with `n` nodes are exactly `0..n`. The paper writes
/// processes `P_1..P_N`; we use zero-based ids throughout.
pub type NodeId = usize;

/// An undirected edge with normalized endpoints (`lo() <= hi()`).
///
/// Two `Edge` values compare equal iff they connect the same pair of nodes,
/// regardless of the order the endpoints were supplied in.
///
/// ```
/// use synctime_graph::Edge;
/// assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    a: NodeId,
    b: NodeId,
}

impl Edge {
    /// Creates a normalized edge between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; communication topologies are simple graphs. Use
    /// [`Edge::try_new`] for a fallible variant.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        Edge::try_new(u, v).expect("self-loops are not valid edges")
    }

    /// Creates a normalized edge, returning an error on a self-loop.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`.
    pub fn try_new(u: NodeId, v: NodeId) -> Result<Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        Ok(Edge {
            a: u.min(v),
            b: u.max(v),
        })
    }

    /// The smaller endpoint.
    pub fn lo(self) -> NodeId {
        self.a
    }

    /// The larger endpoint.
    pub fn hi(self) -> NodeId {
        self.b
    }

    /// Both endpoints as a `(min, max)` pair.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Whether `v` is one of the endpoints.
    pub fn is_incident_to(self, v: NodeId) -> bool {
        self.a == v || self.b == v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of this edge.
    pub fn other(self, v: NodeId) -> NodeId {
        if v == self.a {
            self.b
        } else if v == self.b {
            self.a
        } else {
            panic!("node {v} is not an endpoint of edge {self}")
        }
    }

    /// Whether two edges share at least one endpoint (are *adjacent*).
    pub fn is_adjacent_to(self, other: Edge) -> bool {
        self.is_incident_to(other.a) || self.is_incident_to(other.b)
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((u, v): (NodeId, NodeId)) -> Self {
        Edge::new(u, v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

/// A simple undirected graph over nodes `0..n`, used as the communication
/// topology of a synchronous system: `(P_i, P_j)` is an edge when the two
/// processes can exchange (synchronous) messages directly.
///
/// The representation keeps both an adjacency structure (for neighborhood
/// queries) and a sorted edge set (for deterministic iteration), so all
/// algorithms in this workspace are reproducible run-to-run.
///
/// ```
/// use synctime_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.is_acyclic());
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    node_count: usize,
    adjacency: Vec<BTreeSet<NodeId>>,
    edges: BTreeSet<Edge>,
}

impl Graph {
    /// Creates a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        Graph {
            node_count,
            adjacency: vec![BTreeSet::new(); node_count],
            edges: BTreeSet::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a
    /// self-loop, or the same edge appears twice.
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new(node_count);
        for (u, v) in edges {
            g.try_add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count
    }

    /// Iterates over all edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// The sorted edge set.
    pub fn edge_set(&self) -> &BTreeSet<Edge> {
        &self.edges
    }

    /// Adds an edge between two distinct in-range nodes.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    /// Use [`Graph::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.try_add_edge(u, v)
            .expect("invalid edge insertion; use try_add_edge to handle errors");
    }

    /// Adds an edge, validating endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateEdge`].
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        for &x in &[u, v] {
            if x >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: x,
                    node_count: self.node_count,
                });
            }
        }
        let edge = Edge::try_new(u, v)?;
        if !self.edges.insert(edge) {
            return Err(GraphError::DuplicateEdge(edge));
        }
        self.adjacency[u].insert(v);
        self.adjacency[v].insert(u);
        Ok(())
    }

    /// Removes an edge if present; returns whether it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        match Edge::try_new(u, v) {
            Ok(edge) if self.edges.remove(&edge) => {
                self.adjacency[u].remove(&v);
                self.adjacency[v].remove(&u);
                true
            }
            _ => false,
        }
    }

    /// Whether the edge `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Edge::try_new(u, v).is_ok_and(|e| self.edges.contains(&e))
    }

    /// Whether the given [`Edge`] is present.
    pub fn contains(&self, edge: Edge) -> bool {
        self.edges.contains(&edge)
    }

    /// Neighbors of `v` in sorted order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[v].iter().copied()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    /// Edges incident to `v`, in sorted order.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency[v].iter().map(move |&u| Edge::new(u, v))
    }

    /// Number of edges adjacent to the edge `(u, v)` (sharing an endpoint
    /// with it, excluding the edge itself). This is the quantity maximized
    /// by step 3 of the paper's Figure 7 algorithm.
    pub fn adjacent_edge_count(&self, edge: Edge) -> usize {
        let (u, v) = edge.endpoints();
        // Shared neighbors would be double-counted via both endpoints, but
        // each shared neighbor contributes two *distinct* adjacent edges
        // ((u,w) and (v,w)), so the sum is correct after removing the edge
        // itself from both endpoint counts.
        self.degree(u) + self.degree(v) - 2
    }

    /// Whether all of the graph's edges are incident to a single node, i.e.
    /// the edge set forms a *star*. Graphs with no edges are not stars.
    ///
    /// A single edge is a star (rooted at either endpoint).
    pub fn is_star(&self) -> bool {
        let mut edges = self.edges.iter();
        let Some(first) = edges.next() else {
            return false;
        };
        let (a, b) = first.endpoints();
        let mut candidates = vec![a, b];
        for e in edges {
            candidates.retain(|&c| e.is_incident_to(c));
            if candidates.is_empty() {
                return false;
            }
        }
        true
    }

    /// Whether the edge set consists of exactly three edges forming a
    /// triangle.
    pub fn is_triangle(&self) -> bool {
        if self.edges.len() != 3 {
            return false;
        }
        let mut nodes = BTreeSet::new();
        for e in &self.edges {
            nodes.insert(e.lo());
            nodes.insert(e.hi());
        }
        nodes.len() == 3
    }

    /// Whether the graph is connected, considering only nodes that have at
    /// least one incident edge (isolated nodes are ignored so that
    /// topologies padded with unused process slots still count as
    /// connected). Graphs with no edges are considered connected.
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.nodes().find(|&v| self.degree(v) > 0) else {
            return true;
        };
        let mut seen = vec![false; self.node_count];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            for u in self.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        self.nodes().all(|v| self.degree(v) == 0 || seen[v])
    }

    /// Whether the graph contains no cycle (is a forest).
    pub fn is_acyclic(&self) -> bool {
        let mut seen = vec![false; self.node_count];
        for root in self.nodes() {
            if seen[root] {
                continue;
            }
            // DFS remembering the parent edge; a visited non-parent
            // neighbor closes a cycle.
            let mut stack = vec![(root, usize::MAX)];
            seen[root] = true;
            while let Some((v, parent)) = stack.pop() {
                for u in self.neighbors(v) {
                    if u == parent {
                        continue;
                    }
                    if seen[u] {
                        return false;
                    }
                    seen[u] = true;
                    stack.push((u, v));
                }
            }
        }
        true
    }

    /// All triangles `(x, y, z)` with `x < y < z`, in lexicographic order.
    pub fn triangles(&self) -> Vec<(NodeId, NodeId, NodeId)> {
        let mut out = Vec::new();
        for e in &self.edges {
            let (x, y) = e.endpoints();
            for z in self.adjacency[x].intersection(&self.adjacency[y]) {
                if *z > y {
                    out.push((x, y, *z));
                }
            }
        }
        out
    }

    /// The subgraph induced by keeping only the given edges (same node set).
    ///
    /// # Panics
    ///
    /// Panics if one of the edges is not present in this graph.
    pub fn edge_subgraph(&self, edges: &[Edge]) -> Graph {
        let mut g = Graph::new(self.node_count);
        for e in edges {
            assert!(self.contains(*e), "edge {e} not in graph");
            g.add_edge(e.lo(), e.hi());
        }
        g
    }

    /// Maximum degree over all nodes; 0 for edgeless graphs.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes_endpoints() {
        let e = Edge::new(5, 2);
        assert_eq!(e.lo(), 2);
        assert_eq!(e.hi(), 5);
        assert_eq!(e, Edge::new(2, 5));
        assert_eq!(e.endpoints(), (2, 5));
    }

    #[test]
    fn edge_rejects_self_loop() {
        assert_eq!(Edge::try_new(3, 3), Err(GraphError::SelfLoop(3)));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(1, 4);
        assert_eq!(e.other(1), 4);
        assert_eq!(e.other(4), 1);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_on_non_endpoint() {
        Edge::new(1, 4).other(2);
    }

    #[test]
    fn edge_adjacency() {
        assert!(Edge::new(0, 1).is_adjacent_to(Edge::new(1, 2)));
        assert!(!Edge::new(0, 1).is_adjacent_to(Edge::new(2, 3)));
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(2, 1);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert_eq!(
            g.try_add_edge(1, 0),
            Err(GraphError::DuplicateEdge(Edge::new(0, 1)))
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.try_add_edge(0, 5),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                node_count: 2
            })
        );
    }

    #[test]
    fn remove_edge_works() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(1, 0));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn star_detection() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(g.is_star());
        let h = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!h.is_star());
        let single = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert!(single.is_star());
        assert!(!Graph::new(3).is_star());
    }

    #[test]
    fn triangle_detection() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        assert!(g.is_triangle());
        assert!(!g.is_star());
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(!path.is_triangle());
    }

    #[test]
    fn connectivity_ignores_isolated_nodes() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]).unwrap();
        assert!(g.is_connected());
        let h = Graph::from_edges(5, [(0, 1), (3, 4)]).unwrap();
        assert!(!h.is_connected());
        assert!(Graph::new(7).is_connected());
    }

    #[test]
    fn acyclicity() {
        let tree = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        assert!(tree.is_acyclic());
        let cyc = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!cyc.is_acyclic());
        // Two disjoint components, one cyclic.
        let mix = Graph::from_edges(6, [(0, 1), (2, 3), (3, 4), (4, 2)]).unwrap();
        assert!(!mix.is_acyclic());
    }

    #[test]
    fn triangle_enumeration() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]).unwrap();
        assert_eq!(g.triangles(), vec![(0, 1, 2), (1, 2, 3)]);
    }

    #[test]
    fn adjacent_edge_count_counts_both_endpoints() {
        // path 0-1-2-3: edge (1,2) has two adjacent edges.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.adjacent_edge_count(Edge::new(1, 2)), 2);
        assert_eq!(g.adjacent_edge_count(Edge::new(0, 1)), 1);
    }

    #[test]
    fn edge_subgraph_keeps_node_count() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let sub = g.edge_subgraph(&[Edge::new(1, 2)]);
        assert_eq!(sub.node_count(), 4);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Edge::new(2, 1).to_string(), "(1, 2)");
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(g.to_string(), "Graph(n=3, m=1)");
    }
}
