//! An incrementally maintained edge decomposition for dynamic topologies.
//!
//! PR 1 re-ran the Figure 7 greedy algorithm (`O(|V|·|E|)`) from scratch on
//! every topology change. This module keeps a [`Graph`] and its
//! [`EdgeDecomposition`] in lockstep under edge insertions and removals,
//! patching the existing groups whenever a local edit suffices:
//!
//! * **insert** — if a star already sits at either endpoint, the edge joins
//!   it ([`EdgeDecomposition::extend_star`]); otherwise a fresh singleton
//!   star is appended,
//! * **remove** — a multi-edge star sheds the edge in place
//!   ([`EdgeDecomposition::retract_star_edge`]), a singleton star is
//!   dropped (compacting later indices), and a broken triangle collapses to
//!   the 2-star at its remaining shared vertex.
//!
//! Fast paths alone can drift arbitrarily far from optimal (singleton stars
//! pile up), so after every edit the affected component is checked against
//! the matching lower bound on its optimum: if the component holds more
//! than `2 ×` that bound's groups — i.e. Theorem 6's ratio can no longer be
//! certified — the component (and only that component) is re-decomposed
//! with the greedy algorithm. The invariant maintained after every edit is
//! therefore exactly the paper's bound: **every component's group count is
//! at most twice its optimum**, hence `d ≤ 2·α(G)` globally.
//!
//! Every edit returns a [`GroupRemap`] describing how group indices moved,
//! which `synctime_core::online::OnlineSession::reconfigure` consumes to
//! rebase running vector clocks: surviving groups carry their counts to
//! their new positions (their per-group message chains are untouched, so
//! Theorem 4 keeps holding for messages stamped after the edit), fresh
//! groups start at zero everywhere.
//!
//! ```
//! use synctime_graph::{Graph, IncrementalDecomposition};
//!
//! let mut hub = Graph::new(4); // node 3 not wired up yet
//! hub.add_edge(0, 1);
//! hub.add_edge(0, 2);
//! let mut cache = IncrementalDecomposition::new(&hub);
//! assert_eq!(cache.decomposition().len(), 1); // one star at the hub
//! let remap = cache.insert_edge(0, 3).unwrap(); // a client joins
//! assert!(remap.is_identity()); // absorbed by the hub's star: no reclocking
//! cache.decomposition().validate(cache.graph()).unwrap();
//! # Ok::<(), synctime_graph::GraphError>(())
//! ```

use std::collections::BTreeSet;

use crate::{decompose, Edge, EdgeDecomposition, EdgeGroup, Graph, GraphError, NodeId};

/// How group indices moved across one edit (or a composed sequence).
///
/// Index `g` of the pre-edit decomposition maps to `old_to_new[g]` in the
/// post-edit one; `None` means the group was dissolved (its edges were
/// regrouped). New indices without a preimage are freshly created groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRemap {
    /// Per old group: its new index, or `None` if it was dissolved.
    pub old_to_new: Vec<Option<usize>>,
    /// Number of groups after the edit — the new vector dimension.
    pub new_len: usize,
}

impl GroupRemap {
    /// The do-nothing remap on `len` groups.
    pub fn identity(len: usize) -> Self {
        GroupRemap {
            old_to_new: (0..len).map(Some).collect(),
            new_len: len,
        }
    }

    /// Whether this remap moves nothing: clocks need no rebasing.
    pub fn is_identity(&self) -> bool {
        self.old_to_new.len() == self.new_len
            && self
                .old_to_new
                .iter()
                .enumerate()
                .all(|(i, m)| *m == Some(i))
    }

    /// Composes two sequential edits: `self` first, `next` second.
    pub fn then(&self, next: &GroupRemap) -> GroupRemap {
        GroupRemap {
            old_to_new: self
                .old_to_new
                .iter()
                .map(|m| m.and_then(|mid| next.old_to_new.get(mid).copied().flatten()))
                .collect(),
            new_len: next.new_len,
        }
    }
}

/// One topology edit in a reconfiguration: a channel appearing or
/// disappearing. Sequences of these are the unit a control plane ships —
/// deterministic to apply, so every replica that starts from the same
/// decomposition and applies the same ops lands on the same groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Add channel `(u, v)` to the topology.
    Insert(NodeId, NodeId),
    /// Remove channel `(u, v)` from the topology.
    Remove(NodeId, NodeId),
}

/// An epoch-numbered batch of topology edits — the payload of one
/// reconfiguration round. Epoch `e` transforms the topology of epoch
/// `e - 1` into the topology of epoch `e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reconfiguration {
    /// The epoch this batch establishes when applied.
    pub epoch: u64,
    /// The edits, applied in order.
    pub ops: Vec<EdgeOp>,
}

/// A graph and its edge decomposition, kept consistent under edge edits
/// (see the [module docs](self) for the patching strategy and the
/// maintained `d ≤ 2·α` invariant).
#[derive(Debug, Clone)]
pub struct IncrementalDecomposition {
    graph: Graph,
    decomposition: EdgeDecomposition,
    fast_path_hits: u64,
    rebuilds: u64,
}

impl IncrementalDecomposition {
    /// Seeds the cache with the greedy decomposition of `graph` — which
    /// satisfies the per-component `≤ 2·α` invariant (Theorem 6 applies to
    /// each component separately) that every later edit maintains.
    pub fn new(graph: &Graph) -> Self {
        IncrementalDecomposition {
            graph: graph.clone(),
            decomposition: decompose::greedy(graph),
            fast_path_hits: 0,
            rebuilds: 0,
        }
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current decomposition (always valid for [`graph`](Self::graph)).
    pub fn decomposition(&self) -> &EdgeDecomposition {
        &self.decomposition
    }

    /// Edits resolved purely by patching groups, with no greedy re-run.
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_path_hits
    }

    /// Edits that triggered a greedy re-decomposition of one component.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Adds channel `(u, v)` to the topology and patches the decomposition.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`] or
    /// [`GraphError::DuplicateEdge`] if the edge cannot be added.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<GroupRemap, GraphError> {
        let edge = Edge::try_new(u, v)?;
        self.graph.try_add_edge(u, v)?;
        // Fast path: a star at either endpoint absorbs the edge without
        // changing the dimension. `d` is unchanged and α never decreases
        // under edge insertion (delete the edge from any decomposition of
        // the larger graph), so the `≤ 2·α` invariant survives unchecked.
        for (idx, g) in self.decomposition.groups().iter().enumerate() {
            if let EdgeGroup::Star { center, .. } = g {
                if *center == u || *center == v {
                    self.decomposition
                        .extend_star(idx, edge)
                        .expect("star center verified and edge is fresh");
                    self.fast_path_hits += 1;
                    return Ok(GroupRemap::identity(self.decomposition.len()));
                }
            }
        }
        // No absorbing star: append a singleton and certify the component.
        let before = self.decomposition.len();
        self.decomposition
            .push_star(u, edge)
            .expect("edge is fresh and incident to u");
        let grew = GroupRemap {
            old_to_new: (0..before).map(Some).collect(),
            new_len: before + 1,
        };
        let rebuilds_before = self.rebuilds;
        let guarded = grew.then(&self.certify_component(u));
        if self.rebuilds == rebuilds_before {
            self.fast_path_hits += 1;
        }
        Ok(guarded)
    }

    /// Removes channel `(u, v)` from the topology and patches the
    /// decomposition.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] for a degenerate pair, or
    /// [`GraphError::UnknownEdge`] if the channel is not in the topology.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<GroupRemap, GraphError> {
        let edge = Edge::try_new(u, v)?;
        if !self.graph.contains(edge) {
            return Err(GraphError::UnknownEdge(edge));
        }
        let group = self
            .decomposition
            .group_of(edge)
            .expect("cache covers its own graph");
        self.graph.remove_edge(u, v);
        let before = self.decomposition.len();
        let patched = match self.decomposition.groups()[group].clone() {
            // Star-split: a multi-edge star sheds the edge in place.
            EdgeGroup::Star { edges, .. } if edges.len() > 1 => {
                self.decomposition
                    .retract_star_edge(group, edge)
                    .expect("non-singleton star containing the edge");
                GroupRemap::identity(before)
            }
            // A singleton star dissolves; later groups shift down by one.
            EdgeGroup::Star { .. } => GroupRemap {
                old_to_new: self.decomposition.remove_groups(&[group]),
                new_len: before - 1,
            },
            // Triangle-break: the two surviving edges share the vertex
            // opposite the removed edge — a 2-star, same group index.
            EdgeGroup::Triangle { nodes } => {
                let apex = nodes
                    .into_iter()
                    .find(|&n| n != u && n != v)
                    .expect("a triangle has a vertex off the removed edge");
                self.decomposition.replace_group(
                    group,
                    EdgeGroup::star(apex, vec![Edge::new(apex, u), Edge::new(apex, v)]),
                );
                GroupRemap::identity(before)
            }
        };
        // Removal can lower α (by at most one), and can split the
        // component; certify each side separately.
        let rebuilds_before = self.rebuilds;
        let mut remap = patched.then(&self.certify_component(u));
        if !self.same_component(u, v) {
            remap = remap.then(&self.certify_component(v));
        }
        if self.rebuilds == rebuilds_before {
            self.fast_path_hits += 1;
        }
        Ok(remap)
    }

    /// Applies a batch of edge edits in order, composing the per-edit
    /// remaps into one [`GroupRemap`] taking the pre-batch dimension to the
    /// post-batch one. Application is atomic: on error nothing is left
    /// half-applied (the cache is restored to its pre-batch state).
    ///
    /// # Errors
    ///
    /// The first [`GraphError`] any individual edit produces.
    pub fn apply_ops(&mut self, ops: &[EdgeOp]) -> Result<GroupRemap, GraphError> {
        let checkpoint = self.clone();
        let mut remap = GroupRemap::identity(self.decomposition.len());
        for op in ops {
            let step = match *op {
                EdgeOp::Insert(u, v) => self.insert_edge(u, v),
                EdgeOp::Remove(u, v) => self.remove_edge(u, v),
            };
            match step {
                Ok(next) => remap = remap.then(&next),
                Err(e) => {
                    *self = checkpoint;
                    return Err(e);
                }
            }
        }
        Ok(remap)
    }

    /// Re-certifies Theorem 6's ratio for `node`'s connected component: if
    /// the component's group count exceeds twice the matching lower bound
    /// on its optimum, the component is re-decomposed with the greedy
    /// algorithm (which restores `≤ 2·α` there, by Theorem 6); every other
    /// component is untouched.
    fn certify_component(&mut self, node: NodeId) -> GroupRemap {
        let d = self.decomposition.len();
        let comp_edges = self.component_edges(node);
        if comp_edges.is_empty() {
            return GroupRemap::identity(d);
        }
        let comp_groups: BTreeSet<usize> = comp_edges
            .iter()
            .map(|e| {
                self.decomposition
                    .group_of(*e)
                    .expect("cache covers its own graph")
            })
            .collect();
        let sub = self.graph.edge_subgraph(&comp_edges);
        if comp_groups.len() <= 2 * decompose::matching_lower_bound(&sub) {
            return GroupRemap::identity(d);
        }
        self.rebuilds += 1;
        let fresh = decompose::greedy(&sub);
        let doomed: Vec<usize> = comp_groups.into_iter().collect();
        let old_to_new = self.decomposition.remove_groups(&doomed);
        for g in fresh.groups() {
            self.decomposition.push_group(g.clone());
        }
        GroupRemap {
            old_to_new,
            new_len: self.decomposition.len(),
        }
    }

    fn component_mask(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.graph.node_count()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(x) = stack.pop() {
            for y in self.graph.neighbors(x) {
                if !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        seen
    }

    fn component_edges(&self, start: NodeId) -> Vec<Edge> {
        let seen = self.component_mask(start);
        self.graph.edges().filter(|e| seen[e.lo()]).collect()
    }

    fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.component_mask(u)[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn remap_composition_and_identity() {
        let id = GroupRemap::identity(3);
        assert!(id.is_identity());
        let drop1 = GroupRemap {
            old_to_new: vec![Some(0), None, Some(1)],
            new_len: 2,
        };
        assert!(!drop1.is_identity());
        let grow = GroupRemap {
            old_to_new: vec![Some(1), Some(0)],
            new_len: 3,
        };
        let both = drop1.then(&grow);
        assert_eq!(both.old_to_new, vec![Some(1), None, Some(0)]);
        assert_eq!(both.new_len, 3);
        assert_eq!(id.then(&drop1), drop1);
    }

    #[test]
    fn insert_joins_existing_star_without_remap() {
        let mut base = Graph::new(5);
        base.add_edge(0, 1);
        base.add_edge(0, 2);
        let mut cache = IncrementalDecomposition::new(&base);
        assert_eq!(cache.decomposition().len(), 1);
        let remap = cache.insert_edge(0, 3).unwrap();
        assert!(remap.is_identity());
        assert_eq!(cache.decomposition().len(), 1);
        cache.decomposition().validate(cache.graph()).unwrap();
        assert_eq!(cache.fast_path_hits(), 1);
        assert_eq!(cache.rebuilds(), 0);
    }

    #[test]
    fn insert_isolated_edge_grows_dimension() {
        let mut base = Graph::new(4);
        base.add_edge(0, 1);
        let mut cache = IncrementalDecomposition::new(&base);
        let d0 = cache.decomposition().len();
        let remap = cache.insert_edge(2, 3).unwrap();
        assert_eq!(cache.decomposition().len(), d0 + 1);
        assert_eq!(remap.new_len, d0 + 1);
        assert_eq!(remap.old_to_new, (0..d0).map(Some).collect::<Vec<_>>());
        cache.decomposition().validate(cache.graph()).unwrap();
    }

    #[test]
    fn insert_rejects_duplicates_and_self_loops() {
        let mut cache = IncrementalDecomposition::new(&topology::path(3));
        assert!(matches!(
            cache.insert_edge(0, 1),
            Err(GraphError::DuplicateEdge(_))
        ));
        assert!(matches!(
            cache.insert_edge(1, 1),
            Err(GraphError::SelfLoop(1))
        ));
        assert!(matches!(
            cache.insert_edge(0, 9),
            Err(GraphError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn star_split_removal_keeps_group_in_place() {
        // One star at the hub; removing a leaf edge shrinks it in place.
        let g = topology::star(4);
        let mut cache = IncrementalDecomposition::new(&g);
        assert_eq!(cache.decomposition().len(), 1);
        let remap = cache.remove_edge(0, 2).unwrap();
        assert!(remap.is_identity());
        assert_eq!(cache.decomposition().len(), 1);
        assert_eq!(cache.decomposition().group_of(Edge::new(0, 2)), None);
        cache.decomposition().validate(cache.graph()).unwrap();
        assert_eq!(cache.rebuilds(), 0);
    }

    #[test]
    fn singleton_star_removal_compacts_indices() {
        let mut base = Graph::new(4);
        base.add_edge(0, 1);
        let mut cache = IncrementalDecomposition::new(&base);
        cache.insert_edge(2, 3).unwrap(); // disconnected singleton, index 1
        assert_eq!(cache.decomposition().len(), 2);
        let remap = cache.remove_edge(0, 1).unwrap();
        assert_eq!(remap.old_to_new, vec![None, Some(0)]);
        assert_eq!(remap.new_len, 1);
        assert_eq!(
            cache.decomposition().group_of(Edge::new(2, 3)),
            Some(0),
            "surviving group shifted down"
        );
        cache.decomposition().validate(cache.graph()).unwrap();
    }

    #[test]
    fn triangle_break_collapses_to_star_at_apex() {
        let g = topology::triangle();
        let mut cache = IncrementalDecomposition::new(&g);
        assert_eq!(cache.decomposition().len(), 1);
        assert!(!cache.decomposition().groups()[0].is_star());
        // Remove (0, 1): the survivors (0,2) and (1,2) share apex 2.
        let remap = cache.remove_edge(0, 1).unwrap();
        assert!(remap.is_identity(), "triangle-break keeps the group index");
        let g0 = &cache.decomposition().groups()[0];
        assert!(g0.is_star());
        match g0 {
            EdgeGroup::Star { center, edges } => {
                assert_eq!(*center, 2);
                assert_eq!(edges, &vec![Edge::new(0, 2), Edge::new(1, 2)]);
            }
            other => panic!("expected a star, got {other}"),
        }
        cache.decomposition().validate(cache.graph()).unwrap();
        assert_eq!(cache.rebuilds(), 0);
    }

    #[test]
    fn singleton_pileup_triggers_component_rebuild() {
        // Build a path edge-by-edge in an order whose fast paths stack up
        // singleton stars; the certification guard must eventually re-run
        // greedy on the component and restore the ratio bound.
        let n = 12;
        let mut cache = IncrementalDecomposition::new(&Graph::new(n));
        for v in (0..n - 1).rev() {
            cache.insert_edge(v, v + 1).unwrap();
        }
        cache.decomposition().validate(cache.graph()).unwrap();
        let opt = decompose::alpha(cache.graph());
        assert!(
            cache.decomposition().len() <= 2 * opt,
            "d = {} exceeds 2·α = {}",
            cache.decomposition().len(),
            2 * opt
        );
    }

    #[test]
    fn remove_unknown_edge_is_reported() {
        let mut cache = IncrementalDecomposition::new(&topology::path(3));
        assert!(matches!(
            cache.remove_edge(0, 2),
            Err(GraphError::UnknownEdge(_))
        ));
    }

    #[test]
    fn apply_ops_composes_remaps_and_matches_stepwise_application() {
        let g = topology::cycle(6);
        let ops = vec![
            EdgeOp::Remove(0, 1),
            EdgeOp::Insert(0, 3),
            EdgeOp::Remove(4, 5),
            EdgeOp::Insert(1, 4),
        ];
        let mut batched = IncrementalDecomposition::new(&g);
        let mut stepwise = IncrementalDecomposition::new(&g);
        let composed = batched.apply_ops(&ops).unwrap();
        let mut manual = GroupRemap::identity(stepwise.decomposition().len());
        for op in &ops {
            let step = match *op {
                EdgeOp::Insert(u, v) => stepwise.insert_edge(u, v).unwrap(),
                EdgeOp::Remove(u, v) => stepwise.remove_edge(u, v).unwrap(),
            };
            manual = manual.then(&step);
        }
        assert_eq!(composed, manual);
        assert_eq!(batched.decomposition(), stepwise.decomposition());
        batched.decomposition().validate(batched.graph()).unwrap();
        assert!(batched.decomposition().len() <= 2 * decompose::alpha(batched.graph()));
    }

    #[test]
    fn apply_ops_failure_rolls_back_atomically() {
        let g = topology::path(4);
        let mut cache = IncrementalDecomposition::new(&g);
        let before_graph = cache.graph().clone();
        let before_dec = cache.decomposition().clone();
        let err = cache.apply_ops(&[EdgeOp::Insert(0, 3), EdgeOp::Remove(1, 3)]);
        assert!(matches!(err, Err(GraphError::UnknownEdge(_))));
        assert_eq!(cache.graph(), &before_graph);
        assert_eq!(cache.decomposition(), &before_dec);
    }

    #[test]
    fn component_split_certifies_both_sides() {
        // A dumbbell: two stars joined by a bridge. Cutting the bridge
        // splits the component; both halves must stay valid and bounded.
        let mut g = Graph::new(8);
        for leaf in 1..4 {
            g.add_edge(0, leaf);
        }
        for leaf in 5..8 {
            g.add_edge(4, leaf);
        }
        g.add_edge(0, 4);
        let mut cache = IncrementalDecomposition::new(&g);
        cache.remove_edge(0, 4).unwrap();
        cache.decomposition().validate(cache.graph()).unwrap();
        assert!(cache.decomposition().len() <= 2 * decompose::alpha(cache.graph()));
    }
}
