//! Vertex covers of communication topologies.
//!
//! Theorem 5 of the paper bounds the timestamp vector size by
//! `min(β(G), N − 2)`, where `β(G)` is the size of an optimal vertex cover:
//! assigning every edge to one of its covered endpoints partitions the edge
//! set into stars rooted at the cover vertices. Minimum vertex cover is
//! NP-hard, so alongside an exact branch-and-bound solver (practical for the
//! small-to-medium topologies of the evaluation) we provide the classic
//! maximal-matching 2-approximation and a greedy max-degree heuristic.

use std::collections::BTreeSet;

use crate::{Graph, NodeId};

/// Whether `cover` touches every edge of `g`.
///
/// ```
/// use synctime_graph::{cover, topology};
///
/// let g = topology::path(4); // 0-1-2-3
/// assert!(cover::is_vertex_cover(&g, &[1, 2]));
/// assert!(!cover::is_vertex_cover(&g, &[0, 3]));
/// ```
pub fn is_vertex_cover(g: &Graph, cover: &[NodeId]) -> bool {
    let set: BTreeSet<NodeId> = cover.iter().copied().collect();
    g.edges()
        .all(|e| set.contains(&e.lo()) || set.contains(&e.hi()))
}

/// The classic 2-approximation: take both endpoints of a greedily built
/// maximal matching. The result is a vertex cover of size at most `2·β(G)`.
///
/// Edges are scanned in sorted order, so the output is deterministic.
pub fn two_approx(g: &Graph) -> Vec<NodeId> {
    let mut covered = vec![false; g.node_count()];
    let mut cover = Vec::new();
    for e in g.edges() {
        let (u, v) = e.endpoints();
        if !covered[u] && !covered[v] {
            covered[u] = true;
            covered[v] = true;
            cover.push(u);
            cover.push(v);
        }
    }
    cover
}

/// Greedy max-degree heuristic: repeatedly add the highest-degree vertex of
/// the residual graph. No constant-factor guarantee (Θ(log n) in the worst
/// case) but typically smaller covers than [`two_approx`] in practice.
pub fn greedy_max_degree(g: &Graph) -> Vec<NodeId> {
    let mut residual = g.clone();
    let mut cover = Vec::new();
    while !residual.is_empty() {
        let v = residual
            .nodes()
            .max_by_key(|&v| residual.degree(v))
            .expect("non-empty graph has nodes");
        cover.push(v);
        let incident: Vec<_> = residual.incident_edges(v).collect();
        for e in incident {
            residual.remove_edge(e.lo(), e.hi());
        }
    }
    cover.sort_unstable();
    cover
}

/// A proper 2-coloring of the graph, if one exists (i.e. the graph is
/// bipartite): `Some(side)` with `side[v] ∈ {0, 1}` per non-isolated
/// vertex, or `None` when an odd cycle exists. Isolated vertices get side
/// 0.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut side = vec![u8::MAX; g.node_count()];
    for root in g.nodes() {
        if side[root] != u8::MAX {
            continue;
        }
        side[root] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for u in g.neighbors(v) {
                if side[u] == u8::MAX {
                    side[u] = 1 - side[v];
                    queue.push_back(u);
                } else if side[u] == side[v] {
                    return None;
                }
            }
        }
    }
    for s in &mut side {
        if *s == u8::MAX {
            *s = 0;
        }
    }
    Some(side)
}

/// Exact minimum vertex cover for **bipartite** graphs, in polynomial time
/// via König's theorem (maximum matching + alternating reachability).
/// Returns `None` when the graph is not bipartite.
///
/// This makes client–server topologies — complete bipartite graphs —
/// exactly coverable at any scale, where the branch-and-bound of
/// [`exact_min`] would be too slow.
pub fn bipartite_exact(g: &Graph) -> Option<Vec<NodeId>> {
    use synctime_poset::matching::{hopcroft_karp, koenig_cover, Bipartite};
    let side = bipartition(g)?;
    // Map left-side (0) and right-side (1) vertices to dense indices.
    let lefts: Vec<NodeId> = g.nodes().filter(|&v| side[v] == 0).collect();
    let rights: Vec<NodeId> = g.nodes().filter(|&v| side[v] == 1).collect();
    let mut left_index = vec![usize::MAX; g.node_count()];
    let mut right_index = vec![usize::MAX; g.node_count()];
    for (i, &v) in lefts.iter().enumerate() {
        left_index[v] = i;
    }
    for (i, &v) in rights.iter().enumerate() {
        right_index[v] = i;
    }
    let mut b = Bipartite::new(lefts.len(), rights.len());
    for e in g.edges() {
        let (u, v) = e.endpoints();
        let (l, r) = if side[u] == 0 { (u, v) } else { (v, u) };
        b.add_edge(left_index[l], right_index[r]);
    }
    let m = hopcroft_karp(&b);
    let (lc, rc) = koenig_cover(&b, &m);
    let mut cover: Vec<NodeId> = lc.into_iter().map(|i| lefts[i]).collect();
    cover.extend(rc.into_iter().map(|i| rights[i]));
    cover.sort_unstable();
    debug_assert!(is_vertex_cover(g, &cover));
    Some(cover)
}

/// Exact minimum vertex cover by branch and bound.
///
/// Branches on an endpoint of a max-degree edge (either `u` is in the cover,
/// or all of `u`'s neighbors are), pruning with the greedy matching lower
/// bound. Exponential in the worst case; intended for the topology sizes
/// used in the paper's examples and our experiment sweeps (tens of nodes,
/// moderate density).
///
/// The returned cover is sorted.
pub fn exact_min(g: &Graph) -> Vec<NodeId> {
    // Polynomial shortcut for bipartite graphs (König).
    if let Some(cover) = bipartite_exact(g) {
        return cover;
    }
    let mut best = two_approx(g);
    best.sort_unstable();
    let mut residual = g.clone();
    let mut current = Vec::new();
    branch(&mut residual, &mut current, &mut best);
    best.sort_unstable();
    best
}

/// Size of the optimal vertex cover, `β(G)`.
pub fn beta(g: &Graph) -> usize {
    exact_min(g).len()
}

fn matching_lower_bound(g: &Graph) -> usize {
    // A maximal matching of size k forces at least k cover vertices.
    let mut covered = vec![false; g.node_count()];
    let mut size = 0;
    for e in g.edges() {
        let (u, v) = e.endpoints();
        if !covered[u] && !covered[v] {
            covered[u] = true;
            covered[v] = true;
            size += 1;
        }
    }
    size
}

fn branch(residual: &mut Graph, current: &mut Vec<NodeId>, best: &mut Vec<NodeId>) {
    if residual.is_empty() {
        if current.len() < best.len() {
            *best = current.clone();
        }
        return;
    }
    if current.len() + matching_lower_bound(residual) >= best.len() {
        return;
    }
    // Simplification: a degree-1 edge is always optimally covered by the
    // non-leaf endpoint.
    let pendant = residual.nodes().find(|&v| residual.degree(v) == 1);
    if let Some(leaf) = pendant {
        let hub = residual
            .neighbors(leaf)
            .next()
            .expect("degree-1 node has a neighbor");
        let removed = take_vertex(residual, hub);
        current.push(hub);
        branch(residual, current, best);
        current.pop();
        put_back(residual, &removed);
        return;
    }
    let v = residual
        .nodes()
        .max_by_key(|&v| residual.degree(v))
        .expect("non-empty residual graph");

    // Branch 1: v in the cover.
    let removed = take_vertex(residual, v);
    current.push(v);
    branch(residual, current, best);
    current.pop();
    put_back(residual, &removed);

    // Branch 2: v not in the cover, so all its neighbors are.
    let neighbors: Vec<NodeId> = residual.neighbors(v).collect();
    let mut removed_all = Vec::new();
    for &u in &neighbors {
        removed_all.extend(take_vertex(residual, u));
        current.push(u);
    }
    branch(residual, current, best);
    for _ in &neighbors {
        current.pop();
    }
    put_back(residual, &removed_all);
}

fn take_vertex(g: &mut Graph, v: NodeId) -> Vec<(NodeId, NodeId)> {
    let incident: Vec<(NodeId, NodeId)> = g.incident_edges(v).map(|e| e.endpoints()).collect();
    for &(a, b) in &incident {
        g.remove_edge(a, b);
    }
    incident
}

fn put_back(g: &mut Graph, edges: &[(NodeId, NodeId)]) {
    for &(a, b) in edges {
        g.add_edge(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_cover_is_center() {
        let g = topology::star(7);
        assert_eq!(exact_min(&g), vec![0]);
        assert_eq!(beta(&g), 1);
    }

    #[test]
    fn triangle_needs_two() {
        assert_eq!(beta(&topology::triangle()), 2);
    }

    #[test]
    fn path_cover() {
        // P4 (0-1-2-3) has β = 2.
        assert_eq!(beta(&topology::path(4)), 2);
        // P5 has β = 2 ({1, 3}).
        assert_eq!(beta(&topology::path(5)), 2);
    }

    #[test]
    fn complete_graph_cover() {
        // K_n needs n - 1 vertices.
        for n in 2..7 {
            assert_eq!(beta(&topology::complete(n)), n - 1, "K_{n}");
        }
    }

    #[test]
    fn cycle_cover() {
        // C_n needs ceil(n/2).
        for n in 3..9 {
            assert_eq!(beta(&topology::cycle(n)), n.div_ceil(2), "C_{n}");
        }
    }

    #[test]
    fn client_server_cover_is_servers() {
        // Complete bipartite K_{s,c} with s <= c has β = s (König).
        let g = topology::client_server(3, 9);
        assert_eq!(beta(&g), 3);
    }

    #[test]
    fn disjoint_triangles_cover() {
        // Each triangle needs 2 cover vertices.
        assert_eq!(beta(&topology::disjoint_triangles(4)), 8);
    }

    #[test]
    fn empty_graph_cover_is_empty() {
        let g = Graph::new(5);
        assert!(exact_min(&g).is_empty());
        assert!(is_vertex_cover(&g, &[]));
    }

    #[test]
    fn bipartition_detects_odd_cycles() {
        assert!(bipartition(&topology::cycle(6)).is_some());
        assert!(bipartition(&topology::cycle(5)).is_none());
        assert!(bipartition(&topology::triangle()).is_none());
        let side = bipartition(&topology::client_server(2, 3)).unwrap();
        assert!(side[0] == side[1] && side[2] == side[3] && side[0] != side[2]);
        // Edgeless graphs are trivially bipartite.
        assert_eq!(bipartition(&Graph::new(3)), Some(vec![0, 0, 0]));
    }

    #[test]
    fn bipartite_exact_matches_branch_and_bound() {
        let mut rng = StdRng::seed_from_u64(12);
        for n in 4..9 {
            // Random bipartite graph: random tree (always bipartite) plus
            // same-parity-respecting extra edges would be complex; a grid
            // and K_{a,b} cover the shapes.
            let g = topology::grid(2, n);
            let koenig = bipartite_exact(&g).expect("grids are bipartite");
            assert!(is_vertex_cover(&g, &koenig));
            assert_eq!(koenig.len(), brute_force_min(&g), "grid 2x{n}");
            let _ = &mut rng;
        }
        for (s, c) in [(2, 5), (3, 4), (4, 4)] {
            let g = topology::client_server(s, c);
            let koenig = bipartite_exact(&g).expect("bipartite");
            assert_eq!(koenig.len(), s.min(c), "K_{{{s},{c}}}");
        }
    }

    #[test]
    fn bipartite_exact_rejects_odd_cycles() {
        assert!(bipartite_exact(&topology::triangle()).is_none());
        assert!(bipartite_exact(&topology::complete(5)).is_none());
    }

    #[test]
    fn bipartite_exact_scales_beyond_branch_and_bound() {
        // 60 servers x 300 clients: instant via König.
        let g = topology::client_server(60, 300);
        let cover = bipartite_exact(&g).expect("bipartite");
        assert_eq!(cover.len(), 60);
        assert!(is_vertex_cover(&g, &cover));
    }

    #[test]
    fn two_approx_is_cover_within_factor_two() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in 4..16 {
            let g = topology::random_connected(n, n / 2, &mut rng);
            let apx = two_approx(&g);
            assert!(is_vertex_cover(&g, &apx));
            assert!(apx.len() <= 2 * beta(&g));
        }
    }

    #[test]
    fn greedy_is_cover() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in 4..16 {
            let g = topology::gnp(n, 0.4, &mut rng);
            let c = greedy_max_degree(&g);
            assert!(is_vertex_cover(&g, &c));
        }
    }

    #[test]
    fn exact_is_minimal_cover() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in 3..10 {
            let g = topology::gnp(n, 0.5, &mut rng);
            let c = exact_min(&g);
            assert!(is_vertex_cover(&g, &c), "n={n}");
            // No strictly smaller cover exists: check by brute force.
            let brute = brute_force_min(&g);
            assert_eq!(c.len(), brute, "n={n}");
        }
    }

    fn brute_force_min(g: &Graph) -> usize {
        let n = g.node_count();
        (0usize..1 << n)
            .filter(|mask| {
                let cover: Vec<NodeId> = (0..n).filter(|v| mask & (1 << v) != 0).collect();
                is_vertex_cover(g, &cover)
            })
            .map(|mask: usize| mask.count_ones() as usize)
            .min()
            .expect("full vertex set is always a cover")
    }
}
