//! Crate-level property tests: structural invariants of graphs, covers,
//! and decompositions under randomized inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime_graph::{cover, decompose, topology, Edge, EdgeGroup, Graph};

prop_compose! {
    fn arb_graph()(n in 2usize..14, p in 0.0f64..1.0, seed in 0u64..10_000) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        topology::gnp(n, p, &mut rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_normalization_is_involutive(a in 0usize..100, b in 0usize..100) {
        prop_assume!(a != b);
        let e1 = Edge::new(a, b);
        let e2 = Edge::new(b, a);
        prop_assert_eq!(e1, e2);
        prop_assert!(e1.lo() < e1.hi());
        prop_assert_eq!(e1.other(a), b);
        prop_assert_eq!(e1.other(b), a);
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for v in g.nodes() {
            for u in g.neighbors(v) {
                prop_assert!(g.neighbors(u).any(|w| w == v));
                prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
            }
        }
        // Handshake lemma.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn remove_then_add_is_identity(g in arb_graph()) {
        let mut h = g.clone();
        let edges: Vec<Edge> = g.edges().collect();
        for e in &edges {
            prop_assert!(h.remove_edge(e.lo(), e.hi()));
        }
        prop_assert!(h.is_empty());
        for e in &edges {
            h.add_edge(e.lo(), e.hi());
        }
        prop_assert_eq!(h, g);
    }

    #[test]
    fn every_group_of_every_construction_is_star_or_triangle(g in arb_graph()) {
        for dec in [decompose::greedy(&g), decompose::trivial(&g), decompose::best_known(&g)] {
            prop_assert!(dec.validate(&g).is_ok());
            for group in dec.groups() {
                match group {
                    EdgeGroup::Star { center, edges } => {
                        prop_assert!(!edges.is_empty());
                        prop_assert!(edges.iter().all(|e| e.is_incident_to(*center)));
                        // The group's edges, viewed as a graph, pass is_star.
                        prop_assert!(g.edge_subgraph(&group.edges()).is_star());
                    }
                    EdgeGroup::Triangle { .. } => {
                        prop_assert!(g.edge_subgraph(&group.edges()).is_triangle());
                    }
                }
            }
            // Sizes add up to the edge count (partition).
            let total: usize = dec.groups().iter().map(EdgeGroup::len).sum();
            prop_assert_eq!(total, g.edge_count());
        }
    }

    #[test]
    fn covers_cover(g in arb_graph()) {
        for c in [cover::two_approx(&g), cover::greedy_max_degree(&g)] {
            prop_assert!(cover::is_vertex_cover(&g, &c));
        }
        if g.node_count() <= 12 {
            let exact = cover::exact_min(&g);
            prop_assert!(cover::is_vertex_cover(&g, &exact));
            prop_assert!(exact.len() <= cover::two_approx(&g).len());
            prop_assert!(exact.len() <= cover::greedy_max_degree(&g).len());
        }
    }

    #[test]
    fn bipartite_exact_agrees_with_branch_and_bound(n in 2usize..10, extra in 0usize..4, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::random_tree(n, &mut rng); // trees are bipartite
        let koenig = cover::bipartite_exact(&g).expect("trees are bipartite");
        prop_assert_eq!(koenig.len(), {
            // Compare against B&B on the same graph via matching bound.
            let bnb = cover::exact_min(&g);
            bnb.len()
        });
        let _ = extra;
    }

    #[test]
    fn matching_bound_sandwiches_alpha(g in arb_graph()) {
        prop_assume!(!g.is_empty() && g.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT);
        let lb = decompose::matching_lower_bound(&g);
        let alpha = decompose::alpha(&g);
        let greedy = decompose::greedy(&g).len();
        prop_assert!(lb <= alpha);
        prop_assert!(alpha <= greedy);
        prop_assert!(greedy <= 2 * alpha);
    }

    #[test]
    fn star_and_triangle_graphs_decompose_to_one_group(leaves in 1usize..20) {
        let s = topology::star(leaves);
        prop_assert_eq!(decompose::best_known(&s).len(), 1);
        let t = topology::triangle();
        prop_assert_eq!(decompose::best_known(&t).len(), 1);
    }
}
