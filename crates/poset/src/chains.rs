//! Dilworth machinery: minimum chain covers, width, maximum antichains.
//!
//! Theorem 8 of the paper feeds on exactly this: the message poset of a
//! synchronous computation on `N` processes has width at most `⌊N/2⌋`, and a
//! chain cover of `width` chains yields a realizer (and hence timestamps) of
//! that many components.

use crate::matching::{hopcroft_karp, koenig_cover, Bipartite};
use crate::Poset;

fn comparability_bipartite(p: &Poset) -> Bipartite {
    let n = p.len();
    let mut g = Bipartite::new(n, n);
    for a in 0..n {
        for b in p.above(a) {
            g.add_edge(a, b);
        }
    }
    g
}

/// A minimum chain cover of the poset: a partition of the elements into the
/// fewest totally ordered sequences (each returned chain is sorted in
/// increasing poset order). By Dilworth's theorem the number of chains
/// equals the width.
///
/// ```
/// use synctime_poset::{chains, Poset};
///
/// let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)])?;
/// let cover = chains::min_chain_cover(&p);
/// assert_eq!(cover.len(), 2);
/// # Ok::<(), synctime_poset::PosetError>(())
/// ```
pub fn min_chain_cover(p: &Poset) -> Vec<Vec<usize>> {
    let g = comparability_bipartite(p);
    let m = hopcroft_karp(&g);
    // Matched pair (a, b) links a to its chain successor b. Chain heads are
    // elements that are nobody's successor.
    let n = p.len();
    let mut chains = Vec::new();
    for head in 0..n {
        if m.pair_right[head].is_some() {
            continue;
        }
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(next) = m.pair_left[cur] {
            chain.push(next);
            cur = next;
        }
        chains.push(chain);
    }
    debug_assert_eq!(chains.iter().map(Vec::len).sum::<usize>(), n);
    chains
}

/// The width of the poset: the size of its largest antichain, equal to the
/// size of its minimum chain cover.
pub fn width(p: &Poset) -> usize {
    if p.is_empty() {
        return 0;
    }
    let g = comparability_bipartite(p);
    let m = hopcroft_karp(&g);
    p.len() - m.len()
}

/// A maximum antichain, extracted from a König vertex cover of the
/// comparability bipartite graph: the elements covered on neither side form
/// an antichain of size `n − matching = width`.
pub fn maximum_antichain(p: &Poset) -> Vec<usize> {
    let g = comparability_bipartite(p);
    let m = hopcroft_karp(&g);
    let (left_cover, right_cover) = koenig_cover(&g, &m);
    let mut in_cover = vec![false; p.len()];
    for &l in &left_cover {
        in_cover[l] = true;
    }
    for &r in &right_cover {
        in_cover[r] = true;
    }
    let antichain: Vec<usize> = (0..p.len()).filter(|&v| !in_cover[v]).collect();
    debug_assert_eq!(antichain.len(), p.len() - m.len());
    debug_assert!(is_antichain(p, &antichain));
    antichain
}

/// Whether the given elements are pairwise incomparable.
pub fn is_antichain(p: &Poset, elements: &[usize]) -> bool {
    elements
        .iter()
        .enumerate()
        .all(|(i, &a)| elements[i + 1..].iter().all(|&b| p.concurrent(a, b)))
}

/// Whether the given elements form a chain (pairwise comparable).
pub fn is_chain(p: &Poset, elements: &[usize]) -> bool {
    elements
        .iter()
        .enumerate()
        .all(|(i, &a)| elements[i + 1..].iter().all(|&b| p.comparable(a, b)))
}

/// The length of the longest chain (the poset's *height*).
pub fn height(p: &Poset) -> usize {
    let n = p.len();
    if n == 0 {
        return 0;
    }
    let ext = p.linear_extension();
    let mut best = vec![1usize; n];
    let mut max = 1;
    for &v in &ext {
        for w in p.above(v) {
            if best[v] + 1 > best[w] {
                best[w] = best[v] + 1;
                max = max.max(best[w]);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Poset {
        // 0 < {1, 2} < 3.
        Poset::from_cover_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn diamond_width_two() {
        let p = diamond();
        assert_eq!(width(&p), 2);
        let cover = min_chain_cover(&p);
        assert_eq!(cover.len(), 2);
        for chain in &cover {
            assert!(is_chain(&p, chain));
            // Chains are in increasing order.
            for w in chain.windows(2) {
                assert!(p.lt(w[0], w[1]));
            }
        }
        let ac = maximum_antichain(&p);
        assert_eq!(ac.len(), 2);
        assert!(is_antichain(&p, &ac));
    }

    #[test]
    fn chain_poset_width_one() {
        let p = Poset::from_cover_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(width(&p), 1);
        assert_eq!(min_chain_cover(&p), vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(height(&p), 5);
    }

    #[test]
    fn antichain_poset_width_n() {
        let p = Poset::antichain(6);
        assert_eq!(width(&p), 6);
        assert_eq!(min_chain_cover(&p).len(), 6);
        assert_eq!(maximum_antichain(&p).len(), 6);
        assert_eq!(height(&p), 1);
    }

    #[test]
    fn empty_poset_degenerate() {
        let p = Poset::antichain(0);
        assert_eq!(width(&p), 0);
        assert!(min_chain_cover(&p).is_empty());
        assert_eq!(height(&p), 0);
    }

    #[test]
    fn standard_example_sn() {
        // The "standard example" S_3: minimal a_i, maximal b_j, a_i < b_j
        // iff i != j. Width 3.
        let mut pairs = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    pairs.push((i, 3 + j));
                }
            }
        }
        let p = Poset::from_cover_edges(6, &pairs).unwrap();
        assert_eq!(width(&p), 3);
        assert_eq!(min_chain_cover(&p).len(), 3);
        assert_eq!(height(&p), 2);
    }

    #[test]
    fn chain_cover_partitions_elements() {
        let p = diamond();
        let cover = min_chain_cover(&p);
        let mut seen = vec![false; p.len()];
        for chain in &cover {
            for &v in chain {
                assert!(!seen[v], "element {v} appears twice");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
