//! Finite posets, Dilworth chain covers, and chain realizers.
//!
//! This crate is the order-theoretic substrate of the `synctime` project.
//! The paper's **offline algorithm** (Section 4, Figure 9) timestamps the
//! message poset `(M, ↦)` of a synchronous computation with vectors of size
//! equal to its *width*: by Theorem 8 the width is at most `⌊N/2⌋` (every
//! message occupies two of the `N` processes), and by Dilworth's theorem the
//! *dimension* of a poset never exceeds its width, so a realizer of
//! `width` linear extensions exists. Timestamping message `m` with
//! `V_m[i] = |{x : x <_{L_i} m}|` then encodes the order exactly.
//!
//! Provided machinery:
//!
//! * [`Poset`] — a finite strict partial order over elements `0..n`, stored
//!   as transitively closed successor bitsets,
//! * [`matching`] — Hopcroft–Karp maximum bipartite matching,
//! * [`chains`] — minimum chain covers and maximum antichains via
//!   Dilworth/König,
//! * [`realizer`] — construction of a chain realizer of `width(P)` linear
//!   extensions and verification that a family of extensions realizes `P`,
//! * [`dimension`] — exact Dushnik–Miller dimension for small posets, the
//!   standard examples `S_n`, and Charron-Bost's asynchronous lower-bound
//!   poset.
//!
//! # Example
//!
//! ```
//! use synctime_poset::{Poset, chains, realizer};
//!
//! // The "N" poset: 0 < 2, 1 < 2, 1 < 3.
//! let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)])?;
//! assert_eq!(chains::width(&p), 2);
//! let r = realizer::chain_realizer(&p);
//! assert_eq!(r.len(), 2);
//! assert!(realizer::verify(&p, &r));
//! # Ok::<(), synctime_poset::PosetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod error;
mod poset;
mod sparse;

pub mod chains;
pub mod dimension;
pub mod matching;
pub mod realizer;

pub(crate) use bitset::BitSet;
pub use error::PosetError;
pub use poset::Poset;
pub use sparse::SparsePoset;
