//! Exact poset dimension for small posets, and the classical witnesses
//! that frame the paper's contribution.
//!
//! * The paper's offline algorithm uses `width(P)` linear extensions;
//!   dimension theory says `dim(P) ≤ width(P)` (Dilworth) but the gap can
//!   be real — [`dimension`] computes the exact value by exhaustive
//!   realizer search so the gap can be measured (the `table_dimension_gap`
//!   experiment).
//! * [`standard_example`] builds `S_n`, the canonical dimension-`n` poset;
//!   Charron-Bost's lower bound — *asynchronous* computations on `N`
//!   processes can require `N`-component vector clocks — rests on
//!   embedding `S_N` into an (asynchronous) computation's event poset,
//!   built here by [`charron_bost_events`]. Synchronous computations can
//!   never contain `S_k` with `k > ⌊N/2⌋` (their width is bounded,
//!   Theorem 8), which is exactly the room the paper exploits.

use crate::realizer::verify;
use crate::Poset;

/// Enumerates every linear extension of `p`.
///
/// # Panics
///
/// Panics if `p` has more than [`ENUMERATION_LIMIT`] elements — the count
/// is factorial in the worst case.
pub fn all_linear_extensions(p: &Poset) -> Vec<Vec<usize>> {
    assert!(
        p.len() <= ENUMERATION_LIMIT,
        "extension enumeration supports at most {ENUMERATION_LIMIT} elements"
    );
    let mut out = Vec::new();
    let mut prefix = Vec::with_capacity(p.len());
    let mut placed = vec![false; p.len()];
    let mut remaining_below: Vec<usize> = (0..p.len()).map(|v| p.downset_len(v)).collect();
    extend(p, &mut prefix, &mut placed, &mut remaining_below, &mut out);
    out
}

/// Maximum poset size accepted by [`all_linear_extensions`] / [`dimension`].
pub const ENUMERATION_LIMIT: usize = 9;

fn extend(
    p: &Poset,
    prefix: &mut Vec<usize>,
    placed: &mut [bool],
    remaining_below: &mut [usize],
    out: &mut Vec<Vec<usize>>,
) {
    if prefix.len() == p.len() {
        out.push(prefix.clone());
        return;
    }
    for v in 0..p.len() {
        if placed[v] || remaining_below[v] != 0 {
            continue;
        }
        placed[v] = true;
        prefix.push(v);
        for w in p.above(v) {
            remaining_below[w] -= 1;
        }
        extend(p, prefix, placed, remaining_below, out);
        for w in p.above(v) {
            remaining_below[w] += 1;
        }
        prefix.pop();
        placed[v] = false;
    }
}

/// The exact dimension of a small poset: the least `t` such that some `t`
/// linear extensions intersect to exactly `P`. Exhaustive over extension
/// subsets with early pruning; exponential, intended for poset sizes used
/// in the dimension-gap experiment.
///
/// Degenerate cases follow Dushnik–Miller: the empty poset and singletons
/// have dimension 1 (we report 0 for the empty poset's empty realizer).
///
/// # Panics
///
/// Panics if `p` has more than [`ENUMERATION_LIMIT`] elements.
pub fn dimension(p: &Poset) -> usize {
    if p.is_empty() {
        return 0;
    }
    if p.len() == 1 {
        return 1;
    }
    let extensions = all_linear_extensions(p);
    // A chain has exactly one extension.
    if extensions.len() == 1 {
        return 1;
    }
    // The incomparable pairs each extension "reverses" (orders b before a
    // for the canonical orientation a < b by index).
    let pairs: Vec<(usize, usize)> = (0..p.len())
        .flat_map(|a| ((a + 1)..p.len()).map(move |b| (a, b)))
        .filter(|&(a, b)| p.concurrent(a, b))
        .collect();
    // For each extension, the bitmask over `pairs` of orientations.
    assert!(pairs.len() <= 128, "too many incomparable pairs");
    let mut tagged: Vec<(u128, usize)> = extensions
        .iter()
        .enumerate()
        .map(|(idx, ext)| {
            let mut pos = vec![0usize; p.len()];
            for (i, &v) in ext.iter().enumerate() {
                pos[v] = i;
            }
            let mut mask = 0u128;
            for (k, &(a, b)) in pairs.iter().enumerate() {
                if pos[a] < pos[b] {
                    mask |= 1 << k;
                }
            }
            (mask, idx)
        })
        .collect();
    // Distinct extensions often induce identical orientations; only the
    // orientation matters for realizability, so dedupe (keeping one
    // representative extension per orientation). Trying high-coverage
    // orientations first makes the subset search terminate quickly.
    tagged.sort_unstable_by_key(|(m, _)| *m);
    tagged.dedup_by_key(|(m, _)| *m);
    tagged.sort_unstable_by_key(|(m, _)| std::cmp::Reverse(m.count_ones().max((!m).count_ones())));
    let masks: Vec<u128> = tagged.iter().map(|(m, _)| *m).collect();
    let reps: Vec<usize> = tagged.iter().map(|(_, i)| *i).collect();
    // A set of extensions realizes P iff over every incomparable pair both
    // orientations occur: the OR of masks is all-ones and the OR of
    // complements is all-ones.
    let full: u128 = if pairs.is_empty() {
        0
    } else {
        (1u128 << pairs.len()) - 1
    };
    for t in 1..=masks.len() {
        if search_subset(&masks, full, t, 0, 0, 0) {
            debug_assert!(verify_some_subset(p, &extensions, &reps, &masks, full, t));
            return t;
        }
    }
    unreachable!("the set of all extensions always realizes the poset")
}

fn search_subset(
    masks: &[u128],
    full: u128,
    t: usize,
    start: usize,
    or_a: u128,
    or_b: u128,
) -> bool {
    if or_a == full && or_b == full {
        return true;
    }
    if t == 0 || start >= masks.len() {
        return false;
    }
    // Prune: even taking everything remaining cannot fix missing bits.
    let mut rest_a = or_a;
    let mut rest_b = or_b;
    for &m in &masks[start..] {
        rest_a |= m;
        rest_b |= !m & full;
    }
    if rest_a != full || rest_b != full {
        return false;
    }
    for i in start..masks.len() {
        if search_subset(
            masks,
            full,
            t - 1,
            i + 1,
            or_a | masks[i],
            or_b | (!masks[i] & full),
        ) {
            return true;
        }
    }
    false
}

fn verify_some_subset(
    p: &Poset,
    extensions: &[Vec<usize>],
    reps: &[usize],
    masks: &[u128],
    full: u128,
    t: usize,
) -> bool {
    // Re-find one witness subset and verify it with the realizer checker.
    fn rec(
        idx: usize,
        left: usize,
        or_a: u128,
        or_b: u128,
        masks: &[u128],
        full: u128,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if or_a == full && or_b == full {
            return true;
        }
        if left == 0 || idx >= masks.len() {
            return false;
        }
        for i in idx..masks.len() {
            chosen.push(i);
            if rec(
                i + 1,
                left - 1,
                or_a | masks[i],
                or_b | (!masks[i] & full),
                masks,
                full,
                chosen,
            ) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    let mut chosen = Vec::new();
    if !rec(0, t, 0, 0, masks, full, &mut chosen) {
        return false;
    }
    let family: Vec<Vec<usize>> = chosen
        .iter()
        .map(|&i| extensions[reps[i]].clone())
        .collect();
    verify(p, &family)
}

/// The standard example `S_n`: minimal elements `a_0..a_{n-1}` (indices
/// `0..n`), maximal elements `b_0..b_{n-1}` (indices `n..2n`), with
/// `a_i < b_j` iff `i ≠ j`. Its dimension is exactly `n` (Dushnik–Miller).
///
/// # Panics
///
/// Panics if `n < 2` (the construction needs at least two pairs).
pub fn standard_example(n: usize) -> Poset {
    assert!(n >= 2, "the standard example needs n >= 2");
    let mut pairs = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                pairs.push((i, n + j));
            }
        }
    }
    Poset::from_cover_edges(2 * n, &pairs).expect("S_n is acyclic")
}

/// The reduced event poset of Charron-Bost's asynchronous lower-bound
/// computation on `n` processes. In that computation every process
/// broadcasts and then receives from everyone, with deliveries delayed so
/// that, writing `a_i` for `P_i`'s broadcast event (index `i`) and `b_i`
/// for the event on `P_{(i+1) mod n}` right after it has received from
/// *everyone except* `P_i` (index `n + i`, intermediate events elided):
///
/// * `a_j < b_i` for every `j ≠ i` (a message from `P_j` has arrived), but
/// * `a_i ‖ b_i` (`P_i`'s message is still in flight, and `b_i` lives on a
///   different process, so process order doesn't relate them either).
///
/// That is exactly the crown [`standard_example`]`(n)` up to relabeling,
/// whose dimension is `n` — so any order-encoding vector assignment for
/// this *asynchronous* computation needs `n` components. No synchronous
/// computation can contain this shape beyond `n = ⌊N/2⌋`: rendezvous makes
/// each message an atomic synchronization, capping the width (Theorem 8) —
/// the slack the paper's algorithms exploit.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn charron_bost_events(n: usize) -> Poset {
    assert!(n >= 2, "the construction needs n >= 2");
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                // a_j (the broadcast of P_j) has reached the process
                // hosting b_i; P_i's own message is still undelivered.
                pairs.push((j, n + i));
            }
        }
    }
    Poset::from_cover_edges(2 * n, &pairs).expect("acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains;

    #[test]
    fn chains_and_antichains() {
        let chain = Poset::from_cover_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(dimension(&chain), 1);
        let anti = Poset::antichain(4);
        assert_eq!(
            dimension(&anti),
            2,
            "antichains have dimension 2 for n >= 2"
        );
        assert_eq!(dimension(&Poset::antichain(1)), 1);
        assert_eq!(dimension(&Poset::antichain(0)), 0);
    }

    #[test]
    fn diamond_dimension_two() {
        let p = Poset::from_cover_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(dimension(&p), 2);
        assert_eq!(chains::width(&p), 2);
    }

    #[test]
    fn standard_examples_hit_their_dimension() {
        for n in 2..=3 {
            let s = standard_example(n);
            assert_eq!(dimension(&s), n, "dim(S_{n})");
            assert_eq!(chains::width(&s), n);
        }
    }

    #[test]
    #[ignore = "exhaustive t<4 refutation takes ~30s in debug builds"]
    fn standard_example_four_is_four_dimensional() {
        assert_eq!(dimension(&standard_example(4)), 4);
    }

    #[test]
    fn dimension_never_exceeds_width() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..30 {
            let n = rng.gen_range(2..8);
            let mut pairs = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.3) {
                        pairs.push((a, b));
                    }
                }
            }
            let p = Poset::from_cover_edges(n, &pairs).unwrap();
            let d = dimension(&p);
            let w = chains::width(&p);
            assert!(d <= w.max(1), "dim {d} > width {w}");
        }
    }

    #[test]
    fn charron_bost_needs_n_dimensions() {
        for n in 2..=3 {
            let p = charron_bost_events(n);
            assert_eq!(dimension(&p), n, "Charron-Bost on {n} processes");
            // And its width is n — far above the floor(n/2) cap of
            // synchronous computations on n processes.
            assert_eq!(chains::width(&p), n);
        }
    }

    #[test]
    fn extension_enumeration_counts() {
        // Antichain(3): 3! extensions; chain: exactly one.
        assert_eq!(all_linear_extensions(&Poset::antichain(3)).len(), 6);
        let chain = Poset::from_cover_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(all_linear_extensions(&chain), vec![vec![0, 1, 2]]);
        // The "V": 0 < 1, 0 < 2 has two extensions.
        let v = Poset::from_cover_edges(3, &[(0, 1), (0, 2)]).unwrap();
        assert_eq!(all_linear_extensions(&v).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn enumeration_limit_enforced() {
        all_linear_extensions(&Poset::antichain(ENUMERATION_LIMIT + 1));
    }
}
