use std::fmt;

/// Errors produced while constructing posets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PosetError {
    /// An element index was at least the poset's size.
    ElementOutOfRange {
        /// The offending element.
        element: usize,
        /// Number of elements in the poset.
        len: usize,
    },
    /// The supplied relation contains a cycle (possibly a self-pair), so it
    /// is not a strict partial order.
    CycleDetected {
        /// An element on a cycle.
        element: usize,
    },
    /// A supplied chain family is not a partition of the elements into
    /// chains: an element is missing, repeated, or two consecutive listed
    /// elements of one chain are not ordered by the relation.
    InvalidChain {
        /// Index of the offending chain in the supplied family.
        chain: usize,
        /// The element at which the violation was detected.
        element: usize,
    },
}

impl fmt::Display for PosetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosetError::ElementOutOfRange { element, len } => {
                write!(f, "element {element} out of range for poset of size {len}")
            }
            PosetError::CycleDetected { element } => {
                write!(f, "relation has a cycle through element {element}")
            }
            PosetError::InvalidChain { chain, element } => {
                write!(
                    f,
                    "chain {chain} is not a chain of the relation at element {element}"
                )
            }
        }
    }
}

impl std::error::Error for PosetError {}
