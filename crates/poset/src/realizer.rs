//! Chain realizers: families of linear extensions whose intersection is the
//! poset (step (2) of the paper's Figure 9 offline algorithm).
//!
//! Dilworth's bound `dim(P) ≤ width(P)` is made constructive here: given a
//! minimum chain cover `C_1, ..., C_w`, the extension `L_i` is built by
//! repeatedly emitting minimal elements while *deferring* the elements of
//! `C_i` as long as any other minimal element exists. In `L_i`, every
//! element incomparable to some `y ∈ C_i` precedes `y` (when `y` is emitted,
//! it is the unique minimal element left, so anything still unplaced is
//! above it). Hence for every incomparable pair `(x, y)` with `y ∈ C_i`,
//! `x <_{L_i} y` — and symmetrically some other extension puts `y` before
//! `x`, so the intersection of the family is exactly the poset.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use synctime_par::ThreadPool;

use crate::chains::min_chain_cover;
use crate::{Poset, SparsePoset};

/// Builds a linear extension of `p` that defers the elements of `chain` as
/// long as possible: at every step the smallest minimal element outside
/// `chain` is emitted; a chain element is emitted only when it is the sole
/// minimal element remaining.
///
/// For every `y ∈ chain` and every `x` incomparable to `y`, the result puts
/// `x` before `y`.
///
/// # Panics
///
/// Panics if `chain` contains an out-of-range element.
pub fn extension_deferring(p: &Poset, chain: &[usize]) -> Vec<usize> {
    let n = p.len();
    let mut in_chain = vec![false; n];
    for &v in chain {
        assert!(v < n, "chain element {v} out of range");
        in_chain[v] = true;
    }
    let mut placed = vec![false; n];
    let mut remaining_below: Vec<usize> = (0..n).map(|v| p.downset_len(v)).collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let pick = (0..n)
            .filter(|&v| !placed[v] && remaining_below[v] == 0)
            .min_by_key(|&v| (in_chain[v], v))
            .expect("a finite poset always has a minimal unplaced element");
        placed[pick] = true;
        out.push(pick);
        for w in p.above(pick) {
            remaining_below[w] -= 1;
        }
    }
    out
}

/// A chain realizer of size `width(p)`: one deferring extension per chain of
/// a minimum chain cover. The intersection of the returned extensions is
/// exactly `p` (checkable with [`verify`]).
///
/// Degenerate case: a poset with at most one element has an empty
/// or singleton realizer of size `width` (0 or 1).
///
/// ```
/// use synctime_poset::{realizer, Poset};
///
/// let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)])?;
/// let r = realizer::chain_realizer(&p);
/// assert!(realizer::verify(&p, &r));
/// # Ok::<(), synctime_poset::PosetError>(())
/// ```
pub fn chain_realizer(p: &Poset) -> Vec<Vec<usize>> {
    min_chain_cover(p)
        .iter()
        .map(|chain| extension_deferring(p, chain))
        .collect()
}

/// Whether the intersection of `extensions` is exactly `p`: every extension
/// is a linear extension of `p`, and every incomparable pair is ordered both
/// ways across the family.
pub fn verify(p: &Poset, extensions: &[Vec<usize>]) -> bool {
    if p.len() <= 1 {
        // A single element (or none) is realized by any family, including
        // the empty one produced for the empty poset.
        return extensions.iter().all(|e| p.is_linear_extension(e));
    }
    if extensions.is_empty() {
        return false;
    }
    let positions: Vec<Vec<usize>> = extensions
        .iter()
        .map(|ext| {
            let mut pos = vec![usize::MAX; p.len()];
            for (i, &v) in ext.iter().enumerate() {
                if v >= p.len() || pos[v] != usize::MAX {
                    return Vec::new(); // malformed; caught below
                }
                pos[v] = i;
            }
            pos
        })
        .collect();
    if positions.iter().any(|pos| pos.len() != p.len()) {
        return false;
    }
    for ext in extensions {
        if !p.is_linear_extension(ext) {
            return false;
        }
    }
    for a in 0..p.len() {
        for b in (a + 1)..p.len() {
            if p.concurrent(a, b) {
                let a_before_b = positions.iter().any(|pos| pos[a] < pos[b]);
                let b_before_a = positions.iter().any(|pos| pos[b] < pos[a]);
                if !(a_before_b && b_before_a) {
                    return false;
                }
            }
        }
    }
    true
}

/// The positions of each element in each extension:
/// `result[i][v]` = index of `v` in `extensions[i]`. This is the vector
/// timestamp table of the offline algorithm (`V_m[i]` = number of elements
/// before `m` in `L_i`).
///
/// # Panics
///
/// Panics if an extension is not a permutation of `0..p.len()`.
pub fn position_table(p: &Poset, extensions: &[Vec<usize>]) -> Vec<Vec<usize>> {
    extensions
        .iter()
        .map(|ext| {
            assert_eq!(ext.len(), p.len(), "extension has wrong length");
            let mut pos = vec![usize::MAX; p.len()];
            for (i, &v) in ext.iter().enumerate() {
                assert!(pos[v] == usize::MAX, "element {v} repeated in extension");
                pos[v] = i;
            }
            pos
        })
        .collect()
}

/// Sparse counterpart of [`extension_deferring`]: builds the linear
/// extension of `p` that defers the elements of chain `chain_index` for as
/// long as any other minimal element exists, in
/// `O((M + E) log M)` instead of the dense `O(M²)` scan.
///
/// Uses a two-heap Kahn sweep over the generating edges: an element becomes
/// *available* when its last unplaced predecessor is placed (for a
/// generating relation this coincides with being minimal among the unplaced
/// elements of the order), and at every step the smallest available
/// non-chain element is emitted; a chain element only when no non-chain
/// element is available. This is exactly the dense
/// `min_by_key((in_chain, id))` pick, so the two implementations produce
/// identical extensions given identical chains.
///
/// # Panics
///
/// Panics if `chain_index` is out of range.
pub fn sparse_extension_deferring(p: &SparsePoset, chain_index: usize) -> Vec<usize> {
    assert!(chain_index < p.chain_count(), "chain index out of range");
    let n = p.len();
    let mut pending: Vec<u32> = (0..n).map(|v| p.predecessors(v).len() as u32).collect();
    // Two min-heaps of available elements, split by chain membership: the
    // deferred chain only supplies an element when `others` runs dry.
    let mut others: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let mut deferred: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let offer = |v: usize, others: &mut BinaryHeap<_>, deferred: &mut BinaryHeap<_>| {
        if p.chain_of(v) == chain_index {
            deferred.push(Reverse(v));
        } else {
            others.push(Reverse(v));
        }
    };
    for v in 0..n {
        if pending[v] == 0 {
            offer(v, &mut others, &mut deferred);
        }
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let Reverse(v) = others
            .pop()
            .or_else(|| deferred.pop())
            .expect("a finite poset always has a minimal unplaced element");
        out.push(v);
        for &w in p.successors(v) {
            let w = w as usize;
            pending[w] -= 1;
            if pending[w] == 0 {
                offer(w, &mut others, &mut deferred);
            }
        }
    }
    out
}

/// A chain realizer of a [`SparsePoset`]: one deferring extension per
/// **non-empty** chain of its covering partition.
///
/// The family realizes `p` for *any* chain partition, minimum or not: for
/// an incomparable pair `(x, y)` with `y` in chain `C_i`, the deferring
/// extension `L_i` emits `y` only when it is the sole minimal unplaced
/// element (a valid chain has at most one minimal element), so `x` — not
/// above `y` — must already be placed, i.e. `x <_{L_i} y`; the chain
/// holding `x` orders them the other way. The price of skipping the
/// minimum-cover matching is dimension: the realizer has one extension per
/// non-empty chain (≤ `N` for the per-sender partition) instead of
/// `width(p)` (≤ `⌊N/2⌋`).
///
/// Returns `(chain_indices, extensions)` where `chain_indices[i]` is the
/// partition index the `i`-th extension defers.
pub fn sparse_chain_realizer(p: &SparsePoset) -> (Vec<usize>, Vec<Vec<usize>>) {
    let nonempty: Vec<usize> = (0..p.chain_count())
        .filter(|&c| !p.chains()[c].is_empty())
        .collect();
    let extensions = nonempty
        .iter()
        .map(|&c| sparse_extension_deferring(p, c))
        .collect();
    (nonempty, extensions)
}

/// Parallel [`sparse_chain_realizer`]: the per-chain extensions are
/// independent, so they fan out across `pool` and are merged back **in
/// chain order** — the result is bit-identical to the sequential one
/// regardless of scheduling.
pub fn sparse_chain_realizer_parallel(
    p: &SparsePoset,
    pool: &ThreadPool,
) -> (Vec<usize>, Vec<Vec<usize>>) {
    let nonempty: Vec<usize> = (0..p.chain_count())
        .filter(|&c| !p.chains()[c].is_empty())
        .collect();
    let extensions = pool.map_indexed(nonempty.len(), |i| {
        sparse_extension_deferring(p, nonempty[i])
    });
    (nonempty, extensions)
}

/// Sparse analog of [`verify`]: every extension is a permutation that
/// respects the generating edges, and every incomparable pair is ordered
/// both ways across the family. `O(dim · (M + E) + M² · dim)` — intended
/// for tests and debug assertions on small posets, not for the hot path.
pub fn sparse_verify(p: &SparsePoset, extensions: &[Vec<usize>]) -> bool {
    let n = p.len();
    if n <= 1 {
        return true;
    }
    if extensions.is_empty() {
        return false;
    }
    let mut positions = Vec::with_capacity(extensions.len());
    for ext in extensions {
        if ext.len() != n {
            return false;
        }
        let mut pos = vec![usize::MAX; n];
        for (i, &v) in ext.iter().enumerate() {
            if v >= n || pos[v] != usize::MAX {
                return false;
            }
            pos[v] = i;
        }
        // Linear extension: every generating edge points forward.
        for v in 0..n {
            for &w in p.successors(v) {
                if pos[v] >= pos[w as usize] {
                    return false;
                }
            }
        }
        positions.push(pos);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if p.concurrent(a, b) {
                let a_first = positions.iter().any(|pos| pos[a] < pos[b]);
                let b_first = positions.iter().any(|pos| pos[b] < pos[a]);
                if !(a_first && b_first) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::width;

    fn assert_realized(p: &Poset) {
        let r = chain_realizer(p);
        assert_eq!(r.len(), width(p));
        assert!(verify(p, &r), "realizer does not realize the poset");
    }

    #[test]
    fn diamond_realizer() {
        let p = Poset::from_cover_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_realized(&p);
    }

    #[test]
    fn chain_needs_one_extension() {
        let p = Poset::from_cover_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = chain_realizer(&p);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], vec![0, 1, 2, 3]);
        assert!(verify(&p, &r));
    }

    #[test]
    fn antichain_needs_n() {
        let p = Poset::antichain(4);
        assert_realized(&p);
    }

    #[test]
    fn standard_example_realizer() {
        // S_3 has dimension 3 = width 3; chain realizer of size 3 works.
        let mut pairs = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    pairs.push((i, 3 + j));
                }
            }
        }
        let p = Poset::from_cover_edges(6, &pairs).unwrap();
        assert_realized(&p);
    }

    #[test]
    fn deferring_extension_defers() {
        // 0 < 1; chain {0, 1}; element 2 incomparable to both must precede
        // both in the deferring extension.
        let p = Poset::from_cover_edges(3, &[(0, 1)]).unwrap();
        let ext = extension_deferring(&p, &[0, 1]);
        assert_eq!(ext, vec![2, 0, 1]);
        assert!(p.is_linear_extension(&ext));
    }

    #[test]
    fn verify_rejects_one_sided_families() {
        let p = Poset::antichain(2);
        // Both extensions order 0 before 1: fails to realize incomparability.
        assert!(!verify(&p, &[vec![0, 1], vec![0, 1]]));
        assert!(verify(&p, &[vec![0, 1], vec![1, 0]]));
        // Non-extensions are rejected.
        let q = Poset::from_cover_edges(2, &[(0, 1)]).unwrap();
        assert!(!verify(&q, &[vec![1, 0]]));
        // Empty family realizes nothing (for n > 1).
        assert!(!verify(&p, &[]));
    }

    #[test]
    fn position_table_matches_extensions() {
        let p = Poset::antichain(3);
        let table = position_table(&p, &[vec![2, 0, 1]]);
        assert_eq!(table, vec![vec![1, 2, 0]]);
    }

    /// Shared fixture: a two-process ladder plus a loner, with its
    /// per-"sender" chain partition.
    fn ladder() -> (usize, Vec<(usize, usize)>, Vec<Vec<usize>>) {
        let edges = vec![(0, 2), (2, 4), (1, 3), (3, 5), (0, 3), (3, 4)];
        let chains = vec![vec![0, 2, 4], vec![1, 3, 5], vec![6]];
        (7, edges, chains)
    }

    #[test]
    fn sparse_matches_dense_extension_on_same_chain() {
        let (n, edges, chains) = ladder();
        let dense = Poset::from_cover_edges(n, &edges).unwrap();
        let sparse = SparsePoset::from_edges_and_chains(n, &edges, chains.clone()).unwrap();
        for (c, chain) in chains.iter().enumerate() {
            assert_eq!(
                extension_deferring(&dense, chain),
                sparse_extension_deferring(&sparse, c),
                "chain {c}"
            );
        }
    }

    #[test]
    fn sparse_realizer_realizes() {
        let (n, edges, chains) = ladder();
        let sparse = SparsePoset::from_edges_and_chains(n, &edges, chains).unwrap();
        let (which, exts) = sparse_chain_realizer(&sparse);
        assert_eq!(which, vec![0, 1, 2]);
        assert_eq!(exts.len(), 3);
        assert!(sparse_verify(&sparse, &exts));
        // And against the dense closure's notion of incomparability too.
        let dense = Poset::from_cover_edges(n, &edges).unwrap();
        assert!(verify(&dense, &exts));
    }

    #[test]
    fn sparse_parallel_is_bit_identical_to_sequential() {
        let (n, edges, chains) = ladder();
        let sparse = SparsePoset::from_edges_and_chains(n, &edges, chains).unwrap();
        let seq = sparse_chain_realizer(&sparse);
        for workers in [1, 2, 8] {
            let par = sparse_chain_realizer_parallel(&sparse, &ThreadPool::new(workers));
            assert_eq!(seq, par, "workers = {workers}");
        }
    }

    #[test]
    fn sparse_realizer_skips_empty_chains() {
        let p = SparsePoset::from_edges_and_chains(2, &[(0, 1)], vec![vec![], vec![0, 1], vec![]])
            .unwrap();
        let (which, exts) = sparse_chain_realizer(&p);
        assert_eq!(which, vec![1]);
        assert_eq!(exts, vec![vec![0, 1]]);
        assert!(sparse_verify(&p, &exts));
    }

    #[test]
    fn sparse_verify_rejects_one_sided_families() {
        let p = SparsePoset::from_edges_and_chains(2, &[], vec![vec![0], vec![1]]).unwrap();
        assert!(!sparse_verify(&p, &[vec![0, 1], vec![0, 1]]));
        assert!(sparse_verify(&p, &[vec![0, 1], vec![1, 0]]));
        assert!(!sparse_verify(&p, &[]));
        let q = SparsePoset::from_edges_and_chains(2, &[(0, 1)], vec![vec![0, 1]]).unwrap();
        assert!(!sparse_verify(&q, &[vec![1, 0]]));
    }

    #[test]
    fn empty_and_singleton_posets() {
        let empty = Poset::antichain(0);
        assert!(verify(&empty, &chain_realizer(&empty)));
        let single = Poset::antichain(1);
        let r = chain_realizer(&single);
        assert_eq!(r, vec![vec![0]]);
        assert!(verify(&single, &r));
    }
}
