//! Chain realizers: families of linear extensions whose intersection is the
//! poset (step (2) of the paper's Figure 9 offline algorithm).
//!
//! Dilworth's bound `dim(P) ≤ width(P)` is made constructive here: given a
//! minimum chain cover `C_1, ..., C_w`, the extension `L_i` is built by
//! repeatedly emitting minimal elements while *deferring* the elements of
//! `C_i` as long as any other minimal element exists. In `L_i`, every
//! element incomparable to some `y ∈ C_i` precedes `y` (when `y` is emitted,
//! it is the unique minimal element left, so anything still unplaced is
//! above it). Hence for every incomparable pair `(x, y)` with `y ∈ C_i`,
//! `x <_{L_i} y` — and symmetrically some other extension puts `y` before
//! `x`, so the intersection of the family is exactly the poset.

use crate::chains::min_chain_cover;
use crate::Poset;

/// Builds a linear extension of `p` that defers the elements of `chain` as
/// long as possible: at every step the smallest minimal element outside
/// `chain` is emitted; a chain element is emitted only when it is the sole
/// minimal element remaining.
///
/// For every `y ∈ chain` and every `x` incomparable to `y`, the result puts
/// `x` before `y`.
///
/// # Panics
///
/// Panics if `chain` contains an out-of-range element.
pub fn extension_deferring(p: &Poset, chain: &[usize]) -> Vec<usize> {
    let n = p.len();
    let mut in_chain = vec![false; n];
    for &v in chain {
        assert!(v < n, "chain element {v} out of range");
        in_chain[v] = true;
    }
    let mut placed = vec![false; n];
    let mut remaining_below: Vec<usize> = (0..n).map(|v| p.downset_len(v)).collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let pick = (0..n)
            .filter(|&v| !placed[v] && remaining_below[v] == 0)
            .min_by_key(|&v| (in_chain[v], v))
            .expect("a finite poset always has a minimal unplaced element");
        placed[pick] = true;
        out.push(pick);
        for w in p.above(pick) {
            remaining_below[w] -= 1;
        }
    }
    out
}

/// A chain realizer of size `width(p)`: one deferring extension per chain of
/// a minimum chain cover. The intersection of the returned extensions is
/// exactly `p` (checkable with [`verify`]).
///
/// Degenerate case: a poset with at most one element has an empty
/// or singleton realizer of size `width` (0 or 1).
///
/// ```
/// use synctime_poset::{realizer, Poset};
///
/// let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)])?;
/// let r = realizer::chain_realizer(&p);
/// assert!(realizer::verify(&p, &r));
/// # Ok::<(), synctime_poset::PosetError>(())
/// ```
pub fn chain_realizer(p: &Poset) -> Vec<Vec<usize>> {
    min_chain_cover(p)
        .iter()
        .map(|chain| extension_deferring(p, chain))
        .collect()
}

/// Whether the intersection of `extensions` is exactly `p`: every extension
/// is a linear extension of `p`, and every incomparable pair is ordered both
/// ways across the family.
pub fn verify(p: &Poset, extensions: &[Vec<usize>]) -> bool {
    if p.len() <= 1 {
        // A single element (or none) is realized by any family, including
        // the empty one produced for the empty poset.
        return extensions.iter().all(|e| p.is_linear_extension(e));
    }
    if extensions.is_empty() {
        return false;
    }
    let positions: Vec<Vec<usize>> = extensions
        .iter()
        .map(|ext| {
            let mut pos = vec![usize::MAX; p.len()];
            for (i, &v) in ext.iter().enumerate() {
                if v >= p.len() || pos[v] != usize::MAX {
                    return Vec::new(); // malformed; caught below
                }
                pos[v] = i;
            }
            pos
        })
        .collect();
    if positions.iter().any(|pos| pos.len() != p.len()) {
        return false;
    }
    for ext in extensions {
        if !p.is_linear_extension(ext) {
            return false;
        }
    }
    for a in 0..p.len() {
        for b in (a + 1)..p.len() {
            if p.concurrent(a, b) {
                let a_before_b = positions.iter().any(|pos| pos[a] < pos[b]);
                let b_before_a = positions.iter().any(|pos| pos[b] < pos[a]);
                if !(a_before_b && b_before_a) {
                    return false;
                }
            }
        }
    }
    true
}

/// The positions of each element in each extension:
/// `result[i][v]` = index of `v` in `extensions[i]`. This is the vector
/// timestamp table of the offline algorithm (`V_m[i]` = number of elements
/// before `m` in `L_i`).
///
/// # Panics
///
/// Panics if an extension is not a permutation of `0..p.len()`.
pub fn position_table(p: &Poset, extensions: &[Vec<usize>]) -> Vec<Vec<usize>> {
    extensions
        .iter()
        .map(|ext| {
            assert_eq!(ext.len(), p.len(), "extension has wrong length");
            let mut pos = vec![usize::MAX; p.len()];
            for (i, &v) in ext.iter().enumerate() {
                assert!(pos[v] == usize::MAX, "element {v} repeated in extension");
                pos[v] = i;
            }
            pos
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::width;

    fn assert_realized(p: &Poset) {
        let r = chain_realizer(p);
        assert_eq!(r.len(), width(p));
        assert!(verify(p, &r), "realizer does not realize the poset");
    }

    #[test]
    fn diamond_realizer() {
        let p = Poset::from_cover_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_realized(&p);
    }

    #[test]
    fn chain_needs_one_extension() {
        let p = Poset::from_cover_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = chain_realizer(&p);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], vec![0, 1, 2, 3]);
        assert!(verify(&p, &r));
    }

    #[test]
    fn antichain_needs_n() {
        let p = Poset::antichain(4);
        assert_realized(&p);
    }

    #[test]
    fn standard_example_realizer() {
        // S_3 has dimension 3 = width 3; chain realizer of size 3 works.
        let mut pairs = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    pairs.push((i, 3 + j));
                }
            }
        }
        let p = Poset::from_cover_edges(6, &pairs).unwrap();
        assert_realized(&p);
    }

    #[test]
    fn deferring_extension_defers() {
        // 0 < 1; chain {0, 1}; element 2 incomparable to both must precede
        // both in the deferring extension.
        let p = Poset::from_cover_edges(3, &[(0, 1)]).unwrap();
        let ext = extension_deferring(&p, &[0, 1]);
        assert_eq!(ext, vec![2, 0, 1]);
        assert!(p.is_linear_extension(&ext));
    }

    #[test]
    fn verify_rejects_one_sided_families() {
        let p = Poset::antichain(2);
        // Both extensions order 0 before 1: fails to realize incomparability.
        assert!(!verify(&p, &[vec![0, 1], vec![0, 1]]));
        assert!(verify(&p, &[vec![0, 1], vec![1, 0]]));
        // Non-extensions are rejected.
        let q = Poset::from_cover_edges(2, &[(0, 1)]).unwrap();
        assert!(!verify(&q, &[vec![1, 0]]));
        // Empty family realizes nothing (for n > 1).
        assert!(!verify(&p, &[]));
    }

    #[test]
    fn position_table_matches_extensions() {
        let p = Poset::antichain(3);
        let table = position_table(&p, &[vec![2, 0, 1]]);
        assert_eq!(table, vec![vec![1, 2, 0]]);
    }

    #[test]
    fn empty_and_singleton_posets() {
        let empty = Poset::antichain(0);
        assert!(verify(&empty, &chain_realizer(&empty)));
        let single = Poset::antichain(1);
        let r = chain_realizer(&single);
        assert_eq!(r, vec![vec![0]]);
        assert!(verify(&single, &r));
    }
}
