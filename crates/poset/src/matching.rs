//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used by [`crate::chains`] to compute Dilworth chain covers: splitting a
//! poset into left/right copies with an edge per ordered pair turns minimum
//! chain cover into maximum matching (`cover = n − matching`).

/// A bipartite graph with `left` and `right` vertex counts and adjacency
/// from left vertices to right vertices.
#[derive(Debug, Clone)]
pub struct Bipartite {
    left: usize,
    right: usize,
    adj: Vec<Vec<usize>>,
}

impl Bipartite {
    /// Creates an empty bipartite graph.
    pub fn new(left: usize, right: usize) -> Self {
        Bipartite {
            left,
            right,
            adj: vec![Vec::new(); left],
        }
    }

    /// Adds an edge from left vertex `l` to right vertex `r`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.left, "left vertex {l} out of range");
        assert!(r < self.right, "right vertex {r} out of range");
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn left_len(&self) -> usize {
        self.left
    }

    /// Number of right vertices.
    pub fn right_len(&self) -> usize {
        self.right
    }
}

/// The result of a maximum-matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `pair_left[l]` is the right vertex matched to `l`, if any.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[r]` is the left vertex matched to `r`, if any.
    pub pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// Whether no pair is matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const INF: usize = usize::MAX;

/// Computes a maximum matching with the Hopcroft–Karp algorithm in
/// `O(E √V)`.
pub fn hopcroft_karp(g: &Bipartite) -> Matching {
    let mut pair_left = vec![None; g.left];
    let mut pair_right = vec![None; g.right];
    let mut dist = vec![INF; g.left];

    loop {
        // BFS from all free left vertices to layer the graph.
        let mut queue = std::collections::VecDeque::new();
        for l in 0..g.left {
            if pair_left[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in &g.adj[l] {
                match pair_right[r] {
                    None => found_augmenting = true,
                    Some(l2) if dist[l2] == INF => {
                        dist[l2] = dist[l] + 1;
                        queue.push_back(l2);
                    }
                    _ => {}
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint shortest augmenting paths.
        for l in 0..g.left {
            if pair_left[l].is_none() {
                augment(g, l, &mut pair_left, &mut pair_right, &mut dist);
            }
        }
    }

    Matching {
        pair_left,
        pair_right,
    }
}

fn augment(
    g: &Bipartite,
    l: usize,
    pair_left: &mut [Option<usize>],
    pair_right: &mut [Option<usize>],
    dist: &mut [usize],
) -> bool {
    for &r in &g.adj[l] {
        let ok = match pair_right[r] {
            None => true,
            Some(l2) => {
                dist[l2] == dist[l].saturating_add(1) && augment(g, l2, pair_left, pair_right, dist)
            }
        };
        if ok {
            pair_left[l] = Some(r);
            pair_right[r] = Some(l);
            return true;
        }
    }
    dist[l] = INF;
    false
}

/// A minimum vertex cover of the bipartite graph via König's theorem,
/// returned as (left-cover, right-cover). Its size equals the maximum
/// matching size.
pub fn koenig_cover(g: &Bipartite, m: &Matching) -> (Vec<usize>, Vec<usize>) {
    // Alternating BFS from unmatched left vertices.
    let mut visited_left = vec![false; g.left];
    let mut visited_right = vec![false; g.right];
    let mut queue: std::collections::VecDeque<usize> =
        (0..g.left).filter(|&l| m.pair_left[l].is_none()).collect();
    for &l in &queue {
        visited_left[l] = true;
    }
    while let Some(l) = queue.pop_front() {
        for &r in &g.adj[l] {
            if Some(r) == m.pair_left[l] || visited_right[r] {
                continue;
            }
            visited_right[r] = true;
            if let Some(l2) = m.pair_right[r] {
                if !visited_left[l2] {
                    visited_left[l2] = true;
                    queue.push_back(l2);
                }
            }
        }
    }
    let left_cover: Vec<usize> = (0..g.left).filter(|&l| !visited_left[l]).collect();
    let right_cover: Vec<usize> = (0..g.right).filter(|&r| visited_right[r]).collect();
    (left_cover, right_cover)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching() {
        let mut g = Bipartite::new(3, 3);
        for (l, r) in [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)] {
            g.add_edge(l, r);
        }
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn no_edges_no_matching() {
        let g = Bipartite::new(4, 4);
        let m = hopcroft_karp(&g);
        assert!(m.is_empty());
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy left-to-right would match 0-0 and block 1; HK augments.
        let mut g = Bipartite::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let m = hopcroft_karp(&g);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn matching_is_consistent() {
        let mut g = Bipartite::new(5, 4);
        for (l, r) in [(0, 0), (1, 0), (1, 1), (2, 1), (3, 2), (4, 2), (4, 3)] {
            g.add_edge(l, r);
        }
        let m = hopcroft_karp(&g);
        for (l, pr) in m.pair_left.iter().enumerate() {
            if let Some(r) = pr {
                assert_eq!(m.pair_right[*r], Some(l));
            }
        }
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn koenig_cover_size_equals_matching() {
        let mut g = Bipartite::new(4, 4);
        for (l, r) in [(0, 0), (0, 1), (1, 0), (2, 2), (3, 2)] {
            g.add_edge(l, r);
        }
        let m = hopcroft_karp(&g);
        let (lc, rc) = koenig_cover(&g, &m);
        assert_eq!(lc.len() + rc.len(), m.len());
        // Every edge is covered.
        for l in 0..4 {
            for &r in &g.adj[l] {
                assert!(
                    lc.contains(&l) || rc.contains(&r),
                    "edge ({l},{r}) uncovered"
                );
            }
        }
    }
}
