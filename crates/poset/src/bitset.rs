//! A compact fixed-capacity bitset used for transitive-closure rows.

/// A fixed-capacity set of `usize` values below `capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    pub(crate) fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    pub(crate) fn insert(&mut self, idx: usize) {
        debug_assert!(idx < self.capacity);
        self.words[idx / 64] |= 1 << (idx % 64);
    }

    pub(crate) fn contains(&self, idx: usize) -> bool {
        debug_assert!(idx < self.capacity);
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// `self |= other`.
    pub(crate) fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut s = BitSet::new(130);
        for i in [0, 63, 64, 65, 129] {
            s.insert(i);
        }
        assert!(s.contains(64));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 129]);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        b.insert(2);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(2));
    }
}
