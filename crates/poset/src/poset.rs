use crate::{BitSet, PosetError};

/// A finite strict partial order over elements `0..len`, stored transitively
/// closed: `up[a]` is the bitset of all `b` with `a < b`.
///
/// Elements are plain indices; callers keep their own mapping from domain
/// objects (e.g. messages) to indices.
///
/// ```
/// use synctime_poset::Poset;
///
/// let p = Poset::from_cover_edges(3, &[(0, 1), (1, 2)])?;
/// assert!(p.lt(0, 2)); // transitivity
/// assert!(!p.lt(2, 0));
/// # Ok::<(), synctime_poset::PosetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poset {
    len: usize,
    /// `up[a]` = elements strictly above `a`.
    up: Vec<BitSet>,
    /// `down[a]` = elements strictly below `a`.
    down: Vec<BitSet>,
}

impl Poset {
    /// The antichain of `len` pairwise-incomparable elements.
    pub fn antichain(len: usize) -> Self {
        Poset {
            len,
            up: (0..len).map(|_| BitSet::new(len)).collect(),
            down: (0..len).map(|_| BitSet::new(len)).collect(),
        }
    }

    /// Builds a poset as the transitive closure of the given directed pairs
    /// `(a, b)` meaning `a < b`. The pairs need not be cover (immediate)
    /// relations; any acyclic relation works.
    ///
    /// # Errors
    ///
    /// Returns [`PosetError::ElementOutOfRange`] for bad indices and
    /// [`PosetError::CycleDetected`] if the pairs contain a cycle.
    pub fn from_cover_edges(len: usize, pairs: &[(usize, usize)]) -> Result<Self, PosetError> {
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); len];
        let mut indegree = vec![0usize; len];
        for &(a, b) in pairs {
            for &x in &[a, b] {
                if x >= len {
                    return Err(PosetError::ElementOutOfRange { element: x, len });
                }
            }
            if a == b {
                return Err(PosetError::CycleDetected { element: a });
            }
            successors[a].push(b);
            indegree[b] += 1;
        }
        // Kahn topological sort; doubles as cycle detection.
        let mut order = Vec::with_capacity(len);
        let mut queue: Vec<usize> = (0..len).filter(|&v| indegree[v] == 0).collect();
        while let Some(v) = queue.pop() {
            order.push(v);
            for &w in &successors[v] {
                indegree[w] -= 1;
                if indegree[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() != len {
            let culprit = (0..len)
                .find(|&v| indegree[v] > 0)
                .expect("a cycle leaves positive indegrees");
            return Err(PosetError::CycleDetected { element: culprit });
        }
        // Closure: in reverse topological order, up[v] = ∪ (up[w] ∪ {w}).
        let mut up: Vec<BitSet> = (0..len).map(|_| BitSet::new(len)).collect();
        for &v in order.iter().rev() {
            // Indexing (not iterating) keeps the borrow checker happy while
            // `up` is split mutably below.
            #[allow(clippy::needless_range_loop)]
            for i in 0..successors[v].len() {
                let w = successors[v][i];
                let (head, tail) = if v < w {
                    let (a, b) = up.split_at_mut(w);
                    (&mut a[v], &b[0])
                } else {
                    let (a, b) = up.split_at_mut(v);
                    (&mut b[0], &a[w])
                };
                head.union_with(tail);
                head.insert(w);
            }
        }
        let mut down: Vec<BitSet> = (0..len).map(|_| BitSet::new(len)).collect();
        #[allow(clippy::needless_range_loop)]
        for a in 0..len {
            for b in up[a].iter() {
                down[b].insert(a);
            }
        }
        Ok(Poset { len, up, down })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the poset has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Strictly-less test `a < b`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn lt(&self, a: usize, b: usize) -> bool {
        assert!(a < self.len && b < self.len, "element out of range");
        self.up[a].contains(b)
    }

    /// Less-or-equal test.
    pub fn leq(&self, a: usize, b: usize) -> bool {
        a == b || self.lt(a, b)
    }

    /// Whether `a` and `b` are comparable (one is below the other or equal).
    pub fn comparable(&self, a: usize, b: usize) -> bool {
        a == b || self.lt(a, b) || self.lt(b, a)
    }

    /// Whether `a` and `b` are distinct and incomparable (`a ‖ b`).
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.comparable(a, b)
    }

    /// Elements strictly above `a`, ascending.
    pub fn above(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.up[a].iter()
    }

    /// Elements strictly below `a`, ascending.
    pub fn below(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        self.down[a].iter()
    }

    /// Number of elements strictly below `a`.
    pub fn downset_len(&self, a: usize) -> usize {
        self.down[a].len()
    }

    /// The minimal elements (nothing below them), ascending. A message is
    /// *minimal* in the paper's sense when no message synchronously precedes
    /// it.
    pub fn minimal_elements(&self) -> Vec<usize> {
        (0..self.len).filter(|&v| self.down[v].len() == 0).collect()
    }

    /// The maximal elements (nothing above them), ascending.
    pub fn maximal_elements(&self) -> Vec<usize> {
        (0..self.len).filter(|&v| self.up[v].len() == 0).collect()
    }

    /// The cover (immediate-predecessor) relation: pairs `(a, b)` with
    /// `a < b` and no `c` strictly between. This is the transitive
    /// reduction of the order.
    pub fn cover_pairs(&self) -> Vec<(usize, usize)> {
        let mut covers = Vec::new();
        for a in 0..self.len {
            'next: for b in self.up[a].iter() {
                for c in self.up[a].iter() {
                    if c != b && self.up[c].contains(b) {
                        continue 'next;
                    }
                }
                covers.push((a, b));
            }
        }
        covers
    }

    /// All ordered pairs `(a, b)` with `a < b`.
    pub fn relation_pairs(&self) -> Vec<(usize, usize)> {
        (0..self.len)
            .flat_map(|a| self.up[a].iter().map(move |b| (a, b)))
            .collect()
    }

    /// A linear extension: a permutation of `0..len` in which smaller poset
    /// elements come first. Deterministic (smallest eligible index first).
    pub fn linear_extension(&self) -> Vec<usize> {
        let mut placed = vec![false; self.len];
        let mut remaining_below: Vec<usize> = (0..self.len).map(|v| self.down[v].len()).collect();
        let mut out = Vec::with_capacity(self.len);
        for _ in 0..self.len {
            let v = (0..self.len)
                .find(|&v| !placed[v] && remaining_below[v] == 0)
                .expect("a finite poset always has a minimal unplaced element");
            placed[v] = true;
            out.push(v);
            for w in self.up[v].iter() {
                remaining_below[w] -= 1;
            }
        }
        out
    }

    /// Whether `order` is a linear extension of this poset: a permutation of
    /// `0..len` that respects the order.
    pub fn is_linear_extension(&self, order: &[usize]) -> bool {
        if order.len() != self.len {
            return false;
        }
        let mut position = vec![usize::MAX; self.len];
        for (pos, &v) in order.iter().enumerate() {
            if v >= self.len || position[v] != usize::MAX {
                return false;
            }
            position[v] = pos;
        }
        (0..self.len).all(|a| self.up[a].iter().all(|b| position[a] < position[b]))
    }

    /// Checks the strict-order axioms on the stored relation
    /// (irreflexivity and transitivity); used by property tests.
    pub fn check_invariants(&self) -> bool {
        for a in 0..self.len {
            if self.up[a].contains(a) {
                return false;
            }
            for b in self.up[a].iter() {
                if self.up[b].contains(a) {
                    return false; // antisymmetry violated
                }
                for c in self.up[b].iter() {
                    if !self.up[a].contains(c) {
                        return false; // transitivity violated
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_transitive() {
        let p = Poset::from_cover_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(p.lt(0, 3));
        assert!(p.lt(1, 3));
        assert!(!p.lt(3, 0));
        assert!(p.check_invariants());
    }

    #[test]
    fn duplicate_pairs_are_fine() {
        let p = Poset::from_cover_edges(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        assert!(p.lt(0, 2));
    }

    #[test]
    fn cycle_rejected() {
        let err = Poset::from_cover_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, PosetError::CycleDetected { .. }));
        let refl = Poset::from_cover_edges(2, &[(1, 1)]).unwrap_err();
        assert!(matches!(refl, PosetError::CycleDetected { element: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Poset::from_cover_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, PosetError::ElementOutOfRange { element: 5, len: 2 });
    }

    #[test]
    fn concurrency_and_comparability() {
        let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
        assert!(p.concurrent(0, 1));
        assert!(p.concurrent(2, 3));
        assert!(p.comparable(1, 3));
        assert!(p.comparable(2, 2));
        assert!(!p.concurrent(0, 0));
    }

    #[test]
    fn minimal_and_maximal() {
        let p = Poset::from_cover_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
        assert_eq!(p.minimal_elements(), vec![0, 1]);
        assert_eq!(p.maximal_elements(), vec![2, 3]);
    }

    #[test]
    fn cover_pairs_are_reduction() {
        // 0 < 1 < 2 plus the redundant (0, 2).
        let p = Poset::from_cover_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(p.cover_pairs(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn linear_extension_is_valid() {
        let p = Poset::from_cover_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let ext = p.linear_extension();
        assert!(p.is_linear_extension(&ext));
        // Invalid permutations are rejected.
        assert!(!p.is_linear_extension(&[4, 3, 2, 1, 0]));
        assert!(!p.is_linear_extension(&[0, 0, 1, 2, 3]));
        assert!(!p.is_linear_extension(&[0, 1, 2]));
    }

    #[test]
    fn downsets() {
        let p = Poset::from_cover_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap();
        assert_eq!(p.downset_len(0), 0);
        assert_eq!(p.downset_len(2), 2);
        assert_eq!(p.below(3).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(p.above(0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn antichain_constructor() {
        let p = Poset::antichain(5);
        assert_eq!(p.len(), 5);
        assert!(p.concurrent(0, 4));
        assert_eq!(p.minimal_elements().len(), 5);
        assert!(Poset::antichain(0).is_empty());
    }

    #[test]
    fn empty_poset() {
        let p = Poset::from_cover_edges(0, &[]).unwrap();
        assert!(p.is_empty());
        assert!(p.linear_extension().is_empty());
        assert!(p.check_invariants());
    }
}
