//! The fault-injection hook consulted by the runtime at every rendezvous
//! operation boundary.
//!
//! The runtime itself knows nothing about fault *schedules* — it only asks
//! an injector, before each `send`/`receive_from`, what should happen to
//! this process's next operation. Deterministic schedules (seeded crash
//! plans, scripted delays, forced delta-stream desyncs) live in
//! `synctime-sim`'s `FaultPlan`, which implements [`FaultInjector`]; tests
//! can implement the trait directly for hand-crafted scenarios.
//!
//! Crashes fire at operation *boundaries* — before the process touches any
//! channel slot — so a crashed process never leaves a half-completed
//! rendezvous behind: every rendezvous it logged was fully acknowledged on
//! both sides, which is what lets partial runs reconstruct the surviving
//! prefix of the computation (Theorem 4 on the survivors).

use std::time::Duration;

use synctime_trace::ProcessId;

/// What a [`FaultInjector`] asks the runtime to do at one operation
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Proceed normally.
    #[default]
    None,
    /// Terminate this process's behavior with
    /// [`RuntimeError::FaultInjected`](crate::RuntimeError::FaultInjected).
    /// Peers blocked on it observe
    /// [`RuntimeError::PeerTerminated`](crate::RuntimeError::PeerTerminated).
    Crash,
    /// Sleep this long before starting the operation (models a stalled
    /// peer; exercises watchdog and timeout paths without killing anyone).
    Delay(Duration),
    /// Desynchronise this process's outgoing data delta stream at its next
    /// send: the stream's sequence number advances as if a frame were lost.
    /// Sticky — if the current operation is a receive, the desync applies
    /// to the next send that actually happens.
    DesyncNext,
}

/// A deterministic fault source.
///
/// Implementations must be cheap and pure: the runtime calls
/// [`FaultInjector::action`] on the hot path, once per rendezvous
/// operation, from every process thread concurrently.
pub trait FaultInjector: std::fmt::Debug + Send + Sync {
    /// The action for `process`'s `op_index`-th rendezvous operation
    /// (op indices count this process's `send` + `receive_from` calls from
    /// zero, in program order).
    fn action(&self, process: ProcessId, op_index: u64) -> FaultAction;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct CrashAt(ProcessId, u64);

    impl FaultInjector for CrashAt {
        fn action(&self, process: ProcessId, op_index: u64) -> FaultAction {
            if process == self.0 && op_index == self.1 {
                FaultAction::Crash
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn trait_object_dispatch() {
        let injector: Box<dyn FaultInjector> = Box::new(CrashAt(1, 3));
        assert_eq!(injector.action(1, 3), FaultAction::Crash);
        assert_eq!(injector.action(1, 2), FaultAction::None);
        assert_eq!(injector.action(0, 3), FaultAction::None);
    }
}
