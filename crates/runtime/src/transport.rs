//! The transport abstraction under the rendezvous runtime.
//!
//! PR 2's matcher welded `ProcessCtx::send`/`receive_from` directly to the
//! in-process [`ChannelSlot`]. This module splits the rendezvous state
//! machine from the medium it runs over: the runtime's wait loops (timeout
//! budgets, watchdog registration, fault injection, resync protocol) drive
//! a pair of per-channel trait objects — [`TxChannel`] for the sending
//! endpoint, [`RxChannel`] for the receiving endpoint — and the medium
//! behind them is interchangeable:
//!
//! * [`LocalTx`]/[`LocalRx`] (this module) wrap the mutex+condvar
//!   [`ChannelSlot`], preserving the in-process matcher's exact semantics
//!   (including the [`Matcher::Polling`] baseline);
//! * `synctime-net` implements the same traits over per-peer TCP
//!   connections, so the same `Behavior` programs run unmodified as `N`
//!   real OS processes.
//!
//! Every method is a **bounded poll**: it either returns a result, or
//! waits at most `cap` (transport backstop when `cap` is `None`) and
//! reports [`Polled::Pending`]. The caller loops, interleaving its own
//! abort/liveness/timeout checks between polls — which is exactly what
//! keeps the deadlock watchdog, rendezvous timeouts, and fault machinery
//! shared between the local and TCP paths instead of forked per medium.

use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::matcher::{ChannelSlot, SlotState, Wire};
use crate::Matcher;

/// Outcome of one bounded poll: the awaited state change, or not yet.
#[derive(Debug)]
pub enum Polled<T> {
    /// The awaited state change happened; here is its value.
    Ready(T),
    /// Not yet — the caller should run its abort/timeout checks and poll
    /// again.
    Pending,
}

/// What [`TxChannel::poll_ready`] reports once the channel can carry a new
/// offer.
#[derive(Debug)]
pub struct ReadySlot {
    /// The channel held an unserviced resync request from an earlier,
    /// errored exchange. The sender must re-anchor its delta stream with a
    /// full-vector frame before encoding the new offer.
    pub resync_debris: bool,
}

/// A message offer as observed by the receiving endpoint.
#[derive(Debug)]
pub struct RawOffer {
    /// The message's globally unique reconstruction key.
    pub key: u64,
    /// The program payload.
    pub payload: u64,
    /// The piggybacked vector, delta-encoded on the channel's data stream.
    pub vector: Vec<u8>,
    /// When the offer became observable at this endpoint (slot deposit
    /// locally; frame arrival over TCP). Basis for wakeup-latency samples.
    pub offered_at: Instant,
}

/// The receiving endpoint's reply to a taken offer.
#[derive(Debug)]
pub enum OfferAnswer {
    /// Lines 04–06 of Figure 5 ran: here is the receiver's pre-update
    /// vector, delta-encoded on the channel's acknowledgement stream.
    Ack(Vec<u8>),
    /// The offer's piggybacked vector did not decode (delta-stream
    /// sequence gap): ask the sender to re-offer with a full vector.
    Resync,
}

/// What the sending endpoint observes in answer to its offer.
#[derive(Debug)]
pub enum SendAnswer {
    /// The receiver took the offer and acknowledged it.
    Acked {
        /// The acknowledgement payload (receiver's pre-update vector,
        /// delta-encoded on the reverse stream).
        ack: Vec<u8>,
        /// When the receiver took the offer (locally) or when the offer
        /// was written to the wire (TCP, where the sender cannot observe
        /// the remote take) — the ack-latency sample's starting point.
        taken: Instant,
        /// When the acknowledgement became observable at this endpoint.
        acked: Instant,
    },
    /// The receiver asked for a full-vector resync re-offer.
    ResyncRequested,
}

/// Why a transport operation failed. The runtime maps [`Closed`] to
/// `RuntimeError::PeerTerminated` (a TCP peer closing its socket is the
/// distributed analogue of a thread exiting) and [`Io`] to
/// `RuntimeError::ChannelIo`.
///
/// [`Closed`]: TransportError::Closed
/// [`Io`]: TransportError::Io
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint is gone for good (socket closed, connection
    /// reset). No more traffic will flow on this channel.
    Closed,
    /// The medium failed in a way that is not a clean close (OS error on
    /// read/write, oversized or malformed frame).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "channel closed by peer"),
            TransportError::Io(detail) => write!(f, "channel I/O failure: {detail}"),
        }
    }
}

/// The sending endpoint of one directed rendezvous channel.
///
/// The runtime drives it through one offer cycle per `send`:
/// `poll_ready` until the channel accepts a new offer, `offer`, then
/// `poll_answer` until the receiver acks (or bounces a resync request, in
/// which case the runtime re-offers the same key with a full vector).
/// `retract` removes a still-untaken offer when the send errors out, so
/// survivors inherit a clean channel.
///
/// All waiting is bounded: a poll waits at most `cap` (or the transport's
/// own backstop when `cap` is `None`) before reporting
/// [`Polled::Pending`], so the caller re-checks abort, peer liveness, and
/// timeout budgets at a bounded cadence no matter the medium.
pub trait TxChannel: Send + Sync + fmt::Debug {
    /// Polls until the channel can carry a new offer. Reports leftover
    /// resync debris from an earlier errored exchange (see [`ReadySlot`]).
    fn poll_ready(&self, cap: Option<Duration>) -> Result<Polled<ReadySlot>, TransportError>;

    /// Deposits an offer (program payload plus delta-encoded vector) on
    /// the channel. Must only be called after `poll_ready` returned
    /// [`Polled::Ready`].
    fn offer(&self, key: u64, payload: u64, vector: &[u8]) -> Result<(), TransportError>;

    /// Polls for the receiver's answer to the offer with key `key`.
    /// Answers to any other key are stale debris and are discarded.
    fn poll_answer(
        &self,
        key: u64,
        cap: Option<Duration>,
    ) -> Result<Polled<SendAnswer>, TransportError>;

    /// Removes this endpoint's own offer with key `key` if it is still
    /// sitting untaken, so an errored send leaves no debris blocking the
    /// channel. Best-effort over media where the offer has already left
    /// the machine.
    fn retract(&self, key: u64);
}

/// The receiving endpoint of one directed rendezvous channel.
///
/// The runtime drives it through one take cycle per `receive_from`:
/// `poll_offer` until a message arrives, then exactly one `answer` — an
/// [`OfferAnswer::Ack`] completing the rendezvous, or an
/// [`OfferAnswer::Resync`] bouncing the offer back for a full-vector
/// re-offer (after which it polls again).
pub trait RxChannel: Send + Sync + fmt::Debug {
    /// Polls until the sender's offer is observable, and takes it.
    fn poll_offer(&self, cap: Option<Duration>) -> Result<Polled<RawOffer>, TransportError>;

    /// Replies to the most recently taken offer.
    fn answer(&self, answer: OfferAnswer) -> Result<(), TransportError>;
}

/// How many wait steps a local poll may take for this cap. A
/// `Some(Duration::ZERO)` cap is the runtime's fast-path probe: it must be
/// a pure state check under one uninterrupted lock hold. Even a zero
/// condvar wait is a syscall that releases the lock and can yield the CPU
/// to the peer (deterministically so on a single-core host), which would
/// let the whole exchange complete "instantly" inside the probe and starve
/// the caller's park/wakeup accounting of ever observing a wait.
fn waits(cap: Option<Duration>) -> usize {
    usize::from(cap != Some(Duration::ZERO))
}

/// [`TxChannel`] over the in-process [`ChannelSlot`]: the PR 2 matcher's
/// sender half, unchanged in semantics — one mutex+condvar slot carries
/// the whole exchange and a parked endpoint consumes no CPU.
#[derive(Debug)]
pub(crate) struct LocalTx {
    slot: Arc<ChannelSlot>,
    matcher: Matcher,
}

impl LocalTx {
    pub(crate) fn new(slot: Arc<ChannelSlot>, matcher: Matcher) -> Self {
        LocalTx { slot, matcher }
    }
}

impl TxChannel for LocalTx {
    fn poll_ready(&self, cap: Option<Duration>) -> Result<Polled<ReadySlot>, TransportError> {
        let mut st = self.slot.lock();
        // In a healthy run the slot is Empty here (each exchange on a
        // channel completes before the next), but an aborted rendezvous
        // can leave debris; waiting keeps the state machine
        // self-consistent and lets the caller's checks surface the real
        // error.
        for pass in 0..=waits(cap) {
            match &*st {
                SlotState::Empty => {
                    return Ok(Polled::Ready(ReadySlot {
                        resync_debris: false,
                    }))
                }
                SlotState::ResyncRequested => {
                    // Debris from an earlier errored send on this channel:
                    // the receiver asked for a resync nobody serviced.
                    *st = SlotState::Empty;
                    return Ok(Polled::Ready(ReadySlot {
                        resync_debris: true,
                    }));
                }
                _ if pass < waits(cap) => st = self.slot.wait_step(st, self.matcher, cap),
                _ => {}
            }
        }
        Ok(Polled::Pending)
    }

    fn offer(&self, key: u64, payload: u64, vector: &[u8]) -> Result<(), TransportError> {
        let mut st = self.slot.lock();
        *st = SlotState::Offered {
            wire: Wire {
                key,
                payload,
                vector: vector.to_vec(),
            },
            at: Instant::now(),
        };
        self.slot.notify();
        Ok(())
    }

    fn poll_answer(
        &self,
        key: u64,
        cap: Option<Duration>,
    ) -> Result<Polled<SendAnswer>, TransportError> {
        let _ = key; // one offer in flight per slot: every answer is ours
        let mut st = self.slot.lock();
        for pass in 0..=waits(cap) {
            match std::mem::replace(&mut *st, SlotState::Empty) {
                SlotState::Acked { ack, taken, acked } => {
                    self.slot.notify();
                    return Ok(Polled::Ready(SendAnswer::Acked { ack, taken, acked }));
                }
                SlotState::ResyncRequested => {
                    self.slot.notify();
                    return Ok(Polled::Ready(SendAnswer::ResyncRequested));
                }
                other => {
                    *st = other;
                    if pass < waits(cap) {
                        st = self.slot.wait_step(st, self.matcher, cap);
                    }
                }
            }
        }
        Ok(Polled::Pending)
    }

    fn retract(&self, key: u64) {
        let mut st = self.slot.lock();
        if matches!(&*st, SlotState::Offered { wire, .. } if wire.key == key) {
            *st = SlotState::Empty;
            self.slot.notify();
        }
    }
}

/// [`RxChannel`] over the in-process [`ChannelSlot`]: the PR 2 matcher's
/// receiver half. The take (in `poll_offer`) and the ack deposit (in
/// `answer`) are separate lock holds, which is safe: while the taken
/// offer is being processed the slot reads Empty, and the parked sender
/// simply keeps waiting for the answer deposit.
#[derive(Debug)]
pub(crate) struct LocalRx {
    slot: Arc<ChannelSlot>,
    matcher: Matcher,
    /// When `poll_offer` took the in-flight offer — stamped into the
    /// `Acked` deposit so the sender's ack-latency sample starts at the
    /// take, exactly as the pre-trait matcher measured it.
    taken: Mutex<Option<Instant>>,
}

impl LocalRx {
    pub(crate) fn new(slot: Arc<ChannelSlot>, matcher: Matcher) -> Self {
        LocalRx {
            slot,
            matcher,
            taken: Mutex::new(None),
        }
    }
}

impl RxChannel for LocalRx {
    fn poll_offer(&self, cap: Option<Duration>) -> Result<Polled<RawOffer>, TransportError> {
        let mut st = self.slot.lock();
        for pass in 0..=waits(cap) {
            match std::mem::replace(&mut *st, SlotState::Empty) {
                SlotState::Offered { wire, at } => {
                    *self.taken.lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(Instant::now());
                    return Ok(Polled::Ready(RawOffer {
                        key: wire.key,
                        payload: wire.payload,
                        vector: wire.vector,
                        offered_at: at,
                    }));
                }
                other => {
                    *st = other;
                    if pass < waits(cap) {
                        st = self.slot.wait_step(st, self.matcher, cap);
                    }
                }
            }
        }
        Ok(Polled::Pending)
    }

    fn answer(&self, answer: OfferAnswer) -> Result<(), TransportError> {
        let taken = self
            .taken
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .unwrap_or_else(Instant::now);
        let mut st = self.slot.lock();
        *st = match answer {
            OfferAnswer::Ack(ack) => SlotState::Acked {
                ack,
                taken,
                acked: Instant::now(),
            },
            OfferAnswer::Resync => SlotState::ResyncRequested,
        };
        self.slot.notify();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (LocalTx, LocalRx) {
        let slot = Arc::new(ChannelSlot::new());
        (
            LocalTx::new(Arc::clone(&slot), Matcher::Parking),
            LocalRx::new(slot, Matcher::Parking),
        )
    }

    #[test]
    fn local_offer_ack_roundtrip() {
        let (tx, rx) = pair();
        assert!(matches!(
            tx.poll_ready(Some(Duration::ZERO)),
            Ok(Polled::Ready(ReadySlot {
                resync_debris: false
            }))
        ));
        tx.offer(7, 42, &[1, 2, 3]).unwrap();
        let offer = match rx.poll_offer(Some(Duration::ZERO)) {
            Ok(Polled::Ready(o)) => o,
            other => panic!("expected offer, got {other:?}"),
        };
        assert_eq!((offer.key, offer.payload), (7, 42));
        assert_eq!(offer.vector, vec![1, 2, 3]);
        rx.answer(OfferAnswer::Ack(vec![9])).unwrap();
        match tx.poll_answer(7, Some(Duration::ZERO)) {
            Ok(Polled::Ready(SendAnswer::Acked { ack, .. })) => assert_eq!(ack, vec![9]),
            other => panic!("expected ack, got {other:?}"),
        }
        // The channel is clean for the next exchange.
        assert!(matches!(
            tx.poll_ready(Some(Duration::ZERO)),
            Ok(Polled::Ready(_))
        ));
    }

    #[test]
    fn local_resync_bounce_and_debris() {
        let (tx, rx) = pair();
        tx.offer(1, 0, &[5]).unwrap();
        assert!(matches!(
            rx.poll_offer(Some(Duration::ZERO)),
            Ok(Polled::Ready(_))
        ));
        rx.answer(OfferAnswer::Resync).unwrap();
        assert!(matches!(
            tx.poll_answer(1, Some(Duration::ZERO)),
            Ok(Polled::Ready(SendAnswer::ResyncRequested))
        ));
        // An unserviced resync request surfaces as debris on the next send.
        rx.answer(OfferAnswer::Resync).unwrap();
        assert!(matches!(
            tx.poll_ready(Some(Duration::ZERO)),
            Ok(Polled::Ready(ReadySlot {
                resync_debris: true
            }))
        ));
    }

    #[test]
    fn local_pending_and_retract() {
        let (tx, rx) = pair();
        assert!(matches!(
            rx.poll_offer(Some(Duration::ZERO)),
            Ok(Polled::Pending)
        ));
        tx.offer(3, 1, &[]).unwrap();
        assert!(matches!(
            tx.poll_answer(3, Some(Duration::ZERO)),
            Ok(Polled::Pending)
        ));
        // Another offer occupies the slot: not ready.
        assert!(matches!(
            tx.poll_ready(Some(Duration::ZERO)),
            Ok(Polled::Pending)
        ));
        tx.retract(99); // wrong key: no-op
        assert!(matches!(
            rx.poll_offer(Some(Duration::ZERO)),
            Ok(Polled::Ready(_))
        ));
        tx.offer(4, 2, &[]).unwrap();
        tx.retract(4);
        assert!(matches!(
            rx.poll_offer(Some(Duration::ZERO)),
            Ok(Polled::Pending)
        ));
    }
}
