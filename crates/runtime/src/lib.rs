//! A threaded rendezvous message-passing runtime with online timestamp
//! piggybacking — the Figure 5 protocol running on real OS threads.
//!
//! The paper assumes the synchronous-ordering implementation of Murty &
//! Garg: every program message is acknowledged, and the vector clocks ride
//! on the message and its acknowledgement. This crate realizes exactly
//! that:
//!
//! * each process runs on its own thread and talks to its neighbors over
//!   **per-channel rendezvous slots** (a send blocks until the receiver
//!   takes the message — true rendezvous semantics; blocked endpoints park
//!   on the slot's condvar and consume no CPU);
//! * a [`ProcessCtx::send`] deposits `(payload, key, vector)` into the
//!   channel slot, then parks until the receiver's acknowledgement — the
//!   receiver's pre-update vector, deposited under the same lock hold as
//!   the take — wakes it; both sides merge and increment exactly as in
//!   Figure 5 and deterministically agree on the message's timestamp;
//! * every process logs its sends, receives and internal events; after the
//!   run, [`RuntimeRun::reconstruct`] rebuilds the
//!   [`SyncComputation`](synctime_trace::SyncComputation) from
//!   the per-process logs (proving they are realizable — the runtime *is*
//!   synchronous) together with the piggybacked timestamps, which
//!   integration tests compare against the simulator's.
//!
//! # Example
//!
//! ```
//! use synctime_graph::{decompose, topology};
//! use synctime_runtime::Runtime;
//!
//! let topo = topology::star(2); // P0 is the hub; P1, P2 are leaves
//! let dec = decompose::best_known(&topo);
//! let run = Runtime::new(&topo, &dec).run(vec![
//!     Box::new(|ctx| {
//!         let (x, _) = ctx.receive_from(1)?;
//!         let (y, _) = ctx.receive_from(2)?;
//!         ctx.send(1, x + y)?;
//!         ctx.send(2, x + y)?;
//!         Ok(())
//!     }),
//!     Box::new(|ctx| {
//!         ctx.send(0, 20)?;
//!         let (sum, _) = ctx.receive_from(0)?;
//!         assert_eq!(sum, 62);
//!         Ok(())
//!     }),
//!     Box::new(|ctx| {
//!         ctx.send(0, 42)?;
//!         let (sum, _) = ctx.receive_from(0)?;
//!         assert_eq!(sum, 62);
//!         Ok(())
//!     }),
//! ])?;
//! let (computation, stamps) = run.reconstruct()?;
//! assert_eq!(computation.message_count(), 4);
//! assert_eq!(stamps.dim(), 1); // a star needs a single integer
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fault;
mod matcher;
mod runtime;
mod transport;

pub use error::RuntimeError;
pub use fault::{FaultAction, FaultInjector};
pub use matcher::{Matcher, BLOCK_POLL};
pub use runtime::{
    reconstruct_from_logs, AppliedReconfigure, Behavior, LiveObservation, LogEntry, PersistEvent,
    ProcessCtx, ProcessRun, Runtime, RuntimeRun, DEFAULT_EVENT_RING, DEFAULT_RENDEZVOUS_RETRIES,
    DEFAULT_WATCHDOG_TIMEOUT,
};
pub use transport::{
    OfferAnswer, Polled, RawOffer, ReadySlot, RxChannel, SendAnswer, TransportError, TxChannel,
};
// Re-exported so downstream users can consume diagnoses and stats without
// depending on `synctime-obs` directly.
pub use synctime_obs::{DeadlockDiagnosis, RunStats, WaitEdge, WaitOp};
