use std::fmt;

use synctime_obs::DeadlockDiagnosis;
use synctime_trace::ProcessId;

/// Errors surfaced by the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A behavior addressed a process with no channel to it (not adjacent
    /// in the topology, or out of range).
    NoChannel {
        /// The process attempting the operation.
        from: ProcessId,
        /// The addressed peer.
        to: ProcessId,
    },
    /// The peer's thread terminated (finished or panicked) while this
    /// process was blocked on a rendezvous with it.
    PeerTerminated {
        /// The peer that went away.
        peer: ProcessId,
    },
    /// A behavior panicked; the runtime aborts the run.
    BehaviorPanicked {
        /// The panicking process.
        process: ProcessId,
    },
    /// The channel's edge is missing from the decomposition, so no vector
    /// component exists for it.
    ChannelNotInDecomposition {
        /// The sending process.
        from: ProcessId,
        /// The receiving process.
        to: ProcessId,
    },
    /// The watchdog found every live process blocked in a rendezvous beyond
    /// the configured timeout and aborted the run. The diagnosis names the
    /// wait-for cycle (who is blocked on whom, and for how long).
    Deadlock {
        /// The wait-for graph snapshot taken when the watchdog fired.
        diagnosis: DeadlockDiagnosis,
    },
    /// A per-channel delta stream desynchronised beyond what the resync
    /// protocol can repair (a malformed frame, a desynchronised
    /// acknowledgement stream, or more consecutive gaps than the resync
    /// budget allows). Contained to the channel: other channels' streams
    /// are unaffected.
    DeltaDesync {
        /// The stream's sending endpoint.
        from: ProcessId,
        /// The stream's receiving endpoint.
        to: ProcessId,
    },
    /// A rendezvous wait exceeded the configured timeout, including every
    /// backoff retry (see `Runtime::with_rendezvous_timeout`).
    RendezvousTimeout {
        /// The peer the operation was waiting on.
        peer: ProcessId,
        /// Total time spent waiting across all retries, in milliseconds.
        waited_ms: u64,
    },
    /// A configured fault injector terminated this process (a scheduled
    /// crash from a fault plan — see the `FaultInjector` trait).
    FaultInjected {
        /// The crashed process.
        process: ProcessId,
        /// The operation index at which the crash fired.
        at_op: u64,
    },
    /// The transport under a channel failed in a way that is not a clean
    /// peer shutdown: an OS-level I/O error or a malformed frame on a
    /// socket-backed channel (see `synctime_runtime::TransportError`).
    /// Never produced by the in-process transport.
    ChannelIo {
        /// The peer on the failed channel.
        peer: ProcessId,
        /// The transport's description of the failure.
        detail: String,
    },
    /// The selected clock backend cannot hold one component per edge group
    /// of the run's decomposition (e.g. `--clock fixed` on a topology that
    /// decomposes to more groups than the backend has lanes). Pick `dense`,
    /// `tree`, or `auto` instead; nothing truncates.
    ClockUnsupported {
        /// The decomposition's dimension.
        dim: usize,
        /// The backend's maximum dimension.
        capacity: usize,
    },
    /// A reconfiguration was applied out of order: `Runtime::apply_reconfigure`
    /// requires each applied epoch to be the successor of the runtime's
    /// current epoch, so no topology change can be skipped or replayed.
    EpochMismatch {
        /// The epoch the runtime could have accepted (current + 1).
        expected: u64,
        /// The epoch the reconfiguration carried.
        got: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoChannel { from, to } => {
                write!(f, "process {from} has no channel to process {to}")
            }
            RuntimeError::PeerTerminated { peer } => {
                write!(f, "peer process {peer} terminated during a rendezvous")
            }
            RuntimeError::BehaviorPanicked { process } => {
                write!(f, "behavior of process {process} panicked")
            }
            RuntimeError::ChannelNotInDecomposition { from, to } => {
                write!(f, "channel ({from}, {to}) belongs to no edge group")
            }
            RuntimeError::Deadlock { diagnosis } => {
                write!(f, "rendezvous deadlock: {diagnosis}")
            }
            RuntimeError::DeltaDesync { from, to } => {
                write!(
                    f,
                    "delta stream on channel ({from} -> {to}) desynchronised beyond recovery"
                )
            }
            RuntimeError::RendezvousTimeout { peer, waited_ms } => {
                write!(
                    f,
                    "rendezvous with process {peer} timed out after {waited_ms}ms (all retries exhausted)"
                )
            }
            RuntimeError::FaultInjected { process, at_op } => {
                write!(
                    f,
                    "injected fault crashed process {process} at operation {at_op}"
                )
            }
            RuntimeError::ChannelIo { peer, detail } => {
                write!(
                    f,
                    "transport failure on channel to process {peer}: {detail}"
                )
            }
            RuntimeError::ClockUnsupported { dim, capacity } => {
                write!(
                    f,
                    "clock backend holds at most {capacity} components, but the decomposition has {dim} edge groups"
                )
            }
            RuntimeError::EpochMismatch { expected, got } => {
                write!(
                    f,
                    "reconfiguration epoch mismatch: applied epoch {got}, runtime expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
