use std::fmt;

use synctime_obs::DeadlockDiagnosis;
use synctime_trace::ProcessId;

/// Errors surfaced by the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A behavior addressed a process with no channel to it (not adjacent
    /// in the topology, or out of range).
    NoChannel {
        /// The process attempting the operation.
        from: ProcessId,
        /// The addressed peer.
        to: ProcessId,
    },
    /// The peer's thread terminated (finished or panicked) while this
    /// process was blocked on a rendezvous with it.
    PeerTerminated {
        /// The peer that went away.
        peer: ProcessId,
    },
    /// A behavior panicked; the runtime aborts the run.
    BehaviorPanicked {
        /// The panicking process.
        process: ProcessId,
    },
    /// The channel's edge is missing from the decomposition, so no vector
    /// component exists for it.
    ChannelNotInDecomposition {
        /// The sending process.
        from: ProcessId,
        /// The receiving process.
        to: ProcessId,
    },
    /// The watchdog found every live process blocked in a rendezvous beyond
    /// the configured timeout and aborted the run. The diagnosis names the
    /// wait-for cycle (who is blocked on whom, and for how long).
    Deadlock {
        /// The wait-for graph snapshot taken when the watchdog fired.
        diagnosis: DeadlockDiagnosis,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoChannel { from, to } => {
                write!(f, "process {from} has no channel to process {to}")
            }
            RuntimeError::PeerTerminated { peer } => {
                write!(f, "peer process {peer} terminated during a rendezvous")
            }
            RuntimeError::BehaviorPanicked { process } => {
                write!(f, "behavior of process {process} panicked")
            }
            RuntimeError::ChannelNotInDecomposition { from, to } => {
                write!(f, "channel ({from}, {to}) belongs to no edge group")
            }
            RuntimeError::Deadlock { diagnosis } => {
                write!(f, "rendezvous deadlock: {diagnosis}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
