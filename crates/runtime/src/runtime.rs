use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use synctime_core::clock::{ClockBackend, DenseVec, FixedArray16, TreeClock};
use synctime_core::online::GenericProcessClock;
use synctime_core::wire::{
    ack_frame_bytes, offer_frame_bytes, resync_frame_bytes, StreamDecoder, StreamEncoder,
    StreamError,
};
use synctime_core::{CoreError, MessageTimestamps, VectorTime};
use synctime_graph::{Edge, EdgeDecomposition, Graph, GroupRemap};
use synctime_obs::{DeadlockDiagnosis, Recorder, RunStats, WaitEdge, WaitOp};
use synctime_trace::{EventKind, MessageId, ProcessId, SyncComputation, TraceError};

use crate::fault::{FaultAction, FaultInjector};
use crate::matcher::ChannelSlot;
use crate::transport::{
    LocalRx, LocalTx, OfferAnswer, Polled, RxChannel, SendAnswer, TransportError, TxChannel,
};
use crate::{Matcher, RuntimeError};

/// Locks a mutex, recovering from poisoning instead of panicking: every
/// value behind these locks is written atomically from the holder's
/// perspective (whole-`Option` replacements), so a panic between lock and
/// unlock cannot leave a torn value — survivors may safely keep going.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Most consecutive resync round-trips one rendezvous tolerates before the
/// channel's data stream is declared desynchronised beyond recovery.
const MAX_RESYNC: u32 = 4;

/// Default number of backoff retries a rendezvous timeout allows before
/// [`RuntimeError::RendezvousTimeout`] surfaces (each retry doubles the
/// previous wait budget).
pub const DEFAULT_RENDEZVOUS_RETRIES: u32 = 3;

/// A process's registered wait while parked in a rendezvous operation.
#[derive(Debug, Clone, Copy)]
struct BlockedOn {
    op: WaitOp,
    peer: ProcessId,
    since: Instant,
}

/// State shared between the process threads and the watchdog.
#[derive(Debug)]
struct RunShared {
    /// What each process is currently parked on, if anything.
    blocked: Vec<Mutex<Option<BlockedOn>>>,
    /// Whether each process's behavior is still running.
    live: Vec<AtomicBool>,
    /// Set by the watchdog to make every parked operation bail out.
    abort: AtomicBool,
    /// Set once every behavior has been joined; stops the watchdog.
    finished: AtomicBool,
    /// The diagnosis backing `abort`, filled in before the flag is set.
    diagnosis: Mutex<Option<DeadlockDiagnosis>>,
    /// Every channel slot of the run, so aborts and process exits can wake
    /// parked threads promptly (the park backstop makes this best-effort
    /// redundancy, not a correctness requirement).
    slots: Vec<Arc<ChannelSlot>>,
}

impl RunShared {
    fn new(n: usize, slots: Vec<Arc<ChannelSlot>>) -> Self {
        RunShared {
            blocked: (0..n).map(|_| Mutex::new(None)).collect(),
            live: (0..n).map(|_| AtomicBool::new(true)).collect(),
            abort: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            diagnosis: Mutex::new(None),
            slots,
        }
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Wakes every thread parked on any slot so it re-checks abort and
    /// peer-liveness conditions.
    fn wake_all(&self) {
        for slot in &self.slots {
            slot.wake();
        }
    }

    fn deadlock_error(&self) -> RuntimeError {
        let diagnosis = lock_recover(&self.diagnosis)
            .clone()
            .unwrap_or(DeadlockDiagnosis {
                waiting: Vec::new(),
                cycle: Vec::new(),
                terminated: Vec::new(),
            });
        RuntimeError::Deadlock { diagnosis }
    }
}

/// The watchdog body: periodically snapshots the parked-thread registry,
/// builds the wait-for graph over threads parked beyond `timeout`, and
/// aborts the run as soon as that graph contains a cycle.
///
/// Unlike PR 1's detector (which required *every* live process to be
/// blocked), cycle detection reports partial deadlocks — a wait-for cycle
/// among a subset of processes aborts the run even while unrelated
/// processes keep computing — and never flags slow-but-live runs: a chain
/// of parked threads whose head is merely napping has no cycle, no matter
/// how long the chain has been parked.
fn watchdog_loop(shared: &RunShared, timeout: Duration) {
    let poll = (timeout / 8).clamp(Duration::from_millis(1), Duration::from_millis(50));
    loop {
        std::thread::sleep(poll);
        if shared.finished.load(Ordering::Acquire) || shared.aborted() {
            return;
        }
        let mut expired = Vec::new();
        let mut terminated = Vec::new();
        for (p, live) in shared.live.iter().enumerate() {
            if !live.load(Ordering::Acquire) {
                terminated.push(p);
                continue;
            }
            let slot = lock_recover(&shared.blocked[p]);
            if let Some(b) = &*slot {
                if b.since.elapsed() >= timeout {
                    expired.push(WaitEdge {
                        process: p,
                        op: b.op,
                        peer: b.peer,
                        blocked_ms: b.since.elapsed().as_millis() as u64,
                    });
                }
            }
        }
        if expired.is_empty() {
            continue;
        }
        // Waits on terminated peers resolve with `PeerTerminated` on their
        // own — excluding them from cycle extraction keeps an injected
        // crash from being misreported as a deadlock.
        let diagnosis = DeadlockDiagnosis::from_waiting_filtered(expired, terminated);
        if diagnosis.cycle.is_empty() {
            // Parked threads, but every wait chain dead-ends in a process
            // that is still making progress: slow, not deadlocked.
            continue;
        }
        *lock_recover(&shared.diagnosis) = Some(diagnosis);
        shared.abort.store(true, Ordering::Release);
        shared.wake_all();
        return;
    }
}

/// A live notification emitted to an observer as each rendezvous completes
/// (from the sender's side, once the acknowledgement confirmed the agreed
/// timestamp). This is what a monitoring service consumes — see
/// `synctime-detect`'s `monitor` module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveObservation {
    /// The message's globally unique key (sender id in the high bits).
    pub key: u64,
    /// The sending process.
    pub sender: ProcessId,
    /// The receiving process.
    pub receiver: ProcessId,
    /// The agreed timestamp.
    pub stamp: VectorTime,
}

/// Entries buffered per process before a burst is delivered to the log
/// sink. Bounds both the wakeup amortisation and how far a durable
/// writer can lag a live process (a crash loses at most this many
/// unflushed entries per process — recovery trims to a consistent
/// prefix regardless).
const SINK_BATCH: usize = 64;

/// One log entry on its way to a durable store: the entry itself plus the
/// coordinates that make replay order-independent — which process logged
/// it and at which position of that process's log. Emitted to the sink
/// installed by [`Runtime::with_log_sink`] in per-process bursts (a
/// small buffer, flushed when full and when the behavior exits), so an
/// external writer (the `synctime-store` ingest thread) sees exactly the
/// log the run keeps without the run paying a receiver wakeup per entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistEvent {
    /// The process whose log gained the entry.
    pub process: ProcessId,
    /// The entry's index in that process's log (0-based, dense): the
    /// replay key a store sorts and gap-checks on.
    pub pseq: u64,
    /// The entry, exactly as logged.
    pub entry: LogEntry,
}

/// One entry of a process's execution log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// This process sent a message.
    Sent {
        /// The receiver.
        to: ProcessId,
        /// The message's reconstruction key.
        key: u64,
        /// The agreed timestamp.
        stamp: VectorTime,
    },
    /// This process received a message.
    Received {
        /// The sender.
        from: ProcessId,
        /// The message's reconstruction key.
        key: u64,
        /// The agreed timestamp.
        stamp: VectorTime,
    },
    /// A local event.
    Internal,
}

/// The runtime's process clock, dispatching the Figure 5 steps to the
/// selected [`ClockBackend`]. Every backend produces identical stamps —
/// the protocol is deterministic component arithmetic — so backend choice
/// changes merge cost, never a single logged byte.
#[derive(Debug, Clone)]
enum BackendClock {
    Dense(GenericProcessClock<DenseVec>),
    Tree(GenericProcessClock<TreeClock>),
    Fixed(GenericProcessClock<FixedArray16>),
}

impl BackendClock {
    /// Builds the clock the resolved backend calls for, starting from
    /// `initial` when given (the uniform baseline a reconfigured epoch
    /// resumes from) and from zero otherwise.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ClockUnsupported`] when the backend cannot hold
    /// `dim` components.
    fn new(
        backend: ClockBackend,
        dim: usize,
        initial: Option<&VectorTime>,
    ) -> Result<Self, RuntimeError> {
        let unsupported = |_: CoreError| RuntimeError::ClockUnsupported {
            dim,
            capacity: ClockBackend::FIXED_CAPACITY,
        };
        use synctime_core::clock::Clock;
        Ok(match backend.resolve(dim).map_err(unsupported)? {
            ClockBackend::Tree => BackendClock::Tree(match initial {
                Some(v) => {
                    GenericProcessClock::from(TreeClock::from_vector(v).map_err(unsupported)?)
                }
                None => GenericProcessClock::try_new(dim).map_err(unsupported)?,
            }),
            ClockBackend::Fixed => BackendClock::Fixed(match initial {
                Some(v) => {
                    GenericProcessClock::from(FixedArray16::from_vector(v).map_err(unsupported)?)
                }
                None => GenericProcessClock::try_new(dim).map_err(unsupported)?,
            }),
            _ => BackendClock::Dense(match initial {
                Some(v) => GenericProcessClock::from(v.clone()),
                None => Self::dense_clock(dim),
            }),
        })
    }

    /// The universal dense clock — infallible at every dimension.
    fn dense_clock(dim: usize) -> GenericProcessClock<DenseVec> {
        GenericProcessClock::from(VectorTime::zero(dim))
    }

    /// The current local clock in dense interchange form.
    fn current_vector(&self) -> VectorTime {
        match self {
            BackendClock::Dense(c) => c.current_vector(),
            BackendClock::Tree(c) => c.current_vector(),
            BackendClock::Fixed(c) => c.current_vector(),
        }
    }

    /// The vector to piggyback on an outgoing message (line 02).
    fn send_payload(&self) -> VectorTime {
        self.current_vector()
    }

    /// Receiver side of the rendezvous (lines 04–07). The tree backend
    /// merges through the Singhal–Kshemkalyani change-set when the stream
    /// decoder recovered one — its sublinear path; dense and fixed merge
    /// the reconstructed full vector, their fastest path.
    fn on_receive(
        &mut self,
        vector: &VectorTime,
        changes: Option<&[(usize, u64)]>,
        group: usize,
    ) -> Result<(VectorTime, VectorTime), CoreError> {
        match self {
            BackendClock::Dense(c) => c.on_receive_interchange(vector, None, group),
            BackendClock::Tree(c) => c.on_receive_interchange(vector, changes, group),
            BackendClock::Fixed(c) => c.on_receive_interchange(vector, None, group),
        }
    }

    /// Sender side of the rendezvous completion (lines 09–11).
    fn on_acknowledgement(
        &mut self,
        ack: &VectorTime,
        changes: Option<&[(usize, u64)]>,
        group: usize,
    ) -> Result<VectorTime, CoreError> {
        match self {
            BackendClock::Dense(c) => c.on_acknowledgement_interchange(ack, None, group),
            BackendClock::Tree(c) => c.on_acknowledgement_interchange(ack, changes, group),
            BackendClock::Fixed(c) => c.on_acknowledgement_interchange(ack, None, group),
        }
    }
}

/// The per-process API available to a [`Behavior`]: blocking rendezvous
/// sends and receives with automatic timestamp piggybacking, plus internal
/// events.
#[derive(Debug)]
pub struct ProcessCtx {
    id: ProcessId,
    clock: BackendClock,
    decomposition: EdgeDecomposition,
    observer: Option<std::sync::mpsc::Sender<LiveObservation>>,
    sink: Option<std::sync::mpsc::Sender<Vec<PersistEvent>>>,
    /// Entries awaiting delivery to `sink`, shipped as one `Vec` per
    /// burst of [`SINK_BATCH`] (and at behavior exit): one send — one
    /// allocation handoff, one receiver wakeup — per burst instead of
    /// one per entry keeps durable ingestion off the rendezvous fast
    /// path even on a single hardware thread.
    sink_buf: Vec<PersistEvent>,
    seq: u64,
    /// Sending endpoint of each outgoing channel, keyed by receiver. The
    /// medium behind the trait object is interchangeable: in-process slots
    /// for [`Runtime::run`], sockets for [`Runtime::run_process`].
    tx: HashMap<ProcessId, Arc<dyn TxChannel>>,
    /// Receiving endpoint of each incoming channel, keyed by sender.
    rx: HashMap<ProcessId, Arc<dyn RxChannel>>,
    log: Vec<LogEntry>,
    shared: Arc<RunShared>,
    recorder: Arc<Recorder>,
    /// What one rendezvous would cost with full fixed-width vectors: the
    /// data message (key + payload + `d`-component vector) plus the
    /// acknowledgement (another `d`-component vector). The before-deltas
    /// baseline reported as `wire_bytes_full`.
    rendezvous_bytes_full: u64,
    /// Delta encoder for vectors piggybacked on outgoing data messages,
    /// one sequence-framed Singhal–Kshemkalyani stream per receiver. The
    /// per-channel FIFO slot keeps each stream in lock-step with the
    /// receiver's `dec_data`; the sequence framing makes any slip
    /// detectable and the resync protocol repairs it with a full frame.
    enc_data: StreamEncoder,
    /// Delta decoder for vectors arriving on incoming data messages, one
    /// stream per sender.
    dec_data: StreamDecoder,
    /// Delta encoder for acknowledgement vectors sent back to senders.
    enc_ack: StreamEncoder,
    /// Delta decoder for acknowledgement vectors coming back from
    /// receivers.
    dec_ack: StreamDecoder,
    /// Fault source consulted at every operation boundary, if any.
    fault: Option<Arc<dyn FaultInjector>>,
    /// This process's rendezvous operations so far (`send` +
    /// `receive_from` calls, in program order) — the index fault plans
    /// schedule against.
    op_index: u64,
    /// An armed [`FaultAction::DesyncNext`] waiting for the next send on
    /// which it can actually fire (a virgin stream cannot desync — its
    /// opening full frame re-anchors unconditionally).
    pending_desync: bool,
    /// Per-operation rendezvous wait bound, if configured.
    rendezvous_timeout: Option<Duration>,
    /// Backoff retries granted before a timeout surfaces.
    rendezvous_retries: u32,
}

/// Per-operation bookkeeping for the optional rendezvous timeout: each
/// expiry either re-arms with a doubled budget (bounded retry backoff) or
/// reports the total time waited so the caller can surface
/// [`RuntimeError::RendezvousTimeout`].
#[derive(Debug, Clone, Copy)]
struct WaitBudget {
    started: Instant,
    deadline: Option<Instant>,
    step: Duration,
    retries_left: u32,
}

impl WaitBudget {
    fn new(timeout: Option<Duration>, retries: u32) -> Self {
        let now = Instant::now();
        WaitBudget {
            started: now,
            deadline: timeout.and_then(|t| now.checked_add(t)),
            step: timeout.map(|t| t * 2).unwrap_or_default(),
            retries_left: retries,
        }
    }

    /// Time left before the current deadline; `None` without a timeout.
    fn cap(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// `Err(waited_ms)` once the deadline has expired with no retries
    /// left; otherwise re-arms expired deadlines with exponential backoff.
    fn check(&mut self) -> Result<(), u64> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let now = Instant::now();
        if now < deadline {
            return Ok(());
        }
        if self.retries_left == 0 {
            return Err(self.started.elapsed().as_millis() as u64);
        }
        self.retries_left -= 1;
        self.deadline = now.checked_add(self.step);
        self.step = self.step.saturating_mul(2);
        Ok(())
    }
}

impl ProcessCtx {
    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// A snapshot of the current local vector (in dense interchange form,
    /// whichever clock backend the run uses).
    pub fn clock(&self) -> VectorTime {
        self.clock.current_vector()
    }

    fn enter_blocked(&self, op: WaitOp, peer: ProcessId) {
        *lock_recover(&self.shared.blocked[self.id]) = Some(BlockedOn {
            op,
            peer,
            since: Instant::now(),
        });
    }

    /// Clears this process's parked registration, returning how long it
    /// was held.
    fn exit_blocked(&self) -> Duration {
        lock_recover(&self.shared.blocked[self.id])
            .take()
            .map(|b| b.since.elapsed())
            .unwrap_or_default()
    }

    /// Bookkeeping between two bounded transport polls that came back
    /// [`Polled::Pending`]: checks abort, peer liveness, and the rendezvous
    /// timeout budget, and registers the wait with the watchdog on the
    /// first pending poll. Returns the wait cap for the next poll.
    ///
    /// On an error return the registration has already been cleared.
    fn pending_step(
        &self,
        op: WaitOp,
        peer: ProcessId,
        parked: &mut bool,
        budget: &mut WaitBudget,
    ) -> Result<Option<Duration>, RuntimeError> {
        if self.shared.aborted() {
            if *parked {
                self.exit_blocked();
            }
            return Err(self.shared.deadlock_error());
        }
        if !self.shared.live[peer].load(Ordering::Acquire) {
            if *parked {
                self.exit_blocked();
            }
            return Err(self.peer_gone(peer));
        }
        if let Err(waited_ms) = budget.check() {
            if *parked {
                self.exit_blocked();
            }
            return Err(RuntimeError::RendezvousTimeout { peer, waited_ms });
        }
        if !*parked {
            *parked = true;
            self.enter_blocked(op, peer);
        }
        Ok(budget.cap())
    }

    /// Maps a transport failure on the channel to `peer` into the runtime
    /// error the behavior sees: a clean close is the peer terminating (a
    /// TCP peer closing its socket is the distributed analogue of a thread
    /// exiting), anything else is a channel I/O failure.
    fn channel_error(&self, peer: ProcessId, e: TransportError) -> RuntimeError {
        match e {
            TransportError::Closed => self.peer_gone(peer),
            TransportError::Io(detail) => RuntimeError::ChannelIo { peer, detail },
        }
    }

    /// Finishes a parked phase: clears the registration and accumulates the
    /// blocked time, returning it.
    fn unpark(&self, parked: bool) -> Duration {
        if parked {
            self.exit_blocked()
        } else {
            Duration::ZERO
        }
    }

    /// The error for a vanished peer: a peer bailing out of a watchdog
    /// abort also stops being live, so during an abort the deadlock
    /// diagnosis is the real story, not the peer's termination.
    fn peer_gone(&self, peer: ProcessId) -> RuntimeError {
        if self.shared.aborted() {
            self.shared.deadlock_error()
        } else {
            RuntimeError::PeerTerminated { peer }
        }
    }

    /// Consults the fault injector at an operation boundary (the entry of
    /// every `send`/`receive_from`, before any channel slot is touched).
    /// Crashes surface as [`RuntimeError::FaultInjected`]; delays sleep
    /// inline; desyncs arm the sticky `pending_desync` flag consumed by
    /// the next send.
    fn fault_check(&mut self) -> Result<(), RuntimeError> {
        let at_op = self.op_index;
        self.op_index += 1;
        let Some(injector) = &self.fault else {
            return Ok(());
        };
        match injector.action(self.id, at_op) {
            FaultAction::None => Ok(()),
            FaultAction::Crash => {
                self.recorder.process(self.id).record_fault();
                Err(RuntimeError::FaultInjected {
                    process: self.id,
                    at_op,
                })
            }
            FaultAction::Delay(d) => {
                self.recorder.process(self.id).record_fault();
                std::thread::sleep(d);
                Ok(())
            }
            FaultAction::DesyncNext => {
                self.recorder.process(self.id).record_fault();
                self.pending_desync = true;
                Ok(())
            }
        }
    }

    fn group_for(&self, from: ProcessId, to: ProcessId) -> Result<usize, RuntimeError> {
        // Channel existence (a topology property) is diagnosed before the
        // decomposition lookup, so behaviors get the more actionable error.
        let peer = if from == self.id { to } else { from };
        if !self.tx.contains_key(&peer) {
            return Err(RuntimeError::NoChannel { from, to });
        }
        let edge = Edge::try_new(from, to).map_err(|_| RuntimeError::NoChannel { from, to })?;
        self.decomposition
            .group_of(edge)
            .ok_or(RuntimeError::ChannelNotInDecomposition { from, to })
    }

    /// Synchronously sends `payload` to `to`: blocks until the receiver
    /// takes the message *and* acknowledges it, then returns the message's
    /// timestamp (identical on both sides).
    ///
    /// The whole exchange rides one transport channel: depositing the
    /// offer wakes the receiver, and the receiver's acknowledgement wakes
    /// this process back — the vector exchange piggybacks on the wakeups.
    /// Whether the channel is an in-memory slot or a socket is the
    /// transport's business ([`crate::TxChannel`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoChannel`] if `to` is not a neighbor;
    /// [`RuntimeError::ChannelNotInDecomposition`] if the decomposition
    /// misses the edge; [`RuntimeError::PeerTerminated`] if the peer's
    /// thread exited (or its connection closed) mid-rendezvous;
    /// [`RuntimeError::Deadlock`] if the watchdog aborted the run while
    /// this process was blocked here; [`RuntimeError::ChannelIo`] on a
    /// socket-transport failure.
    pub fn send(&mut self, to: ProcessId, payload: u64) -> Result<VectorTime, RuntimeError> {
        if self.shared.aborted() {
            return Err(self.shared.deadlock_error());
        }
        self.fault_check()?;
        let group = self.group_for(self.id, to)?;
        let key = ((self.id as u64) << 32) | self.seq;
        self.seq += 1;
        let tx = Arc::clone(
            self.tx
                .get(&to)
                .ok_or(RuntimeError::NoChannel { from: self.id, to })?,
        );
        // An armed desync fault fires here: the outgoing stream's sequence
        // number advances as if a frame were lost, which the receiver will
        // detect and repair through the resync protocol below.
        if self.pending_desync && self.enc_data.skip(to) {
            self.pending_desync = false;
        }
        // `send_payload` is non-mutating, so the very same vector can be
        // re-encoded verbatim when a resync retransmission is needed.
        let vector = self.clock.send_payload();
        let mut budget = WaitBudget::new(self.rendezvous_timeout, self.rendezvous_retries);
        let mut blocked = Duration::ZERO;
        let mut parked = false;
        // The first poll of every wait is a zero-wait probe, so the
        // uncontended fast path never registers with the watchdog.
        let mut cap = Some(Duration::ZERO);
        let ready = loop {
            match tx.poll_ready(cap) {
                Ok(Polled::Ready(r)) => break r,
                Ok(Polled::Pending) => {
                    match self.pending_step(WaitOp::SendTo, to, &mut parked, &mut budget) {
                        Ok(next) => cap = next,
                        Err(e) => {
                            self.recorder
                                .process(self.id)
                                .record_blocked(blocked.as_nanos() as u64);
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    blocked += self.unpark(parked);
                    self.recorder
                        .process(self.id)
                        .record_blocked(blocked.as_nanos() as u64);
                    return Err(self.channel_error(to, e));
                }
            }
        };
        blocked += self.unpark(parked);
        if ready.resync_debris {
            // Debris from an earlier errored send on this channel: the
            // receiver asked for a resync nobody serviced. This fresh send
            // re-anchors the stream with a full frame.
            self.enc_data.force_full(to);
            self.recorder.process(self.id).record_resync();
        }
        let mut encoded = self.enc_data.encode(to, &vector);
        // Offer/await-answer loop: a ResyncRequested answer re-offers the
        // same message as a full-vector frame (bounded by MAX_RESYNC).
        // While the offer sits unanswered the peer has not completed the
        // match, so the wait registers as `SendTo`. Wire accounting prices
        // whole frames (header + key + payload + body — `core::wire`'s
        // frame helpers), so local and TCP runs report identical byte
        // counts for identical executions.
        let mut msg_bytes_total = 0u64;
        let mut resyncs = 0u32;
        let (ack, taken, acked, last_parked) = loop {
            msg_bytes_total += offer_frame_bytes(encoded.len());
            if let Err(e) = tx.offer(key, payload, &encoded) {
                self.recorder
                    .process(self.id)
                    .record_blocked(blocked.as_nanos() as u64);
                return Err(self.channel_error(to, e));
            }
            let mut parked = false;
            let mut cap = Some(Duration::ZERO);
            let outcome = loop {
                match tx.poll_answer(key, cap) {
                    Ok(Polled::Ready(answer)) => break answer,
                    Ok(Polled::Pending) => {
                        match self.pending_step(WaitOp::SendTo, to, &mut parked, &mut budget) {
                            Ok(next) => cap = next,
                            Err(e) => {
                                // The receiver may have acknowledged in the
                                // instant between the pending poll and the
                                // liveness/abort/timeout check — and the ack
                                // deposit happens-before the peer's exit
                                // flag, so one final zero-wait poll settles
                                // it. Without this, a completed rendezvous
                                // could be reported failed on the sender's
                                // side only, leaving one-sided logs that no
                                // longer reconstruct.
                                if let Ok(Polled::Ready(answer @ SendAnswer::Acked { .. })) =
                                    tx.poll_answer(key, Some(Duration::ZERO))
                                {
                                    break answer;
                                }
                                // Retract our untaken offer so the channel
                                // is left clean for any survivor.
                                tx.retract(key);
                                self.recorder
                                    .process(self.id)
                                    .record_blocked(blocked.as_nanos() as u64);
                                return Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        tx.retract(key);
                        blocked += self.unpark(parked);
                        self.recorder
                            .process(self.id)
                            .record_blocked(blocked.as_nanos() as u64);
                        return Err(self.channel_error(to, e));
                    }
                }
            };
            blocked += self.unpark(parked);
            match outcome {
                SendAnswer::Acked { ack, taken, acked } => {
                    break (ack, taken, acked, parked);
                }
                SendAnswer::ResyncRequested => {
                    // The receiver's resync request crossed the channel
                    // too; count its frame alongside the bounced offer.
                    msg_bytes_total += resync_frame_bytes();
                    resyncs += 1;
                    if resyncs > MAX_RESYNC {
                        self.recorder
                            .process(self.id)
                            .record_blocked(blocked.as_nanos() as u64);
                        return Err(RuntimeError::DeltaDesync { from: self.id, to });
                    }
                    self.enc_data.force_full(to);
                    encoded = self.enc_data.encode(to, &vector);
                    self.recorder.process(self.id).record_resync();
                }
            }
        };
        let ack_bytes = ack_frame_bytes(ack.len());
        // The acknowledgement stream has no resync path — the receiver has
        // already completed its side of the rendezvous — so a desynchronised
        // ack stream is terminal. Terminal for this channel only: other
        // channels' streams are independent.
        let (ack, ack_changes) = match self.dec_ack.decode_sparse(to, &ack) {
            Ok(decoded) => decoded,
            Err(_) => {
                self.recorder
                    .process(self.id)
                    .record_blocked(blocked.as_nanos() as u64);
                return Err(RuntimeError::DeltaDesync {
                    from: to,
                    to: self.id,
                });
            }
        };
        // A decoded frame of the wrong dimension means the peer runs a
        // different decomposition — the stream is beyond repair.
        let stamp = match self
            .clock
            .on_acknowledgement(&ack, ack_changes.as_deref(), group)
        {
            Ok(stamp) => stamp,
            Err(_) => {
                self.recorder
                    .process(self.id)
                    .record_blocked(blocked.as_nanos() as u64);
                return Err(RuntimeError::DeltaDesync {
                    from: to,
                    to: self.id,
                });
            }
        };
        let me = self.recorder.process(self.id);
        if last_parked {
            me.record_wakeup(acked.elapsed().as_nanos() as u64);
        }
        me.record_blocked(blocked.as_nanos() as u64);
        me.record_send(
            to,
            msg_bytes_total + ack_bytes,
            self.rendezvous_bytes_full,
            taken.elapsed().as_nanos() as u64,
        );
        if let Some(tx) = &self.observer {
            // A lagging or dropped observer must never stall the protocol.
            let _ = tx.send(LiveObservation {
                key,
                sender: self.id,
                receiver: to,
                stamp: stamp.clone(),
            });
        }
        let entry = LogEntry::Sent {
            to,
            key,
            stamp: stamp.clone(),
        };
        self.persist(&entry);
        self.log.push(entry);
        Ok(stamp)
    }

    /// Blocks until `from` sends a message; acknowledges it (carrying this
    /// process's pre-update vector back, line 04 of Figure 5) and returns
    /// the payload and the message's timestamp. The acknowledgement is
    /// deposited immediately after the take, so the sender's next wakeup
    /// already carries it.
    ///
    /// # Errors
    ///
    /// Same classes as [`ProcessCtx::send`].
    pub fn receive_from(&mut self, from: ProcessId) -> Result<(u64, VectorTime), RuntimeError> {
        if self.shared.aborted() {
            return Err(self.shared.deadlock_error());
        }
        self.fault_check()?;
        let group = self.group_for(from, self.id)?;
        let rx = Arc::clone(
            self.rx
                .get(&from)
                .ok_or(RuntimeError::NoChannel { from, to: self.id })?,
        );
        let mut budget = WaitBudget::new(self.rendezvous_timeout, self.rendezvous_retries);
        let mut parked = false;
        let mut blocked = Duration::ZERO;
        // Bytes of offers this receive bounced back for resync (plus the
        // resync request frames themselves) — they moved on the wire, so
        // they count toward the actual cost.
        let mut resync_bytes = 0u64;
        let mut resyncs = 0u32;
        let mut cap = Some(Duration::ZERO);
        let (offer, vector, changes) = loop {
            match rx.poll_offer(cap) {
                Ok(Polled::Ready(offer)) => {
                    match self.dec_data.decode_sparse(from, &offer.vector) {
                        Ok((vector, changes)) => break (offer, vector, changes),
                        Err(StreamError::SeqGap { .. }) if resyncs < MAX_RESYNC => {
                            // The stream skipped a frame. Recoverable: hand
                            // the sender a resync request and wait for the
                            // re-offered full-vector frame. The failed
                            // decode did not advance stream state, so the
                            // resync frame applies cleanly.
                            resyncs += 1;
                            resync_bytes +=
                                offer_frame_bytes(offer.vector.len()) + resync_frame_bytes();
                            if let Err(e) = rx.answer(OfferAnswer::Resync) {
                                blocked += self.unpark(parked);
                                self.recorder
                                    .process(self.id)
                                    .record_blocked(blocked.as_nanos() as u64);
                                return Err(self.channel_error(from, e));
                            }
                            cap = Some(Duration::ZERO);
                        }
                        Err(_) => {
                            // Malformed frame, orphan delta, or resync
                            // budget exhausted: this channel's stream is
                            // beyond repair. Other channels are unaffected.
                            blocked += self.unpark(parked);
                            self.recorder
                                .process(self.id)
                                .record_blocked(blocked.as_nanos() as u64);
                            return Err(RuntimeError::DeltaDesync { from, to: self.id });
                        }
                    }
                }
                Ok(Polled::Pending) => {
                    match self.pending_step(WaitOp::ReceiveFrom, from, &mut parked, &mut budget) {
                        Ok(next) => cap = next,
                        Err(e) => {
                            self.recorder
                                .process(self.id)
                                .record_blocked(blocked.as_nanos() as u64);
                            return Err(e);
                        }
                    }
                }
                Err(e) => {
                    blocked += self.unpark(parked);
                    self.recorder
                        .process(self.id)
                        .record_blocked(blocked.as_nanos() as u64);
                    return Err(self.channel_error(from, e));
                }
            }
        };
        let recv_wait = blocked + self.unpark(parked);
        // A decoded frame of the wrong dimension means the sender runs a
        // different decomposition — the stream is beyond repair.
        let (ack, stamp) = match self.clock.on_receive(&vector, changes.as_deref(), group) {
            Ok(pair) => pair,
            Err(_) => {
                self.recorder
                    .process(self.id)
                    .record_blocked(recv_wait.as_nanos() as u64);
                return Err(RuntimeError::DeltaDesync { from, to: self.id });
            }
        };
        let ack_bytes = self.enc_ack.encode(from, &ack);
        let wire_actual =
            offer_frame_bytes(offer.vector.len()) + resync_bytes + ack_frame_bytes(ack_bytes.len());
        if let Err(e) = rx.answer(OfferAnswer::Ack(ack_bytes)) {
            self.recorder
                .process(self.id)
                .record_blocked(recv_wait.as_nanos() as u64);
            return Err(self.channel_error(from, e));
        }
        let me = self.recorder.process(self.id);
        if parked {
            me.record_wakeup(offer.offered_at.elapsed().as_nanos() as u64);
        }
        me.record_receive(
            from,
            wire_actual,
            self.rendezvous_bytes_full,
            recv_wait.as_nanos() as u64,
        );
        let entry = LogEntry::Received {
            from,
            key: offer.key,
            stamp: stamp.clone(),
        };
        self.persist(&entry);
        self.log.push(entry);
        Ok((offer.payload, stamp))
    }

    /// Records an internal event.
    pub fn internal(&mut self) {
        self.persist(&LogEntry::Internal);
        self.log.push(LogEntry::Internal);
    }

    /// Mirrors a log entry to the durable-store sink, if any, tagged with
    /// the process id and the entry's position in this process's log. A
    /// lagging or dropped sink must never stall the protocol — exactly the
    /// observer's contract. Entries are buffered and sent in bursts of
    /// [`SINK_BATCH`]: each send to an idle receiver costs a thread
    /// wakeup, and paying that per entry would tax every rendezvous.
    fn persist(&mut self, entry: &LogEntry) {
        if self.sink.is_none() {
            return;
        }
        self.sink_buf.push(PersistEvent {
            process: self.id,
            pseq: self.log.len() as u64,
            entry: entry.clone(),
        });
        if self.sink_buf.len() >= SINK_BATCH {
            self.flush_sink();
        }
    }

    /// Ships the buffered burst to the sink as a single send. Called when
    /// the buffer fills and — by the runtime — when the behavior exits,
    /// so a completed process's log always reaches the writer in full.
    fn flush_sink(&mut self) {
        if self.sink_buf.is_empty() {
            return;
        }
        if let Some(tx) = &self.sink {
            let _ = tx.send(std::mem::take(&mut self.sink_buf));
        }
    }
}

/// A process's code: runs on its own thread against a [`ProcessCtx`].
pub type Behavior = Box<dyn FnOnce(&mut ProcessCtx) -> Result<(), RuntimeError> + Send>;

/// One committed reconfiguration, ready to be applied to a [`Runtime`]
/// at an epoch boundary: the new topology and decomposition every replica
/// agreed on, the remap from the previous dimension, and the uniform
/// baseline vector all processes resume from (the max-merge of every
/// process's rebased final clock, distributed by the control plane's
/// commit — see `synctime-net`'s `reconfig` module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedReconfigure {
    /// The epoch this reconfiguration establishes (must be the runtime's
    /// current epoch + 1).
    pub epoch: u64,
    /// The post-change topology.
    pub topology: Graph,
    /// The post-change decomposition (dimension of the new epoch's
    /// stamps).
    pub decomposition: EdgeDecomposition,
    /// How group indices moved from the previous decomposition.
    pub remap: GroupRemap,
    /// The uniform baseline every process clock starts the new epoch
    /// from.
    pub baseline: VectorTime,
}

/// Configures and launches rendezvous executions over a topology and its
/// edge decomposition.
#[derive(Debug, Clone)]
pub struct Runtime {
    topology: Graph,
    decomposition: EdgeDecomposition,
    observer: Option<std::sync::mpsc::Sender<LiveObservation>>,
    sink: Option<std::sync::mpsc::Sender<Vec<PersistEvent>>>,
    watchdog: Option<Duration>,
    ring_capacity: usize,
    matcher: Matcher,
    fault: Option<Arc<dyn FaultInjector>>,
    rendezvous_timeout: Option<Duration>,
    rendezvous_retries: u32,
    clock_backend: ClockBackend,
    /// The reconfiguration epoch this runtime executes (0 at creation,
    /// bumped by [`Runtime::apply_reconfigure`]).
    epoch: u64,
    /// The uniform baseline every process clock starts from (zero when
    /// absent — the launch epoch). Set by a reconfiguration's commit so
    /// post-change stamps stay order-isomorphic with a zero-started
    /// reference run over the new topology.
    initial_clock: Option<VectorTime>,
}

/// Default stall timeout before the watchdog declares a deadlock.
pub const DEFAULT_WATCHDOG_TIMEOUT: Duration = Duration::from_secs(10);

/// Default per-process event-ring capacity for run statistics.
pub const DEFAULT_EVENT_RING: usize = 4096;

impl Runtime {
    /// Creates a runtime over `topology`, timestamping with the components
    /// of `decomposition` (which should cover the topology's edges).
    ///
    /// The deadlock watchdog is on by default with
    /// [`DEFAULT_WATCHDOG_TIMEOUT`]; tune it with [`Runtime::with_watchdog`]
    /// or disable it with [`Runtime::without_watchdog`]. The rendezvous
    /// matcher defaults to [`Matcher::Parking`].
    pub fn new(topology: &Graph, decomposition: &EdgeDecomposition) -> Self {
        Runtime {
            topology: topology.clone(),
            decomposition: decomposition.clone(),
            observer: None,
            sink: None,
            watchdog: Some(DEFAULT_WATCHDOG_TIMEOUT),
            ring_capacity: DEFAULT_EVENT_RING,
            matcher: Matcher::default(),
            fault: None,
            rendezvous_timeout: None,
            rendezvous_retries: DEFAULT_RENDEZVOUS_RETRIES,
            clock_backend: ClockBackend::default(),
            epoch: 0,
            initial_clock: None,
        }
    }

    /// The reconfiguration epoch this runtime executes: 0 at creation,
    /// incremented by every [`Runtime::apply_reconfigure`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Starts every process clock of subsequent runs from `baseline`
    /// instead of zero — the seam a committed reconfiguration uses so all
    /// processes resume the new epoch from the same uniform vector
    /// (`max(B+x, B+y) = B + max(x, y)`, so every precedence verdict
    /// matches a zero-started reference run's).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ClockUnsupported`] when `baseline`'s dimension
    /// differs from the decomposition's.
    pub fn with_initial_clock(mut self, baseline: VectorTime) -> Result<Self, RuntimeError> {
        if baseline.dim() != self.decomposition.len() {
            return Err(RuntimeError::ClockUnsupported {
                dim: baseline.dim(),
                capacity: self.decomposition.len(),
            });
        }
        self.initial_clock = Some(baseline);
        Ok(self)
    }

    /// Applies one committed reconfiguration: validates the epoch is the
    /// successor of the current one, swaps in the new topology and
    /// decomposition, and arms the uniform baseline every process clock of
    /// the next run starts from. Channels, watchdog, fault injectors, and
    /// every other setting carry over unchanged.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::EpochMismatch`] when `r.epoch` is not
    /// `self.epoch() + 1`; [`RuntimeError::ClockUnsupported`] when the
    /// remap, baseline, and decomposition disagree on the new dimension or
    /// the configured clock backend cannot hold it.
    pub fn apply_reconfigure(&mut self, r: &AppliedReconfigure) -> Result<(), RuntimeError> {
        if r.epoch != self.epoch + 1 {
            return Err(RuntimeError::EpochMismatch {
                expected: self.epoch + 1,
                got: r.epoch,
            });
        }
        let dim = r.decomposition.len();
        if r.remap.new_len != dim || r.baseline.dim() != dim {
            return Err(RuntimeError::ClockUnsupported {
                dim: r.baseline.dim().max(r.remap.new_len),
                capacity: dim,
            });
        }
        // Re-validate the configured backend against the new dimension —
        // a topology change can grow past a fixed backend's lanes.
        self.clock_backend
            .resolve(dim)
            .map_err(|_| RuntimeError::ClockUnsupported {
                dim,
                capacity: ClockBackend::FIXED_CAPACITY,
            })?;
        self.topology = r.topology.clone();
        self.decomposition = r.decomposition.clone();
        self.initial_clock = Some(r.baseline.clone());
        self.epoch = r.epoch;
        Ok(())
    }

    /// Selects the clock backend every process clock of this runtime uses
    /// (see [`ClockBackend`]). The default, [`ClockBackend::Auto`], picks
    /// the fixed-lane backend when the decomposition fits its lanes and
    /// the dense vector otherwise. Backend choice never changes a stamp —
    /// all backends compute identical vectors — only the cost of computing
    /// them.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ClockUnsupported`] when the backend cannot hold one
    /// component per edge group of this runtime's decomposition.
    pub fn with_clock(mut self, backend: ClockBackend) -> Result<Self, RuntimeError> {
        let dim = self.decomposition.len();
        backend
            .resolve(dim)
            .map_err(|_| RuntimeError::ClockUnsupported {
                dim,
                capacity: ClockBackend::FIXED_CAPACITY,
            })?;
        self.clock_backend = backend;
        Ok(self)
    }

    /// Aborts a run with [`RuntimeError::Deadlock`] once a wait-for cycle
    /// of processes has been parked in rendezvous operations for `timeout`.
    #[must_use]
    pub fn with_watchdog(mut self, timeout: Duration) -> Self {
        self.watchdog = Some(timeout);
        self
    }

    /// Disables the deadlock watchdog: mismatched behaviors block forever,
    /// exactly as real CSP programs do.
    #[must_use]
    pub fn without_watchdog(mut self) -> Self {
        self.watchdog = None;
        self
    }

    /// Selects how blocked rendezvous endpoints wait for their partner
    /// (parking by default; polling is kept as a benchmark baseline).
    #[must_use]
    pub fn with_matcher(mut self, matcher: Matcher) -> Self {
        self.matcher = matcher;
        self
    }

    /// Threads a deterministic fault injector into the run: the runtime
    /// consults it at every rendezvous operation boundary (see
    /// [`FaultInjector`]). `synctime-sim`'s `FaultPlan` is the standard
    /// implementation — a seeded schedule of crashes, delays, and
    /// delta-stream desyncs.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.fault = Some(injector);
        self
    }

    /// Bounds every rendezvous wait: an operation that cannot match within
    /// `timeout` is granted [`DEFAULT_RENDEZVOUS_RETRIES`] exponentially
    /// backed-off extensions (doubling each time), then fails with
    /// [`RuntimeError::RendezvousTimeout`]. A timed-out send retracts its
    /// untaken offer, so the channel stays usable for survivors. Off by
    /// default — rendezvous semantics say a wait may legitimately be
    /// unbounded.
    #[must_use]
    pub fn with_rendezvous_timeout(mut self, timeout: Duration) -> Self {
        self.rendezvous_timeout = Some(timeout);
        self
    }

    /// Overrides the number of backoff retries a rendezvous timeout allows
    /// before surfacing (the total budget with `r` retries is roughly
    /// `timeout * (2^(r+1) - 1)`).
    #[must_use]
    pub fn with_rendezvous_retries(mut self, retries: u32) -> Self {
        self.rendezvous_retries = retries;
        self
    }

    /// Sets how many recent events each process retains for the run's
    /// latency percentiles (counters are exact regardless).
    #[must_use]
    pub fn with_event_ring(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Streams a [`LiveObservation`] per message to `tx` as the execution
    /// runs (sent from the sender's thread right after the rendezvous
    /// completes). Observer failures are ignored — monitoring must not
    /// perturb the system under observation.
    #[must_use]
    pub fn with_observer(mut self, tx: std::sync::mpsc::Sender<LiveObservation>) -> Self {
        self.observer = Some(tx);
        self
    }

    /// Streams a [`PersistEvent`] per log entry to `tx` as the execution
    /// runs, from the logging process's own thread in per-process bursts:
    /// each send carries a `Vec` of up to [`SINK_BATCH`] events (flushed
    /// when the buffer fills and when the behavior exits) — the
    /// durable-ingestion seam `synctime-store`'s writer thread consumes.
    /// Sink failures are ignored, like observer failures: durability lag
    /// must not perturb the protocol. Callers that need completeness join
    /// the consuming writer *after* the run returns (every event is sent
    /// before the run's threads exit).
    #[must_use]
    pub fn with_log_sink(mut self, tx: std::sync::mpsc::Sender<Vec<PersistEvent>>) -> Self {
        self.sink = Some(tx);
        self
    }

    /// Runs one behavior per process (there must be exactly
    /// `topology.node_count()` of them), each on its own OS thread, until
    /// all of them return.
    ///
    /// **Deadlock handling:** rendezvous semantics mean mismatched behaviors
    /// (everyone sending, nobody receiving) would block forever, exactly as
    /// real CSP programs do. A watchdog thread monitors the parked-thread
    /// registry and, once the wait-for graph contains a cycle whose members
    /// have all been parked beyond the configured timeout, aborts the run
    /// with [`RuntimeError::Deadlock`] carrying the diagnosis. Slow-but-live
    /// runs — arbitrarily long parks whose wait chains end in a running
    /// process — are never aborted. The `synctime-sim` crate's scheduler
    /// detects the same deadlocks deterministically and instantly; the
    /// runtime's watchdog is the wall-clock analogue for real threads.
    ///
    /// # Errors
    ///
    /// The first behavior error, in process order; a panicking behavior
    /// surfaces as [`RuntimeError::BehaviorPanicked`].
    ///
    /// # Panics
    ///
    /// Panics if `behaviors.len()` differs from the process count.
    pub fn run(&self, behaviors: Vec<Behavior>) -> Result<RuntimeRun, RuntimeError> {
        let run = self.run_tolerant(behaviors);
        if let Some(err) = run.outcomes.iter().flatten().next() {
            return Err(err.clone());
        }
        Ok(run)
    }

    /// Runs like [`Runtime::run`] but survives per-process failures: every
    /// behavior's outcome (including injected crashes, peer terminations,
    /// and panics) is reported individually in [`RuntimeRun::outcomes`],
    /// and the logs of casualties and survivors alike are kept — so the
    /// surviving prefix of the computation still reconstructs and its
    /// timestamps can still be checked against the causal order.
    ///
    /// This is the entry point for fault-injected executions: a fault plan
    /// with `k < N` crashes takes down `k` processes (plus whoever then
    /// observes [`RuntimeError::PeerTerminated`]), while the run itself
    /// completes and reports what happened to each process.
    ///
    /// # Panics
    ///
    /// Panics if `behaviors.len()` differs from the process count.
    pub fn run_tolerant(&self, behaviors: Vec<Behavior>) -> RuntimeRun {
        let n = self.topology.node_count();
        assert_eq!(behaviors.len(), n, "need exactly one behavior per process");
        // One rendezvous slot per directed channel; both endpoints share it
        // through their [`LocalTx`]/[`LocalRx`] transport halves.
        let mut tx_maps: Vec<HashMap<ProcessId, Arc<dyn TxChannel>>> =
            (0..n).map(|_| HashMap::new()).collect();
        let mut rx_maps: Vec<HashMap<ProcessId, Arc<dyn RxChannel>>> =
            (0..n).map(|_| HashMap::new()).collect();
        let mut slots = Vec::with_capacity(2 * self.topology.edge_count());
        for e in self.topology.edges() {
            for (u, v) in [(e.lo(), e.hi()), (e.hi(), e.lo())] {
                let slot = Arc::new(ChannelSlot::new());
                tx_maps[u].insert(
                    v,
                    Arc::new(LocalTx::new(Arc::clone(&slot), self.matcher)) as _,
                );
                rx_maps[v].insert(
                    u,
                    Arc::new(LocalRx::new(Arc::clone(&slot), self.matcher)) as _,
                );
                slots.push(slot);
            }
        }
        let shared = Arc::new(RunShared::new(n, slots));
        let recorder = Arc::new(Recorder::new(n, self.ring_capacity));
        let mut ctxs: Vec<ProcessCtx> = Vec::with_capacity(n);
        for (id, (tx, rx)) in tx_maps.into_iter().zip(rx_maps).enumerate() {
            ctxs.push(self.process_ctx(id, tx, rx, Arc::clone(&shared), Arc::clone(&recorder)));
        }

        let results: Vec<(Vec<LogEntry>, VectorTime, Option<RuntimeError>)> =
            std::thread::scope(|s| {
                if let Some(timeout) = self.watchdog {
                    let shared = Arc::clone(&shared);
                    s.spawn(move || watchdog_loop(&shared, timeout));
                }
                let handles: Vec<_> = behaviors
                    .into_iter()
                    .zip(ctxs)
                    .map(|(behavior, mut ctx)| {
                        let shared = Arc::clone(&shared);
                        s.spawn(move || {
                            let id = ctx.id;
                            // catch_unwind keeps a panicking behavior from
                            // unwinding through the runtime: the process's log
                            // survives for partial reconstruction, and no
                            // panic propagates before the liveness flag and
                            // peer wakeups below run — so survivors observe a
                            // clean PeerTerminated instead of a hang.
                            let outcome = catch_unwind(AssertUnwindSafe(|| behavior(&mut ctx)))
                                .unwrap_or(Err(RuntimeError::BehaviorPanicked { process: id }));
                            // The tail of the log (possibly short of a full
                            // burst) still belongs to the durable writer.
                            ctx.flush_sink();
                            // Finished processes are no longer candidates for a
                            // deadlock; tell the watchdog and wake parked peers
                            // so they observe the exit instead of waiting for
                            // the park backstop.
                            shared.live[id].store(false, Ordering::Release);
                            shared.wake_all();
                            let final_clock = ctx.clock.current_vector();
                            (ctx.log, final_clock, outcome.err())
                        })
                    })
                    .collect();
                let results = handles
                    .into_iter()
                    .enumerate()
                    .map(|(p, h)| {
                        h.join().unwrap_or_else(|_| {
                            (
                                Vec::new(),
                                VectorTime::zero(self.decomposition.len()),
                                Some(RuntimeError::BehaviorPanicked { process: p }),
                            )
                        })
                    })
                    .collect();
                shared.finished.store(true, Ordering::Release);
                results
            });

        let mut logs = Vec::with_capacity(n);
        let mut final_clocks = Vec::with_capacity(n);
        let mut outcomes = Vec::with_capacity(n);
        for (log, final_clock, outcome) in results {
            logs.push(log);
            final_clocks.push(final_clock);
            outcomes.push(outcome);
        }
        // Components only grow and every increment is captured in a logged
        // stamp, so the run-wide maximum component is the maximum over all
        // logged stamps.
        let max_component = logs
            .iter()
            .flatten()
            .filter_map(|entry| match entry {
                LogEntry::Sent { stamp, .. } | LogEntry::Received { stamp, .. } => {
                    stamp.as_slice().iter().copied().max()
                }
                LogEntry::Internal => None,
            })
            .max()
            .unwrap_or(0);
        RuntimeRun {
            process_count: n,
            logs,
            final_clocks,
            outcomes,
            stats: recorder.finish(max_component),
        }
    }

    /// Builds one process's execution context over the given channel
    /// endpoints — the piece shared by the all-in-process [`Runtime::run`]
    /// path and the distributed [`Runtime::run_process`] path.
    fn process_ctx(
        &self,
        id: ProcessId,
        tx: HashMap<ProcessId, Arc<dyn TxChannel>>,
        rx: HashMap<ProcessId, Arc<dyn RxChannel>>,
        shared: Arc<RunShared>,
        recorder: Arc<Recorder>,
    ) -> ProcessCtx {
        let dim = self.decomposition.len();
        // `with_clock` validated the backend against this decomposition, so
        // construction cannot fail; the dense fallback keeps this path
        // typed and panic-free regardless.
        let clock = match BackendClock::new(self.clock_backend, dim, self.initial_clock.as_ref()) {
            Ok(clock) => clock,
            Err(_) => BackendClock::Dense(BackendClock::dense_clock(dim)),
        };
        ProcessCtx {
            id,
            clock,
            decomposition: self.decomposition.clone(),
            observer: self.observer.clone(),
            sink: self.sink.clone(),
            sink_buf: Vec::new(),
            seq: 0,
            tx,
            rx,
            log: Vec::new(),
            shared,
            recorder,
            // Full-width cost of one rendezvous: the offer and ack frames
            // with d-component fixed-width vectors (`core::wire`'s frame
            // pricing). The actual wire cost is measured per message from
            // the delta encoding.
            rendezvous_bytes_full: synctime_core::wire::rendezvous_bytes_full(dim),
            enc_data: StreamEncoder::new(),
            dec_data: StreamDecoder::new(),
            enc_ack: StreamEncoder::new(),
            dec_ack: StreamDecoder::new(),
            fault: self.fault.clone(),
            op_index: 0,
            pending_desync: false,
            rendezvous_timeout: self.rendezvous_timeout,
            rendezvous_retries: self.rendezvous_retries,
        }
    }

    /// Runs **one** process of the topology — process `id` — against
    /// externally supplied channel endpoints, one per neighbor. This is
    /// the distributed entry point: `synctime-net` builds socket-backed
    /// endpoints and each OS process calls `run_process` with its own id,
    /// while [`Runtime::run`] is the special case where every endpoint of
    /// every process shares in-memory slots inside one OS process.
    ///
    /// No deadlock watchdog runs here — a single node cannot observe
    /// remote waits, so cycles spanning machines are caught by rendezvous
    /// timeouts ([`Runtime::with_rendezvous_timeout`]) instead. Peer
    /// liveness is learned from the transport: a closed connection
    /// surfaces as [`RuntimeError::PeerTerminated`].
    ///
    /// Like [`Runtime::run_tolerant`], a panicking or failing behavior is
    /// contained: its partial log and stats survive in the returned
    /// [`ProcessRun`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of the topology.
    pub fn run_process(
        &self,
        id: ProcessId,
        behavior: Behavior,
        tx: HashMap<ProcessId, Arc<dyn TxChannel>>,
        rx: HashMap<ProcessId, Arc<dyn RxChannel>>,
    ) -> ProcessRun {
        let n = self.topology.node_count();
        assert!(id < n, "process id {id} out of range for {n} processes");
        let shared = Arc::new(RunShared::new(n, Vec::new()));
        let recorder = Arc::new(Recorder::new(n, self.ring_capacity));
        let mut ctx = self.process_ctx(id, tx, rx, Arc::clone(&shared), Arc::clone(&recorder));
        let outcome = catch_unwind(AssertUnwindSafe(|| behavior(&mut ctx)))
            .unwrap_or(Err(RuntimeError::BehaviorPanicked { process: id }));
        ctx.flush_sink();
        shared.live[id].store(false, Ordering::Release);
        let max_component = ctx
            .log
            .iter()
            .filter_map(|entry| match entry {
                LogEntry::Sent { stamp, .. } | LogEntry::Received { stamp, .. } => {
                    stamp.as_slice().iter().copied().max()
                }
                LogEntry::Internal => None,
            })
            .max()
            .unwrap_or(0);
        let final_clock = ctx.clock.current_vector();
        ProcessRun {
            process: id,
            log: ctx.log,
            final_clock,
            outcome: outcome.err(),
            stats: recorder.finish(max_component),
        }
    }
}

/// One process's slice of a distributed execution — what
/// [`Runtime::run_process`] returns on each node. A coordinator merges
/// the per-node logs with [`reconstruct_from_logs`] and the per-node
/// stats with [`RunStats::merged`](synctime_obs::RunStats::merged).
#[derive(Debug)]
pub struct ProcessRun {
    process: ProcessId,
    log: Vec<LogEntry>,
    final_clock: VectorTime,
    outcome: Option<RuntimeError>,
    stats: RunStats,
}

impl ProcessRun {
    /// The process this run executed.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The process's execution log, in program order.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// The process's clock vector when its behavior ended — what the
    /// reconfiguration control plane acknowledges (after rebasing) so the
    /// coordinator can compute the next epoch's uniform baseline.
    pub fn final_clock(&self) -> &VectorTime {
        &self.final_clock
    }

    /// How the behavior ended: `None` for a clean return.
    pub fn outcome(&self) -> Option<&RuntimeError> {
        self.outcome.as_ref()
    }

    /// This node's slice of the run statistics (its own counters only;
    /// merge the slices with `RunStats::merged`).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Decomposes the run into its parts for serialisation.
    pub fn into_parts(self) -> (ProcessId, Vec<LogEntry>, Option<RuntimeError>, RunStats) {
        (self.process, self.log, self.outcome, self.stats)
    }
}

/// The logs of a completed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeRun {
    process_count: usize,
    logs: Vec<Vec<LogEntry>>,
    final_clocks: Vec<VectorTime>,
    outcomes: Vec<Option<RuntimeError>>,
    stats: RunStats,
}

impl RuntimeRun {
    /// The per-process execution logs.
    pub fn logs(&self) -> &[Vec<LogEntry>] {
        &self.logs
    }

    /// Each process's clock vector at the end of its behavior, in process
    /// order. An epoch boundary max-merges these into the next epoch's
    /// uniform baseline (see [`AppliedReconfigure`]); a process that
    /// panicked before producing a clock contributes the zero vector.
    pub fn final_clocks(&self) -> &[VectorTime] {
        &self.final_clocks
    }

    /// How each process's behavior ended: `None` for a clean return, the
    /// error otherwise (injected crashes, peer terminations, timeouts,
    /// panics). All `None` when obtained through [`Runtime::run`], which
    /// converts the first failure into its own error.
    pub fn outcomes(&self) -> &[Option<RuntimeError>] {
        &self.outcomes
    }

    /// Number of processes whose behavior completed without error.
    pub fn survivors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_none()).count()
    }

    /// Observability summary of the run: message counts, ack-latency and
    /// wakeup-latency percentiles, wire bytes, blocking time, and the
    /// largest vector component (see [`RunStats`]).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Rebuilds the [`SyncComputation`] the execution performed, together
    /// with the piggybacked per-message timestamps (re-indexed by the
    /// computation's message ids).
    ///
    /// That the rebuild succeeds at all is itself a check: it certifies the
    /// logged per-process orders are realizable by a synchronous execution
    /// — which they are, having just been executed by one.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError`]s from sequence reconstruction (these would
    /// indicate a runtime bug, e.g. mismatched logs).
    pub fn reconstruct(&self) -> Result<(SyncComputation, MessageTimestamps), TraceError> {
        reconstruct_from_logs(&self.logs)
    }
}

/// Rebuilds a [`SyncComputation`] and its per-message timestamps from
/// per-process execution logs — one log per process, in process order.
///
/// This is [`RuntimeRun::reconstruct`] exposed as a free function so a
/// distributed coordinator can merge the logs gathered from `N` separate
/// [`Runtime::run_process`] nodes (e.g. `synctime launch --transport tcp`)
/// exactly as the in-process path merges its thread logs.
///
/// # Errors
///
/// Propagates [`TraceError`]s from sequence reconstruction (mismatched or
/// truncated logs, e.g. from a crashed node).
pub fn reconstruct_from_logs(
    logs: &[Vec<LogEntry>],
) -> Result<(SyncComputation, MessageTimestamps), TraceError> {
    let sequences: Vec<Vec<EventKind>> = logs
        .iter()
        .map(|log| {
            log.iter()
                .map(|entry| match entry {
                    LogEntry::Sent { key, .. } => EventKind::Send(MessageId(*key as usize)),
                    LogEntry::Received { key, .. } => EventKind::Receive(MessageId(*key as usize)),
                    LogEntry::Internal => EventKind::Internal,
                })
                .collect()
        })
        .collect();
    let computation = SyncComputation::from_process_sequences(sequences)?;
    // Re-associate stamps: process p's i-th logged rendezvous is its
    // i-th message in the rebuilt computation's local order.
    let mut stamps: Vec<Option<VectorTime>> = vec![None; computation.message_count()];
    for (p, log) in logs.iter().enumerate() {
        let local = computation.process_messages(p);
        let mut next = 0usize;
        for entry in log {
            let stamp = match entry {
                LogEntry::Sent { stamp, .. } | LogEntry::Received { stamp, .. } => stamp,
                LogEntry::Internal => continue,
            };
            let id = local[next];
            next += 1;
            match &stamps[id.0] {
                None => stamps[id.0] = Some(stamp.clone()),
                Some(prev) => {
                    // Both endpoints logged the same timestamp.
                    debug_assert_eq!(prev, stamp, "endpoint stamps disagree for {id}");
                }
            }
        }
    }
    // `from_process_sequences` already validated that every message
    // appears at both endpoints, so a missing stamp is unreachable —
    // but surfaced as a typed error, not a panic, to keep the runtime
    // crate panic-free.
    let vectors: Vec<VectorTime> = stamps
        .into_iter()
        .enumerate()
        .map(|(id, s)| s.ok_or(TraceError::MalformedSequences { message: id }))
        .collect::<Result<_, _>>()?;
    Ok((computation, MessageTimestamps::new(vectors)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_graph::{decompose, topology};
    use synctime_trace::Oracle;

    fn ping_pong(rounds: u64) -> (Runtime, Vec<Behavior>) {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let a: Behavior = Box::new(move |ctx| {
            for i in 0..rounds {
                ctx.send(1, i)?;
                let (echo, _) = ctx.receive_from(1)?;
                assert_eq!(echo, i * 2);
            }
            Ok(())
        });
        let b: Behavior = Box::new(move |ctx| {
            for _ in 0..rounds {
                let (x, _) = ctx.receive_from(0)?;
                ctx.internal();
                ctx.send(0, x * 2)?;
            }
            Ok(())
        });
        (rt, vec![a, b])
    }

    #[test]
    fn ping_pong_reconstructs() {
        let (rt, behaviors) = ping_pong(5);
        let run = rt.run(behaviors).unwrap();
        let (comp, stamps) = run.reconstruct().unwrap();
        assert_eq!(comp.message_count(), 10);
        assert_eq!(stamps.dim(), 1);
        assert!(stamps.encodes(&Oracle::new(&comp)));
        // Scalar components strictly increase: the path is a star (Lemma 1).
        let vals: Vec<u64> = stamps.vectors().iter().map(|v| v.component(0)).collect();
        assert_eq!(vals, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn polling_matcher_produces_identical_stamps() {
        let (rt, behaviors) = ping_pong(5);
        let rt = rt.with_matcher(Matcher::Polling);
        let run = rt.run(behaviors).unwrap();
        let (comp, stamps) = run.reconstruct().unwrap();
        assert_eq!(comp.message_count(), 10);
        assert!(stamps.encodes(&Oracle::new(&comp)));
        let vals: Vec<u64> = stamps.vectors().iter().map(|v| v.component(0)).collect();
        assert_eq!(vals, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn timestamps_match_simulator_on_same_computation() {
        let (rt, behaviors) = ping_pong(3);
        let run = rt.run(behaviors).unwrap();
        let (comp, live_stamps) = run.reconstruct().unwrap();
        let dec = decompose::best_known(&topology::path(2));
        let sim_stamps = synctime_core::online::OnlineStamper::new(&dec)
            .stamp_computation(&comp)
            .unwrap();
        assert_eq!(live_stamps, sim_stamps);
    }

    /// A fully sequential token relay over `path(4)` — every rendezvous is
    /// causally ordered, so repeated runs reconstruct the identical
    /// computation regardless of thread scheduling.
    fn relay_behaviors(rounds: u64) -> Vec<Behavior> {
        vec![
            Box::new(move |ctx| {
                for i in 0..rounds {
                    ctx.send(1, i)?;
                    ctx.receive_from(1)?;
                }
                Ok(())
            }),
            Box::new(move |ctx| {
                for _ in 0..rounds {
                    let (x, _) = ctx.receive_from(0)?;
                    ctx.send(2, x)?;
                    let (y, _) = ctx.receive_from(2)?;
                    ctx.send(0, y)?;
                }
                Ok(())
            }),
            Box::new(move |ctx| {
                for _ in 0..rounds {
                    let (x, _) = ctx.receive_from(1)?;
                    ctx.send(3, x)?;
                    let (y, _) = ctx.receive_from(3)?;
                    ctx.send(1, y)?;
                }
                Ok(())
            }),
            Box::new(move |ctx| {
                for _ in 0..rounds {
                    let (x, _) = ctx.receive_from(2)?;
                    ctx.send(2, x + 1)?;
                }
                Ok(())
            }),
        ]
    }

    #[test]
    fn clock_backends_produce_identical_traces() {
        let topo = topology::path(4);
        let dec = decompose::best_known(&topo);
        assert!(dec.len() >= 2, "relay should exercise multi-dim vectors");
        let mut reference = None;
        for backend in [
            ClockBackend::Dense,
            ClockBackend::Tree,
            ClockBackend::Fixed,
            ClockBackend::Auto,
        ] {
            let rt = Runtime::new(&topo, &dec).with_clock(backend).unwrap();
            let run = rt.run(relay_behaviors(4)).unwrap();
            let (comp, stamps) = run.reconstruct().unwrap();
            assert!(stamps.encodes(&Oracle::new(&comp)), "{backend}");
            match &reference {
                None => reference = Some((comp, stamps)),
                Some((ref_comp, ref_stamps)) => {
                    assert_eq!(&comp, ref_comp, "{backend} reconstructed differently");
                    assert_eq!(&stamps, ref_stamps, "{backend} stamped differently");
                }
            }
        }
    }

    #[test]
    fn with_clock_rejects_undersized_fixed_backend() {
        // complete:20 decomposes to more edge groups than the fixed
        // backend's 16 lanes.
        let topo = topology::complete(20);
        let dec = decompose::best_known(&topo);
        assert!(dec.len() > ClockBackend::FIXED_CAPACITY);
        let err = Runtime::new(&topo, &dec)
            .with_clock(ClockBackend::Fixed)
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::ClockUnsupported { capacity: 16, .. }
        ));
        // Auto falls back to dense on the same decomposition.
        assert!(Runtime::new(&topo, &dec)
            .with_clock(ClockBackend::Auto)
            .is_ok());
    }

    #[test]
    fn no_channel_is_reported() {
        let topo = topology::path(3);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let result = rt.run(vec![
            Box::new(|ctx| match ctx.send(2, 1) {
                Err(RuntimeError::NoChannel { from: 0, to: 2 }) => Ok(()),
                other => panic!("expected NoChannel, got {other:?}"),
            }),
            Box::new(|_| Ok(())),
            Box::new(|_| Ok(())),
        ]);
        assert!(result.is_ok());
    }

    #[test]
    fn peer_termination_is_reported() {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let err = rt
            .run(vec![
                Box::new(|ctx| {
                    // Peer exits immediately; this receive must fail, not hang.
                    match ctx.receive_from(1) {
                        Err(RuntimeError::PeerTerminated { peer: 1 }) => {
                            Err(RuntimeError::PeerTerminated { peer: 1 })
                        }
                        other => panic!("expected PeerTerminated, got {other:?}"),
                    }
                }),
                Box::new(|_| Ok(())),
            ])
            .unwrap_err();
        assert_eq!(err, RuntimeError::PeerTerminated { peer: 1 });
    }

    #[test]
    fn concurrent_branches_get_concurrent_stamps() {
        // A 5-node tree: two independent leaf pairs talk to their hubs
        // concurrently; the runtime's stamps must reflect the concurrency.
        let topo = topology::balanced_tree(2, 2); // 0 -> {1,2}, 1 -> {3,4}, 2 -> {5,6}
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let mk_leaf = |hub: ProcessId| -> Behavior {
            Box::new(move |ctx| {
                ctx.send(hub, ctx.id() as u64)?;
                Ok(())
            })
        };
        let mk_hub = |leaves: Vec<ProcessId>| -> Behavior {
            Box::new(move |ctx| {
                for leaf in leaves {
                    ctx.receive_from(leaf)?;
                }
                Ok(())
            })
        };
        let run = rt
            .run(vec![
                Box::new(|_| Ok(())), // root idles
                mk_hub(vec![3, 4]),
                mk_hub(vec![5, 6]),
                mk_leaf(1),
                mk_leaf(1),
                mk_leaf(2),
                mk_leaf(2),
            ])
            .unwrap();
        let (comp, stamps) = run.reconstruct().unwrap();
        assert_eq!(comp.message_count(), 4);
        let oracle = Oracle::new(&comp);
        assert!(stamps.encodes(&oracle));
        // Messages into hub 1 are concurrent with messages into hub 2.
        let (into1, into2): (Vec<&synctime_trace::Message>, Vec<&synctime_trace::Message>) =
            comp.messages().iter().partition(|m| m.receiver == 1);
        for a in &into1 {
            for b in &into2 {
                assert!(stamps.concurrent(a.id, b.id), "{} vs {}", a.id, b.id);
            }
        }
    }

    #[test]
    fn observer_streams_live_stamps() {
        let (rt, behaviors) = ping_pong(4);
        let (tx, rx) = std::sync::mpsc::channel();
        let rt = rt.with_observer(tx);
        let run = rt.run(behaviors).unwrap();
        let observations: Vec<LiveObservation> = rx.try_iter().collect();
        assert_eq!(observations.len(), 8, "one observation per message");
        // Every observation's stamp matches the reconstructed run's stamp
        // for the same key (keys appear in the logs).
        let (comp, stamps) = run.reconstruct().unwrap();
        assert!(stamps.encodes(&Oracle::new(&comp)));
        for obs in &observations {
            let logged = run
                .logs()
                .iter()
                .flatten()
                .find_map(|e| match e {
                    LogEntry::Sent { key, stamp, .. } if *key == obs.key => Some(stamp),
                    _ => None,
                })
                .expect("observed key was logged");
            assert_eq!(logged, &obs.stamp);
        }
        // Dropping the receiver must not break later runs.
        let (rt2, behaviors2) = ping_pong(2);
        let (tx2, rx2) = std::sync::mpsc::channel();
        drop(rx2);
        assert!(rt2.with_observer(tx2).run(behaviors2).is_ok());
    }

    #[test]
    fn panicking_behavior_surfaces() {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let err = rt
            .run(vec![Box::new(|_| panic!("boom")), Box::new(|_| Ok(()))])
            .unwrap_err();
        assert_eq!(err, RuntimeError::BehaviorPanicked { process: 0 });
    }

    #[test]
    fn mutual_receive_deadlock_is_diagnosed() {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(100));
        let started = Instant::now();
        let err = rt
            .run(vec![
                Box::new(|ctx| ctx.receive_from(1).map(|_| ())),
                Box::new(|ctx| ctx.receive_from(0).map(|_| ())),
            ])
            .unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "watchdog did not fire promptly"
        );
        match err {
            RuntimeError::Deadlock { diagnosis } => {
                assert_eq!(diagnosis.cycle, vec![0, 1], "wrong cycle: {diagnosis}");
                for e in &diagnosis.waiting {
                    assert_eq!(e.op, WaitOp::ReceiveFrom);
                    assert_eq!(e.peer, 1 - e.process);
                    assert!(e.blocked_ms >= 100);
                }
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn mutual_send_deadlock_is_diagnosed() {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(100));
        let err = rt
            .run(vec![
                Box::new(|ctx| ctx.send(1, 0).map(|_| ())),
                Box::new(|ctx| ctx.send(0, 0).map(|_| ())),
            ])
            .unwrap_err();
        match err {
            RuntimeError::Deadlock { diagnosis } => {
                assert_eq!(diagnosis.cycle, vec![0, 1]);
                assert!(diagnosis.waiting.iter().all(|e| e.op == WaitOp::SendTo));
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn partial_deadlock_detected_while_others_run() {
        // P1 and P2 deadlock on each other while P0 keeps napping (live,
        // never parked). PR 1's all-blocked detector would have waited for
        // P0 forever; the cycle detector aborts on the {1, 2} cycle alone.
        let topo = topology::path(3);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(100));
        let err = rt
            .run(vec![
                Box::new(|_| {
                    std::thread::sleep(Duration::from_millis(800));
                    Ok(())
                }),
                Box::new(|ctx| ctx.receive_from(2).map(|_| ())),
                Box::new(|ctx| ctx.receive_from(1).map(|_| ())),
            ])
            .unwrap_err();
        match err {
            RuntimeError::Deadlock { diagnosis } => {
                assert_eq!(diagnosis.cycle, vec![1, 2], "wrong cycle: {diagnosis}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn clean_run_never_trips_the_watchdog() {
        // A tight watchdog over many rounds: every rendezvous completes well
        // inside the timeout, so the run must finish normally.
        let (rt, behaviors) = ping_pong(200);
        let rt = rt.with_watchdog(Duration::from_millis(250));
        let run = rt.run(behaviors).expect("clean run aborted by watchdog");
        assert_eq!(run.stats().messages, 400);
    }

    #[test]
    fn slow_but_live_processes_are_not_deadlocked() {
        // One process naps longer than the watchdog timeout while its peer
        // parks in receive. Not a deadlock: the parked peer's wait chain
        // ends at the napper, which is not parked — no cycle.
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(100));
        let run = rt
            .run(vec![
                Box::new(|ctx| {
                    std::thread::sleep(Duration::from_millis(300));
                    ctx.send(1, 7).map(|_| ())
                }),
                Box::new(|ctx| ctx.receive_from(0).map(|_| ())),
            ])
            .expect("slow sender misdiagnosed as deadlock");
        assert_eq!(run.stats().messages, 1);
    }

    /// Fires one scripted action at a single `(process, op_index)` pair.
    #[derive(Debug)]
    struct InjectAt {
        process: ProcessId,
        at_op: u64,
        action: FaultAction,
    }

    impl FaultInjector for InjectAt {
        fn action(&self, process: ProcessId, op_index: u64) -> FaultAction {
            if process == self.process && op_index == self.at_op {
                self.action
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn injected_crash_unblocks_peers_with_typed_errors() {
        // P1 crashes before its first operation; both neighbors are parked
        // on it. Even under a tight watchdog this must resolve as typed
        // PeerTerminated errors — never a panic, never a Deadlock report.
        let topo = topology::path(3);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec)
            .with_watchdog(Duration::from_millis(100))
            .with_fault_injector(Arc::new(InjectAt {
                process: 1,
                at_op: 0,
                action: FaultAction::Crash,
            }));
        let run = rt.run_tolerant(vec![
            Box::new(|ctx| ctx.send(1, 7).map(|_| ())),
            Box::new(|ctx| ctx.receive_from(0).map(|_| ())),
            Box::new(|ctx| ctx.receive_from(1).map(|_| ())),
        ]);
        assert_eq!(
            run.outcomes()[1],
            Some(RuntimeError::FaultInjected {
                process: 1,
                at_op: 0
            })
        );
        assert_eq!(
            run.outcomes()[0],
            Some(RuntimeError::PeerTerminated { peer: 1 })
        );
        assert_eq!(
            run.outcomes()[2],
            Some(RuntimeError::PeerTerminated { peer: 1 })
        );
        assert_eq!(run.survivors(), 0);
        assert_eq!(run.stats().faults_injected, 1);
    }

    #[test]
    fn forced_desync_recovers_via_resync_frames() {
        // Desync P0's outgoing data stream at its second send: the receiver
        // detects the sequence gap, requests a full-vector resync, and the
        // run completes with correct stamps — degradation, not failure.
        let (rt, behaviors) = ping_pong(5);
        let rt = rt.with_fault_injector(Arc::new(InjectAt {
            process: 0,
            at_op: 2,
            action: FaultAction::DesyncNext,
        }));
        let run = rt.run(behaviors).expect("desync must be recovered");
        let stats = run.stats();
        assert!(stats.resync_frames >= 1, "no resync recorded: {stats:?}");
        assert_eq!(stats.faults_injected, 1);
        let (comp, stamps) = run.reconstruct().unwrap();
        assert_eq!(comp.message_count(), 10);
        assert!(stamps.encodes(&Oracle::new(&comp)));
    }

    #[test]
    fn injected_delay_slows_but_completes() {
        let (rt, behaviors) = ping_pong(3);
        let rt = rt.with_fault_injector(Arc::new(InjectAt {
            process: 1,
            at_op: 0,
            action: FaultAction::Delay(Duration::from_millis(50)),
        }));
        let started = Instant::now();
        let run = rt.run(behaviors).expect("a delay is not a failure");
        assert!(started.elapsed() >= Duration::from_millis(50));
        assert_eq!(run.stats().faults_injected, 1);
        assert_eq!(run.stats().messages, 6);
    }

    #[test]
    fn rendezvous_timeout_fires_with_typed_error() {
        // P1 is alive but naps past the sender's rendezvous budget: the
        // send gives up with RendezvousTimeout instead of blocking forever,
        // and the napper itself finishes cleanly.
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec)
            .without_watchdog()
            .with_rendezvous_timeout(Duration::from_millis(50))
            .with_rendezvous_retries(0);
        let run = rt.run_tolerant(vec![
            Box::new(|ctx| ctx.send(1, 1).map(|_| ())),
            Box::new(|_| {
                std::thread::sleep(Duration::from_millis(400));
                Ok(())
            }),
        ]);
        match &run.outcomes()[0] {
            Some(RuntimeError::RendezvousTimeout { peer: 1, waited_ms }) => {
                assert!(*waited_ms >= 50, "gave up too early: {waited_ms}ms");
            }
            other => panic!("expected RendezvousTimeout, got {other:?}"),
        }
        assert_eq!(run.outcomes()[1], None);
        assert_eq!(run.survivors(), 1);
    }

    #[test]
    fn panic_preserves_partial_logs_and_surviving_prefix() {
        // P1 completes one rendezvous, then panics. The casualty's log must
        // survive (it rode the panic boundary, not the thread teardown), and
        // the completed prefix must still reconstruct with correct stamps.
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let run = rt.run_tolerant(vec![
            Box::new(|ctx| {
                ctx.send(1, 9)?;
                match ctx.receive_from(1) {
                    Err(RuntimeError::PeerTerminated { peer: 1 }) => Ok(()),
                    other => panic!("expected PeerTerminated, got {other:?}"),
                }
            }),
            Box::new(|ctx| {
                let (x, _) = ctx.receive_from(0)?;
                assert_eq!(x, 9);
                panic!("scripted crash after a completed rendezvous");
            }),
        ]);
        assert_eq!(
            run.outcomes()[1],
            Some(RuntimeError::BehaviorPanicked { process: 1 })
        );
        assert_eq!(run.survivors(), 1);
        assert!(!run.logs()[1].is_empty(), "casualty's log was lost");
        let (comp, stamps) = run.reconstruct().expect("surviving prefix reconstructs");
        assert_eq!(comp.message_count(), 1);
        assert!(stamps.encodes(&Oracle::new(&comp)));
    }

    #[test]
    fn run_stats_capture_counts_bytes_and_latency() {
        let (rt, behaviors) = ping_pong(5);
        let run = rt.run(behaviors).unwrap();
        let stats = run.stats();
        assert_eq!(stats.process_count, 2);
        assert_eq!(stats.messages, 10);
        assert_eq!(stats.receives, 10);
        // path(2) decomposes into one star: dim 1, so a full-width
        // rendezvous prices as one offer frame plus one ack frame with
        // 8-byte vectors (`core::wire::rendezvous_bytes_full`), counted at
        // both endpoints. The actual bytes ride the per-channel delta
        // streams, so they are positive and never exceed the full-width
        // baseline.
        assert_eq!(
            stats.total_wire_bytes_full,
            10 * 2 * synctime_core::wire::rendezvous_bytes_full(1)
        );
        assert!(stats.total_wire_bytes > 0);
        assert!(stats.total_wire_bytes <= stats.total_wire_bytes_full);
        assert!(stats.wire_savings_ratio <= 1.0);
        // Both directed channels of the ping-pong edge are reported.
        assert_eq!(stats.per_channel.len(), 2);
        assert!(stats
            .per_channel
            .iter()
            .all(|c| c.messages == 5 && c.wire_bytes > 0));
        // 10 messages through a single edge group: the component reaches 10.
        assert_eq!(stats.max_vector_component, 10);
        assert!(stats.ack_latency_p50_ns > 0);
        assert!(stats.ack_latency_p99_ns >= stats.ack_latency_p50_ns);
        assert!(stats.ack_latency_max_ns >= stats.ack_latency_p99_ns);
        assert_eq!(stats.latency_sample_dropped, 0);
        assert_eq!(stats.per_process[0].sends, 5);
        assert_eq!(stats.per_process[1].receives, 5);
        // Strict ping-pong alternation: at every rendezvous one side arrives
        // second and parks, so wakeup samples exist and are ordered.
        assert!(stats.wakeups > 0);
        assert!(stats.wakeup_p99_ns >= stats.wakeup_p50_ns);
        assert!(stats.wakeup_max_ns >= stats.wakeup_p99_ns);
        // The JSON rendering round-trips.
        let back = synctime_obs::RunStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(&back, stats);
    }

    /// Behaviors for one token-passing round trip on the path 0–1–2.
    fn three_path_behaviors() -> Vec<Behavior> {
        let p0: Behavior = Box::new(|ctx| {
            ctx.send(1, 7)?;
            let (x, _) = ctx.receive_from(1)?;
            assert_eq!(x, 9);
            Ok(())
        });
        let p1: Behavior = Box::new(|ctx| {
            let (x, _) = ctx.receive_from(0)?;
            ctx.send(2, x + 1)?;
            let (y, _) = ctx.receive_from(2)?;
            ctx.send(0, y)?;
            Ok(())
        });
        let p2: Behavior = Box::new(|ctx| {
            let (x, _) = ctx.receive_from(1)?;
            ctx.send(1, x + 1)?;
            Ok(())
        });
        vec![p0, p1, p2]
    }

    #[test]
    fn apply_reconfigure_resumes_order_isomorphic_to_reference() {
        use synctime_graph::{EdgeOp, IncrementalDecomposition};
        // Epoch 0: ping-pong on channel 0–1 of a fixed 3-process universe;
        // process 2 has not joined yet and idles (topology changes edit
        // edges, never the process universe).
        let topo0 = Graph::from_edges(3, [(0, 1)]).unwrap();
        let mut inc = IncrementalDecomposition::new(&topo0);
        let mut rt = Runtime::new(&topo0, inc.decomposition());
        let (rt0, mut behaviors0) = ping_pong(3);
        drop(rt0);
        behaviors0.push(Box::new(|_| Ok(())));
        let run0 = rt.run(behaviors0).unwrap();
        assert_eq!(run0.final_clocks().len(), 3);

        // Epoch boundary: max-merge every final clock into the baseline,
        // then rebase it through the remap of the committed edit batch
        // (grow 0–1 into the path 0–1–2).
        let mut old_baseline = VectorTime::zero(inc.decomposition().len());
        for clock in run0.final_clocks() {
            old_baseline.merge_max(clock).unwrap();
        }
        // The 2-path saw 6 messages through its single group.
        assert_eq!(old_baseline.component(0), 6);
        let remap = inc.apply_ops(&[EdgeOp::Insert(1, 2)]).unwrap();
        let new_dim = inc.decomposition().len();
        let mut slots = vec![0u64; new_dim];
        for (old, new) in remap.old_to_new.iter().enumerate() {
            if let Some(n) = new {
                slots[*n] = old_baseline.component(old);
            }
        }
        let baseline = VectorTime::from(slots);

        // Out-of-order epochs are refused before any state changes.
        let skipped = AppliedReconfigure {
            epoch: 2,
            topology: inc.graph().clone(),
            decomposition: inc.decomposition().clone(),
            remap: remap.clone(),
            baseline: baseline.clone(),
        };
        assert_eq!(
            rt.apply_reconfigure(&skipped),
            Err(RuntimeError::EpochMismatch {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(rt.epoch(), 0);

        rt.apply_reconfigure(&AppliedReconfigure {
            epoch: 1,
            ..skipped
        })
        .unwrap();
        assert_eq!(rt.epoch(), 1);

        // Epoch 1 on the reconfigured runtime vs an uninterrupted
        // zero-started reference over the same post-change topology.
        let run1 = rt.run(three_path_behaviors()).unwrap();
        let reference = Runtime::new(inc.graph(), inc.decomposition());
        let ref_run = reference.run(three_path_behaviors()).unwrap();

        // Every epoch-1 stamp is the reference stamp shifted by the
        // uniform baseline (`max(B+x, B+y) = B + max(x, y)`)...
        for (log, ref_log) in run1.logs().iter().zip(ref_run.logs()) {
            assert_eq!(log.len(), ref_log.len());
            for (entry, ref_entry) in log.iter().zip(ref_log) {
                let (stamp, ref_stamp) = match (entry, ref_entry) {
                    (
                        LogEntry::Sent { stamp, .. },
                        LogEntry::Sent {
                            stamp: ref_stamp, ..
                        },
                    )
                    | (
                        LogEntry::Received { stamp, .. },
                        LogEntry::Received {
                            stamp: ref_stamp, ..
                        },
                    ) => (stamp, ref_stamp),
                    (LogEntry::Internal, LogEntry::Internal) => continue,
                    other => panic!("log shapes diverged: {other:?}"),
                };
                let shifted: Vec<u64> = ref_stamp
                    .as_slice()
                    .iter()
                    .zip(baseline.as_slice())
                    .map(|(r, b)| r + b)
                    .collect();
                assert_eq!(stamp.as_slice(), &shifted[..]);
            }
        }
        // ...so every precedence verdict matches the reference run's.
        let (_, stamps) = run1.reconstruct().unwrap();
        let (ref_comp, ref_stamps) = ref_run.reconstruct().unwrap();
        assert!(ref_stamps.encodes(&Oracle::new(&ref_comp)));
        assert!(stamps.encodes(&Oracle::new(&ref_comp)));
    }

    #[test]
    fn with_initial_clock_rejects_wrong_dimension() {
        let topo = topology::path(3);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let err = rt.with_initial_clock(VectorTime::zero(dec.len() + 1));
        assert!(matches!(err, Err(RuntimeError::ClockUnsupported { .. })));
    }
}
