use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use synctime_core::online::ProcessClock;
use synctime_core::{MessageTimestamps, VectorTime};
use synctime_graph::{Edge, EdgeDecomposition, Graph};
use synctime_trace::{EventKind, MessageId, ProcessId, SyncComputation, TraceError};

use crate::RuntimeError;

/// A live notification emitted to an observer as each rendezvous completes
/// (from the sender's side, once the acknowledgement confirmed the agreed
/// timestamp). This is what a monitoring service consumes — see
/// `synctime-detect`'s `monitor` module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveObservation {
    /// The message's globally unique key (sender id in the high bits).
    pub key: u64,
    /// The sending process.
    pub sender: ProcessId,
    /// The receiving process.
    pub receiver: ProcessId,
    /// The agreed timestamp.
    pub stamp: VectorTime,
}

/// What travels on a program message: the payload plus the piggybacked
/// vector (line 02 of Figure 5) and a globally unique key used only for
/// post-hoc trace reconstruction.
#[derive(Debug)]
struct Wire {
    key: u64,
    payload: u64,
    vector: VectorTime,
}

/// One entry of a process's execution log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// This process sent a message.
    Sent {
        /// The receiver.
        to: ProcessId,
        /// The message's reconstruction key.
        key: u64,
        /// The agreed timestamp.
        stamp: VectorTime,
    },
    /// This process received a message.
    Received {
        /// The sender.
        from: ProcessId,
        /// The message's reconstruction key.
        key: u64,
        /// The agreed timestamp.
        stamp: VectorTime,
    },
    /// A local event.
    Internal,
}

/// The per-process API available to a [`Behavior`]: blocking rendezvous
/// sends and receives with automatic timestamp piggybacking, plus internal
/// events.
#[derive(Debug)]
pub struct ProcessCtx {
    id: ProcessId,
    clock: ProcessClock,
    decomposition: EdgeDecomposition,
    observer: Option<std::sync::mpsc::Sender<LiveObservation>>,
    seq: u64,
    data_out: HashMap<ProcessId, SyncSender<Wire>>,
    data_in: HashMap<ProcessId, Receiver<Wire>>,
    ack_out: HashMap<ProcessId, SyncSender<VectorTime>>,
    ack_in: HashMap<ProcessId, Receiver<VectorTime>>,
    log: Vec<LogEntry>,
}

impl ProcessCtx {
    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// A snapshot of the current local vector.
    pub fn clock(&self) -> &VectorTime {
        self.clock.current()
    }

    fn group_for(&self, from: ProcessId, to: ProcessId) -> Result<usize, RuntimeError> {
        // Channel existence (a topology property) is diagnosed before the
        // decomposition lookup, so behaviors get the more actionable error.
        let peer = if from == self.id { to } else { from };
        if !self.data_out.contains_key(&peer) {
            return Err(RuntimeError::NoChannel { from, to });
        }
        let edge = Edge::try_new(from, to).map_err(|_| RuntimeError::NoChannel { from, to })?;
        self.decomposition
            .group_of(edge)
            .ok_or(RuntimeError::ChannelNotInDecomposition { from, to })
    }

    /// Synchronously sends `payload` to `to`: blocks until the receiver
    /// takes the message *and* acknowledges it, then returns the message's
    /// timestamp (identical on both sides).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoChannel`] if `to` is not a neighbor;
    /// [`RuntimeError::ChannelNotInDecomposition`] if the decomposition
    /// misses the edge; [`RuntimeError::PeerTerminated`] if the peer's
    /// thread exited mid-rendezvous.
    pub fn send(&mut self, to: ProcessId, payload: u64) -> Result<VectorTime, RuntimeError> {
        let group = self.group_for(self.id, to)?;
        let key = ((self.id as u64) << 32) | self.seq;
        self.seq += 1;
        let wire = Wire {
            key,
            payload,
            vector: self.clock.send_payload(),
        };
        let tx = self
            .data_out
            .get(&to)
            .ok_or(RuntimeError::NoChannel { from: self.id, to })?;
        tx.send(wire)
            .map_err(|_| RuntimeError::PeerTerminated { peer: to })?;
        let ack = self
            .ack_in
            .get(&to)
            .ok_or(RuntimeError::NoChannel { from: self.id, to })?
            .recv()
            .map_err(|_| RuntimeError::PeerTerminated { peer: to })?;
        let stamp = self.clock.on_acknowledgement(&ack, group);
        if let Some(tx) = &self.observer {
            // A lagging or dropped observer must never stall the protocol.
            let _ = tx.send(LiveObservation {
                key,
                sender: self.id,
                receiver: to,
                stamp: stamp.clone(),
            });
        }
        self.log.push(LogEntry::Sent {
            to,
            key,
            stamp: stamp.clone(),
        });
        Ok(stamp)
    }

    /// Blocks until `from` sends a message; acknowledges it (carrying this
    /// process's pre-update vector back, line 04 of Figure 5) and returns
    /// the payload and the message's timestamp.
    ///
    /// # Errors
    ///
    /// Same classes as [`ProcessCtx::send`].
    pub fn receive_from(&mut self, from: ProcessId) -> Result<(u64, VectorTime), RuntimeError> {
        let group = self.group_for(from, self.id)?;
        let wire = self
            .data_in
            .get(&from)
            .ok_or(RuntimeError::NoChannel { from, to: self.id })?
            .recv()
            .map_err(|_| RuntimeError::PeerTerminated { peer: from })?;
        let (ack, stamp) = self.clock.on_receive(&wire.vector, group);
        self.ack_out
            .get(&from)
            .ok_or(RuntimeError::NoChannel { from, to: self.id })?
            .send(ack)
            .map_err(|_| RuntimeError::PeerTerminated { peer: from })?;
        self.log.push(LogEntry::Received {
            from,
            key: wire.key,
            stamp: stamp.clone(),
        });
        Ok((wire.payload, stamp))
    }

    /// Records an internal event.
    pub fn internal(&mut self) {
        self.log.push(LogEntry::Internal);
    }
}

/// A process's code: runs on its own thread against a [`ProcessCtx`].
pub type Behavior = Box<dyn FnOnce(&mut ProcessCtx) -> Result<(), RuntimeError> + Send>;

/// Configures and launches rendezvous executions over a topology and its
/// edge decomposition.
#[derive(Debug, Clone)]
pub struct Runtime {
    topology: Graph,
    decomposition: EdgeDecomposition,
    observer: Option<std::sync::mpsc::Sender<LiveObservation>>,
}

impl Runtime {
    /// Creates a runtime over `topology`, timestamping with the components
    /// of `decomposition` (which should cover the topology's edges).
    pub fn new(topology: &Graph, decomposition: &EdgeDecomposition) -> Self {
        Runtime {
            topology: topology.clone(),
            decomposition: decomposition.clone(),
            observer: None,
        }
    }

    /// Streams a [`LiveObservation`] per message to `tx` as the execution
    /// runs (sent from the sender's thread right after the rendezvous
    /// completes). Observer failures are ignored — monitoring must not
    /// perturb the system under observation.
    #[must_use]
    pub fn with_observer(mut self, tx: std::sync::mpsc::Sender<LiveObservation>) -> Self {
        self.observer = Some(tx);
        self
    }

    /// Runs one behavior per process (there must be exactly
    /// `topology.node_count()` of them), each on its own OS thread, until
    /// all of them return.
    ///
    /// **Deadlock warning:** rendezvous semantics mean mismatched behaviors
    /// (everyone sending, nobody receiving) block forever, exactly as real
    /// CSP programs do. The `synctime-sim` crate's scheduler detects such
    /// deadlocks deterministically; the runtime does not.
    ///
    /// # Errors
    ///
    /// The first behavior error, in process order; a panicking behavior
    /// surfaces as [`RuntimeError::BehaviorPanicked`].
    ///
    /// # Panics
    ///
    /// Panics if `behaviors.len()` differs from the process count.
    pub fn run(&self, behaviors: Vec<Behavior>) -> Result<RuntimeRun, RuntimeError> {
        let n = self.topology.node_count();
        assert_eq!(behaviors.len(), n, "need exactly one behavior per process");
        // Wire up zero-capacity (rendezvous) channels for both directions
        // of every topology edge, plus the acknowledgement back-channels.
        let mut data_out: Vec<HashMap<ProcessId, SyncSender<Wire>>> =
            (0..n).map(|_| HashMap::new()).collect();
        let mut data_in: Vec<HashMap<ProcessId, Receiver<Wire>>> =
            (0..n).map(|_| HashMap::new()).collect();
        let mut ack_out: Vec<HashMap<ProcessId, SyncSender<VectorTime>>> =
            (0..n).map(|_| HashMap::new()).collect();
        let mut ack_in: Vec<HashMap<ProcessId, Receiver<VectorTime>>> =
            (0..n).map(|_| HashMap::new()).collect();
        for e in self.topology.edges() {
            for (u, v) in [(e.lo(), e.hi()), (e.hi(), e.lo())] {
                let (dtx, drx) = sync_channel::<Wire>(0);
                data_out[u].insert(v, dtx);
                data_in[v].insert(u, drx);
                let (atx, arx) = sync_channel::<VectorTime>(0);
                ack_out[v].insert(u, atx);
                ack_in[u].insert(v, arx);
            }
        }
        let dim = self.decomposition.len();
        let mut ctxs: Vec<ProcessCtx> = Vec::with_capacity(n);
        // Assemble contexts back-to-front so we can pop from the vectors.
        let mut parts: Vec<_> = data_out
            .into_iter()
            .zip(data_in)
            .zip(ack_out.into_iter().zip(ack_in))
            .collect();
        for (id, ((d_out, d_in), (a_out, a_in))) in parts.drain(..).enumerate() {
            ctxs.push(ProcessCtx {
                id,
                clock: ProcessClock::new(dim),
                decomposition: self.decomposition.clone(),
                observer: self.observer.clone(),
                seq: 0,
                data_out: d_out,
                data_in: d_in,
                ack_out: a_out,
                ack_in: a_in,
                log: Vec::new(),
            });
        }

        let results: Vec<Result<Vec<LogEntry>, RuntimeError>> = std::thread::scope(|s| {
            let handles: Vec<_> = behaviors
                .into_iter()
                .zip(ctxs)
                .map(|(behavior, mut ctx)| {
                    s.spawn(move || {
                        behavior(&mut ctx)?;
                        Ok(ctx.log)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(p, h)| {
                    h.join()
                        .unwrap_or(Err(RuntimeError::BehaviorPanicked { process: p }))
                })
                .collect()
        });

        let mut logs = Vec::with_capacity(n);
        for r in results {
            logs.push(r?);
        }
        Ok(RuntimeRun {
            process_count: n,
            logs,
        })
    }
}

/// The logs of a completed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeRun {
    process_count: usize,
    logs: Vec<Vec<LogEntry>>,
}

impl RuntimeRun {
    /// The per-process execution logs.
    pub fn logs(&self) -> &[Vec<LogEntry>] {
        &self.logs
    }

    /// Rebuilds the [`SyncComputation`] the execution performed, together
    /// with the piggybacked per-message timestamps (re-indexed by the
    /// computation's message ids).
    ///
    /// That the rebuild succeeds at all is itself a check: it certifies the
    /// logged per-process orders are realizable by a synchronous execution
    /// — which they are, having just been executed by one.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError`]s from sequence reconstruction (these would
    /// indicate a runtime bug, e.g. mismatched logs).
    pub fn reconstruct(&self) -> Result<(SyncComputation, MessageTimestamps), TraceError> {
        let sequences: Vec<Vec<EventKind>> = self
            .logs
            .iter()
            .map(|log| {
                log.iter()
                    .map(|entry| match entry {
                        LogEntry::Sent { key, .. } => EventKind::Send(MessageId(*key as usize)),
                        LogEntry::Received { key, .. } => {
                            EventKind::Receive(MessageId(*key as usize))
                        }
                        LogEntry::Internal => EventKind::Internal,
                    })
                    .collect()
            })
            .collect();
        let computation = SyncComputation::from_process_sequences(sequences)?;
        // Re-associate stamps: process p's i-th logged rendezvous is its
        // i-th message in the rebuilt computation's local order.
        let mut stamps: Vec<Option<VectorTime>> = vec![None; computation.message_count()];
        for (p, log) in self.logs.iter().enumerate() {
            let local = computation.process_messages(p);
            let mut next = 0usize;
            for entry in log {
                let stamp = match entry {
                    LogEntry::Sent { stamp, .. } | LogEntry::Received { stamp, .. } => stamp,
                    LogEntry::Internal => continue,
                };
                let id = local[next];
                next += 1;
                match &stamps[id.0] {
                    None => stamps[id.0] = Some(stamp.clone()),
                    Some(prev) => {
                        // Both endpoints logged the same timestamp.
                        debug_assert_eq!(prev, stamp, "endpoint stamps disagree for {id}");
                    }
                }
            }
        }
        let vectors: Vec<VectorTime> = stamps
            .into_iter()
            .map(|s| s.expect("every message has at least one logged endpoint"))
            .collect();
        Ok((computation, MessageTimestamps::new(vectors)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_graph::{decompose, topology};
    use synctime_trace::Oracle;

    fn ping_pong(rounds: u64) -> (Runtime, Vec<Behavior>) {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let a: Behavior = Box::new(move |ctx| {
            for i in 0..rounds {
                ctx.send(1, i)?;
                let (echo, _) = ctx.receive_from(1)?;
                assert_eq!(echo, i * 2);
            }
            Ok(())
        });
        let b: Behavior = Box::new(move |ctx| {
            for _ in 0..rounds {
                let (x, _) = ctx.receive_from(0)?;
                ctx.internal();
                ctx.send(0, x * 2)?;
            }
            Ok(())
        });
        (rt, vec![a, b])
    }

    #[test]
    fn ping_pong_reconstructs() {
        let (rt, behaviors) = ping_pong(5);
        let run = rt.run(behaviors).unwrap();
        let (comp, stamps) = run.reconstruct().unwrap();
        assert_eq!(comp.message_count(), 10);
        assert_eq!(stamps.dim(), 1);
        assert!(stamps.encodes(&Oracle::new(&comp)));
        // Scalar components strictly increase: the path is a star (Lemma 1).
        let vals: Vec<u64> = stamps.vectors().iter().map(|v| v.component(0)).collect();
        assert_eq!(vals, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn timestamps_match_simulator_on_same_computation() {
        let (rt, behaviors) = ping_pong(3);
        let run = rt.run(behaviors).unwrap();
        let (comp, live_stamps) = run.reconstruct().unwrap();
        let dec = decompose::best_known(&topology::path(2));
        let sim_stamps = synctime_core::online::OnlineStamper::new(&dec)
            .stamp_computation(&comp)
            .unwrap();
        assert_eq!(live_stamps, sim_stamps);
    }

    #[test]
    fn no_channel_is_reported() {
        let topo = topology::path(3);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let result = rt.run(vec![
            Box::new(|ctx| match ctx.send(2, 1) {
                Err(RuntimeError::NoChannel { from: 0, to: 2 }) => Ok(()),
                other => panic!("expected NoChannel, got {other:?}"),
            }),
            Box::new(|_| Ok(())),
            Box::new(|_| Ok(())),
        ]);
        assert!(result.is_ok());
    }

    #[test]
    fn peer_termination_is_reported() {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let err = rt
            .run(vec![
                Box::new(|ctx| {
                    // Peer exits immediately; this receive must fail, not hang.
                    match ctx.receive_from(1) {
                        Err(RuntimeError::PeerTerminated { peer: 1 }) => {
                            Err(RuntimeError::PeerTerminated { peer: 1 })
                        }
                        other => panic!("expected PeerTerminated, got {other:?}"),
                    }
                }),
                Box::new(|_| Ok(())),
            ])
            .unwrap_err();
        assert_eq!(err, RuntimeError::PeerTerminated { peer: 1 });
    }

    #[test]
    fn concurrent_branches_get_concurrent_stamps() {
        // A 5-node tree: two independent leaf pairs talk to their hubs
        // concurrently; the runtime's stamps must reflect the concurrency.
        let topo = topology::balanced_tree(2, 2); // 0 -> {1,2}, 1 -> {3,4}, 2 -> {5,6}
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let mk_leaf = |hub: ProcessId| -> Behavior {
            Box::new(move |ctx| {
                ctx.send(hub, ctx.id() as u64)?;
                Ok(())
            })
        };
        let mk_hub = |leaves: Vec<ProcessId>| -> Behavior {
            Box::new(move |ctx| {
                for leaf in leaves {
                    ctx.receive_from(leaf)?;
                }
                Ok(())
            })
        };
        let run = rt
            .run(vec![
                Box::new(|_| Ok(())), // root idles
                mk_hub(vec![3, 4]),
                mk_hub(vec![5, 6]),
                mk_leaf(1),
                mk_leaf(1),
                mk_leaf(2),
                mk_leaf(2),
            ])
            .unwrap();
        let (comp, stamps) = run.reconstruct().unwrap();
        assert_eq!(comp.message_count(), 4);
        let oracle = Oracle::new(&comp);
        assert!(stamps.encodes(&oracle));
        // Messages into hub 1 are concurrent with messages into hub 2.
        let (into1, into2): (Vec<&synctime_trace::Message>, Vec<&synctime_trace::Message>) =
            comp.messages().iter().partition(|m| m.receiver == 1);
        for a in &into1 {
            for b in &into2 {
                assert!(stamps.concurrent(a.id, b.id), "{} vs {}", a.id, b.id);
            }
        }
    }

    #[test]
    fn observer_streams_live_stamps() {
        let (rt, behaviors) = ping_pong(4);
        let (tx, rx) = std::sync::mpsc::channel();
        let rt = rt.with_observer(tx);
        let run = rt.run(behaviors).unwrap();
        let observations: Vec<LiveObservation> = rx.try_iter().collect();
        assert_eq!(observations.len(), 8, "one observation per message");
        // Every observation's stamp matches the reconstructed run's stamp
        // for the same key (keys appear in the logs).
        let (comp, stamps) = run.reconstruct().unwrap();
        assert!(stamps.encodes(&Oracle::new(&comp)));
        for obs in &observations {
            let logged = run
                .logs()
                .iter()
                .flatten()
                .find_map(|e| match e {
                    LogEntry::Sent { key, stamp, .. } if *key == obs.key => Some(stamp),
                    _ => None,
                })
                .expect("observed key was logged");
            assert_eq!(logged, &obs.stamp);
        }
        // Dropping the receiver must not break later runs.
        let (rt2, behaviors2) = ping_pong(2);
        let (tx2, rx2) = std::sync::mpsc::channel();
        drop(rx2);
        assert!(rt2.with_observer(tx2).run(behaviors2).is_ok());
    }

    #[test]
    fn panicking_behavior_surfaces() {
        let topo = topology::path(2);
        let dec = decompose::best_known(&topo);
        let rt = Runtime::new(&topo, &dec);
        let err = rt
            .run(vec![Box::new(|_| panic!("boom")), Box::new(|_| Ok(()))])
            .unwrap_err();
        assert_eq!(err, RuntimeError::BehaviorPanicked { process: 0 });
    }
}
