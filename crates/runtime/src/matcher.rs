//! The rendezvous matcher: one slot per directed channel.
//!
//! PR 1 implemented rendezvous as zero-capacity mpsc channels re-polled
//! every 200µs, with a second channel pair for the Figure 5
//! acknowledgement. This module replaces that with a single mutex+condvar
//! **slot** per directed channel carrying the whole exchange:
//!
//! ```text
//!   Empty ──sender deposits──▶ Offered(wire) ──receiver takes, acks──▶
//!   Acked(vector) ──sender merges, resets──▶ Empty
//! ```
//!
//! The receiver takes the offer and deposits the acknowledgement under a
//! single lock hold, so the vector exchange piggybacks on the wakeup: one
//! `notify` delivers the program message, one `notify` delivers the ack,
//! and a blocked endpoint consumes zero CPU while parked. The
//! [`Matcher::Polling`] strategy keeps PR 1's poll-loop behavior selectable
//! so benchmarks can measure the parking fast path against it
//! (`results/BENCH_online_runtime.json`).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How blocked rendezvous endpoints wait for their partner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Matcher {
    /// Park on the channel slot's condvar; the partner's deposit wakes the
    /// thread directly. Idle processes consume no CPU.
    #[default]
    Parking,
    /// Re-poll the slot every [`BLOCK_POLL`] — PR 1's strategy, kept as a
    /// measurable baseline for the parking fast path.
    Polling,
}

/// How often the [`Matcher::Polling`] strategy re-checks a slot.
pub const BLOCK_POLL: Duration = Duration::from_micros(200);

/// Upper bound on one parked wait under [`Matcher::Parking`]. Watchdog
/// aborts and peer exits notify the slot explicitly, so this is pure
/// insurance against a lost wakeup, not a progress mechanism.
const PARK_BACKSTOP: Duration = Duration::from_millis(250);

/// What travels on a program message: the payload plus the piggybacked
/// vector (line 02 of Figure 5) and a globally unique key used only for
/// post-hoc trace reconstruction. The vector rides as its *encoded* bytes
/// — a per-channel Singhal–Kshemkalyani delta stream produced by the
/// sender's `DeltaEncoder` and consumed by the receiver's `DeltaDecoder` —
/// so what the stats count as wire bytes is what is actually carried.
#[derive(Debug)]
pub(crate) struct Wire {
    pub(crate) key: u64,
    pub(crate) payload: u64,
    /// Delta-encoded piggybacked vector (`synctime_core::wire` framing).
    pub(crate) vector: Vec<u8>,
}

/// One rendezvous slot's state. Timestamps record when the state became
/// observable so the other side can report wakeup latency.
#[derive(Debug)]
pub(crate) enum SlotState {
    /// No rendezvous in flight.
    Empty,
    /// The sender deposited a message at `at` and is waiting for the
    /// acknowledgement.
    Offered {
        /// The in-flight message.
        wire: Wire,
        /// When the offer was deposited (and the receiver notified).
        at: Instant,
    },
    /// The receiver took the offer at `taken`, ran lines 04–06 of Figure 5,
    /// and deposited the pre-update vector at `acked`.
    Acked {
        /// The acknowledgement payload (receiver's pre-update vector),
        /// delta-encoded like [`Wire::vector`] but on the reverse stream.
        ack: Vec<u8>,
        /// When the receiver took the matching offer.
        taken: Instant,
        /// When the acknowledgement was deposited (and the sender notified).
        acked: Instant,
    },
    /// The receiver took the offer but could not decode its piggybacked
    /// vector (a delta-stream sequence gap): it asks the sender to
    /// re-offer the same message as a full-vector resync frame. Deposited
    /// in place of `Acked`, consumed by the sender's resync loop.
    ResyncRequested,
}

/// A directed channel's rendezvous slot: both endpoints hold an `Arc` to it.
#[derive(Debug)]
pub(crate) struct ChannelSlot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

impl ChannelSlot {
    pub(crate) fn new() -> Self {
        ChannelSlot {
            state: Mutex::new(SlotState::Empty),
            cond: Condvar::new(),
        }
    }

    /// Locks the slot, recovering from poisoning: a panicking endpoint must
    /// not cascade into panics on every survivor that later touches the
    /// channel. Slot state transitions are individually consistent (each
    /// deposit writes a complete state), so the recovered guard is safe to
    /// use — at worst the survivor observes debris from the aborted
    /// exchange, which the wait loops already tolerate.
    pub(crate) fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Notifies the slot's waiters (call with the guard held or just
    /// released; deposits in this crate always notify under the lock).
    pub(crate) fn notify(&self) {
        self.cond.notify_all();
    }

    /// Wakes any thread parked on this slot without changing its state.
    /// Used by the watchdog (abort) and by exiting processes so parked
    /// peers re-check their abort/liveness conditions promptly.
    pub(crate) fn wake(&self) {
        // Taking the lock before notifying guarantees a thread that checked
        // its condition and is about to wait cannot miss this notification.
        let _guard = self.lock();
        self.cond.notify_all();
    }

    /// One blocked-wait step under the given strategy: parks on the condvar
    /// (with a backstop timeout) or sleeps one poll interval and re-locks.
    ///
    /// `cap` bounds this single step from above so a caller enforcing a
    /// rendezvous timeout is woken close to its deadline instead of a full
    /// park backstop past it.
    pub(crate) fn wait_step<'a>(
        &'a self,
        guard: MutexGuard<'a, SlotState>,
        matcher: Matcher,
        cap: Option<Duration>,
    ) -> MutexGuard<'a, SlotState> {
        match matcher {
            Matcher::Parking => {
                let step = cap.map_or(PARK_BACKSTOP, |c| c.min(PARK_BACKSTOP));
                self.cond
                    .wait_timeout(guard, step)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            Matcher::Polling => {
                drop(guard);
                std::thread::sleep(cap.map_or(BLOCK_POLL, |c| c.min(BLOCK_POLL)));
                self.lock()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn slot_roundtrip_carries_wire_and_ack() {
        use synctime_core::wire::{DeltaDecoder, DeltaEncoder};
        use synctime_core::VectorTime;

        let slot = Arc::new(ChannelSlot::new());
        let receiver = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let mut st = slot.lock();
                loop {
                    match std::mem::replace(&mut *st, SlotState::Empty) {
                        SlotState::Offered { wire, .. } => {
                            let mut dec = DeltaDecoder::new();
                            let v = dec.decode(0, &wire.vector).expect("decodable vector");
                            let now = Instant::now();
                            *st = SlotState::Acked {
                                ack: DeltaEncoder::new().encode(0, &VectorTime::zero(v.dim())),
                                taken: now,
                                acked: now,
                            };
                            slot.notify();
                            return wire.payload;
                        }
                        other => {
                            *st = other;
                            st = slot.wait_step(st, Matcher::Parking, None);
                        }
                    }
                }
            })
        };
        let mut st = slot.lock();
        *st = SlotState::Offered {
            wire: Wire {
                key: 1,
                payload: 42,
                vector: DeltaEncoder::new().encode(1, &VectorTime::from(vec![3, 4])),
            },
            at: Instant::now(),
        };
        slot.notify();
        loop {
            match std::mem::replace(&mut *st, SlotState::Empty) {
                SlotState::Acked { ack, .. } => {
                    let v = DeltaDecoder::new().decode(0, &ack).expect("decodable ack");
                    assert_eq!(v.dim(), 2);
                    break;
                }
                other => {
                    *st = other;
                    st = slot.wait_step(st, Matcher::Parking, None);
                }
            }
        }
        drop(st);
        assert_eq!(receiver.join().unwrap(), 42);
    }

    #[test]
    fn poisoned_slot_is_recovered_not_cascaded() {
        // A thread panicking while holding the slot lock must not make
        // every later lock() on the slot panic too.
        let slot = Arc::new(ChannelSlot::new());
        let poisoner = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let _guard = slot.lock();
                panic!("poison the slot");
            })
        };
        assert!(poisoner.join().is_err());
        let guard = slot.lock(); // must not panic
        assert!(matches!(*guard, SlotState::Empty));
        drop(guard);
        // wait_step's re-lock paths recover too.
        let guard = slot.lock();
        let _guard = slot.wait_step(guard, Matcher::Parking, Some(Duration::from_millis(1)));
    }

    #[test]
    fn capped_parking_wait_returns_promptly() {
        let slot = ChannelSlot::new();
        let guard = slot.lock();
        let t0 = Instant::now();
        let _guard = slot.wait_step(guard, Matcher::Parking, Some(Duration::from_millis(5)));
        assert!(t0.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn polling_wait_step_relocks_after_interval() {
        let slot = ChannelSlot::new();
        let guard = slot.lock();
        let t0 = Instant::now();
        let guard = slot.wait_step(guard, Matcher::Polling, None);
        assert!(t0.elapsed() >= BLOCK_POLL);
        assert!(matches!(*guard, SlotState::Empty));
    }
}
