//! ASCII space–time diagrams of synchronous computations.
//!
//! The monitoring systems the paper cites (POET, XPVM) visualize
//! computations as process lines with message arrows; for synchronous
//! computations all arrows are vertical (Section 2), so each rendezvous is
//! a single column. This renderer draws one row per process and one column
//! per event slot:
//!
//! ```text
//!      m1  m2  m3   .
//! P1    S   .   .   o
//! P2    R   .   S   .
//! P3    .   S   R   .
//! P4    .   R   .   .
//! ```
//!
//! `S`/`R` mark a message's sender and receiver (same column — the
//! vertical arrow), `o` marks an internal event, `.` is idle.

use crate::computation::{EventKind, SyncComputation};

/// Renders the computation as an ASCII space–time diagram.
///
/// Columns appear in rendezvous order; each internal event takes its own
/// column placed before the next rendezvous its process participates in
/// (or at the end). Messages are labelled `m1, m2, ...` in the header;
/// internal-event columns are labelled `.`.
pub fn render(computation: &SyncComputation) -> String {
    render_with_labels(computation, |m| format!("m{}", m + 1))
}

/// Like [`render`], but message columns are labelled by `label(index)` —
/// e.g. with their vector timestamps.
pub fn render_with_labels<F>(computation: &SyncComputation, label: F) -> String
where
    F: Fn(usize) -> String,
{
    let n = computation.process_count();
    // Build columns: internal events sort right before their process's
    // next rendezvous (key = that message's id; trailing internals get
    // key = message_count). Within a key, internals of lower process ids
    // come first and the message itself comes last.
    #[derive(Clone)]
    enum Column {
        Message(usize),
        Internal { process: usize },
    }
    let mut keyed: Vec<(usize, usize, Column)> = Vec::new(); // (key, subkey, col)
    for p in 0..n {
        for (i, ev) in computation.history(p).iter().enumerate() {
            if ev.is_internal() {
                let key = computation
                    .message_at_or_after(crate::computation::EventId::new(p, i))
                    .map_or(computation.message_count(), |m| m.0);
                keyed.push((key, p, Column::Internal { process: p }));
            }
        }
    }
    for m in 0..computation.message_count() {
        keyed.push((m, usize::MAX, Column::Message(m)));
    }
    keyed.sort_by_key(|(key, sub, _)| (*key, *sub));

    // Lay out cells.
    let labels: Vec<String> = keyed
        .iter()
        .map(|(_, _, col)| match col {
            Column::Message(m) => label(*m),
            Column::Internal { .. } => ".".to_string(),
        })
        .collect();
    let name_width = format!("P{n}").len().max(2);
    let widths: Vec<usize> = labels.iter().map(|l| l.len().max(1)).collect();

    let mut out = String::new();
    // Header.
    out.push_str(&" ".repeat(name_width));
    for (l, w) in labels.iter().zip(&widths) {
        out.push_str(&format!("  {l:>w$}"));
    }
    out.push('\n');
    // One row per process; track per-process internal cursors so each
    // internal column marks exactly its own process.
    for p in 0..n {
        out.push_str(&format!("{:>name_width$}", format!("P{}", p + 1)));
        for ((_, sub, col), w) in keyed.iter().zip(&widths) {
            let cell = match col {
                Column::Message(m) => {
                    let msg = computation.messages()[*m];
                    if msg.sender == p {
                        "S"
                    } else if msg.receiver == p {
                        "R"
                    } else {
                        "."
                    }
                }
                Column::Internal { process } if *process == p && *sub == p => "o",
                Column::Internal { .. } => ".",
            };
            out.push_str(&format!("  {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// A compact per-process textual summary (one line per process listing its
/// history), useful in logs and error messages.
pub fn summarize(computation: &SyncComputation) -> String {
    let mut out = String::new();
    for p in 0..computation.process_count() {
        out.push_str(&format!("P{}:", p + 1));
        for ev in computation.history(p) {
            match ev {
                EventKind::Internal => out.push_str(" o"),
                EventKind::Send(m) => out.push_str(&format!(" !{m}")),
                EventKind::Receive(m) => out.push_str(&format!(" ?{m}")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computation::Builder;
    use crate::examples::figure1;

    #[test]
    fn renders_figure1() {
        let s = render(&figure1());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 processes
        assert!(lines[0].contains("m1") && lines[0].contains("m6"));
        // m1: P1 -> P2 in the first message column.
        let header_cols: Vec<&str> = lines[0].split_whitespace().collect();
        assert_eq!(header_cols[0], "m1");
        let p1: Vec<&str> = lines[1].split_whitespace().collect();
        let p2: Vec<&str> = lines[2].split_whitespace().collect();
        assert_eq!(p1[1], "S");
        assert_eq!(p2[1], "R");
    }

    #[test]
    fn internal_events_get_their_own_columns() {
        let mut b = Builder::new(2);
        b.internal(0).unwrap();
        b.message(0, 1).unwrap();
        b.internal(1).unwrap();
        let c = b.build();
        let s = render(&c);
        let lines: Vec<&str> = s.lines().collect();
        // Columns: internal(P1), m1, internal(P2).
        let p1: Vec<&str> = lines[1].split_whitespace().collect();
        let p2: Vec<&str> = lines[2].split_whitespace().collect();
        assert_eq!(&p1[1..], &["o", "S", "."]);
        assert_eq!(&p2[1..], &[".", "R", "o"]);
    }

    #[test]
    fn custom_labels() {
        let mut b = Builder::new(2);
        b.message(0, 1).unwrap();
        let c = b.build();
        let s = render_with_labels(&c, |m| format!("({m})"));
        assert!(s.lines().next().unwrap().contains("(0)"));
    }

    #[test]
    fn summary_lists_histories() {
        let mut b = Builder::new(2);
        b.message(0, 1).unwrap();
        b.internal(1).unwrap();
        let c = b.build();
        let s = summarize(&c);
        assert_eq!(s, "P1: !m1\nP2: ?m1 o\n");
    }

    #[test]
    fn empty_computation_renders_header_only() {
        let c = Builder::new(3).build();
        let s = render(&c);
        assert_eq!(s.lines().count(), 4);
    }
}

#[cfg(test)]
mod label_tests {
    use super::*;
    use crate::computation::Builder;

    #[test]
    fn message_only_columns_keep_process_rows_aligned() {
        let mut b = Builder::new(3);
        b.message(0, 2).unwrap();
        b.message(1, 2).unwrap();
        let c = b.build();
        let s = render(&c);
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged rows: {s}");
    }

    #[test]
    fn wide_labels_widen_columns() {
        let mut b = Builder::new(2);
        b.message(0, 1).unwrap();
        let c = b.build();
        let s = render_with_labels(&c, |_| "(10,20,30)".to_string());
        assert!(s.lines().next().unwrap().contains("(10,20,30)"));
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }
}
