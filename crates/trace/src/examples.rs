//! The worked example computations of the paper's figures.
//!
//! The paper's figures are drawings we cannot recover pixel-exactly from
//! text, so each reconstruction here is constrained to satisfy every
//! relation the prose states about it; the corresponding tests assert those
//! relations against the [`Oracle`](crate::Oracle).

use synctime_graph::{topology, Edge, EdgeDecomposition, EdgeGroup};

use crate::computation::{Builder, MessageId, SyncComputation};

/// The synchronous computation of **Figure 1**: 4 processes, 6 messages,
/// with `m1 ‖ m2`, `m1 ▷ m3`, `m2 ↦ m6`, `m3 ↦ m5`, and a synchronous chain
/// of size 4 from `m1` to `m5` (`m1 ↦ m3 ↦ m4 ↦ m5`).
pub fn figure1() -> SyncComputation {
    let mut b = Builder::new(4);
    b.message(0, 1).expect("m1: P1 -> P2");
    b.message(2, 3).expect("m2: P3 -> P4");
    b.message(1, 2).expect("m3: P2 -> P3");
    b.message(2, 3).expect("m4: P3 -> P4");
    b.message(3, 2).expect("m5: P4 -> P3");
    b.message(0, 1).expect("m6: P1 -> P2");
    b.build()
}

/// The message ids `m1..m6` of [`figure1`], for readable assertions.
pub fn figure1_messages() -> [MessageId; 6] {
    [0, 1, 2, 3, 4, 5].map(MessageId)
}

/// The computation of **Figure 6**: a fully-connected system with 5
/// processes, 8 messages. The third message, `P2 -> P3`, is the one the
/// paper walks through: its channel lies in edge group `E2` and it is
/// timestamped `(1, 1, 1)` because the local vectors of `P2` and `P3`
/// before the exchange are `(1, 0, 0)` and `(0, 0, 1)`.
pub fn figure6() -> SyncComputation {
    let mut b = Builder::with_topology(&topology::complete(5));
    b.message(0, 1).expect("m1: P1 -> P2, group E1");
    b.message(2, 3).expect("m2: P3 -> P4, group E3");
    b.message(1, 2).expect("m3: P2 -> P3, group E2");
    b.message(3, 4).expect("m4: P4 -> P5, group E3");
    b.message(0, 3).expect("m5: P1 -> P4, group E1");
    b.message(1, 4).expect("m6: P2 -> P5, group E2");
    b.message(4, 2).expect("m7: P5 -> P3, group E3");
    b.message(0, 1).expect("m8: P1 -> P2, group E1");
    b.build()
}

/// The edge decomposition of **Figure 6** (and Figure 3(a)): the complete
/// graph `K5` split into two stars and one triangle:
/// `E1 = star@P1`, `E2 = star@P2`, `E3 = triangle(P3, P4, P5)`.
pub fn figure6_decomposition() -> EdgeDecomposition {
    EdgeDecomposition::new(vec![
        EdgeGroup::star(
            0,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(0, 4),
            ],
        ),
        EdgeGroup::star(1, vec![Edge::new(1, 2), Edge::new(1, 3), Edge::new(1, 4)]),
        EdgeGroup::triangle(2, 3, 4),
    ])
    .expect("the three groups partition K5's edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;

    #[test]
    fn fig1_relations() {
        let c = figure1();
        let o = Oracle::new(&c);
        let [m1, m2, m3, _m4, m5, m6] = figure1_messages();
        // The relations stated in Section 2 about Figure 1:
        assert!(o.concurrent(m1, m2), "m1 || m2");
        assert!(o.synchronously_precedes(m1, m3), "m1 |> m3");
        assert!(o.synchronously_precedes(m2, m6), "m2 |-> m6");
        assert!(o.synchronously_precedes(m3, m5), "m3 |-> m5");
        // A synchronous chain of size 4 ends at m5: m1 -> m3 -> m4 -> m5.
        assert_eq!(o.chain_depths()[m5.0], 4);
    }

    #[test]
    fn fig6_shape() {
        let c = figure6();
        assert_eq!(c.process_count(), 5);
        assert_eq!(c.message_count(), 8);
        let dec = figure6_decomposition();
        dec.validate(&topology::complete(5)).unwrap();
        assert_eq!(dec.len(), 3);
        // The walked-through message m3 = P2 -> P3 lies in E2 (index 1).
        let m3 = c.message(MessageId(2));
        assert_eq!((m3.sender, m3.receiver), (1, 2));
        assert_eq!(dec.group_of(Edge::new(1, 2)), Some(1));
    }
}
