use synctime_poset::Poset;

use crate::computation::{EventId, MessageId, SyncComputation};

/// Ground-truth order relations of a computation, computed by transitive
/// closure. Every timestamping algorithm in the workspace is tested against
/// this oracle.
///
/// ```
/// use synctime_trace::{Builder, Oracle};
///
/// let mut b = Builder::new(3);
/// let m1 = b.message(0, 1)?;
/// let m2 = b.message(1, 2)?; // shares P2 with m1
/// let comp = b.build();
/// let oracle = Oracle::new(&comp);
/// assert!(oracle.synchronously_precedes(m1, m2));
/// # Ok::<(), synctime_trace::TraceError>(())
/// ```
///
/// * The **message poset** `(M, ↦)` of Section 2: `↦` is the transitive
///   closure of `▷`, where `m1 ▷ m2` holds when an endpoint of `m1`
///   precedes an endpoint of `m2` on a shared process. Within a process the
///   local order is total, so the per-process *consecutive* message pairs
///   generate the same closure.
/// * The **event relation** `→` of Section 5: Lamport's happened-before
///   over both the application messages *and* their acknowledgements. With
///   rendezvous semantics the two endpoints of a message act as one
///   synchronization point: for events on different processes,
///   `e → f` iff the first message at-or-after `e` equals or synchronously
///   precedes the last message at-or-before `f`.
#[derive(Debug, Clone)]
pub struct Oracle {
    poset: Poset,
}

impl Oracle {
    /// Builds the oracle for a computation.
    ///
    /// Cost: `O(|M|² / 64)` space/time for the closure bitsets.
    pub fn new(computation: &SyncComputation) -> Self {
        let mut pairs = Vec::new();
        for p in 0..computation.process_count() {
            for w in computation.process_messages(p).windows(2) {
                pairs.push((w[0].0, w[1].0));
            }
        }
        let poset = Poset::from_cover_edges(computation.message_count(), &pairs)
            .expect("rendezvous order is a topological witness, so no cycle exists");
        Oracle { poset }
    }

    /// The message poset `(M, ↦)` with elements indexed by message id.
    pub fn message_poset(&self) -> &Poset {
        &self.poset
    }

    /// `m1 ↦ m2`: m1 synchronously precedes m2.
    pub fn synchronously_precedes(&self, m1: MessageId, m2: MessageId) -> bool {
        self.poset.lt(m1.0, m2.0)
    }

    /// `m1 ‖ m2`: distinct and ordered neither way.
    pub fn concurrent(&self, m1: MessageId, m2: MessageId) -> bool {
        self.poset.concurrent(m1.0, m2.0)
    }

    /// The size of the longest synchronous chain ending at each message
    /// (1 for minimal messages) — the induction measure of Theorem 4.
    pub fn chain_depths(&self) -> Vec<usize> {
        let mut depth = vec![1usize; self.poset.len()];
        for v in self.poset.linear_extension() {
            for w in self.poset.above(v) {
                depth[w] = depth[w].max(depth[v] + 1);
            }
        }
        depth
    }

    /// Lamport's happened-before `e → f` (irreflexive), crossing messages
    /// and acknowledgements, evaluated against `computation` (which must be
    /// the one this oracle was built from).
    pub fn happened_before(&self, computation: &SyncComputation, e: EventId, f: EventId) -> bool {
        if e.process == f.process {
            return e.index < f.index;
        }
        let Some(me) = computation.message_at_or_after(e) else {
            return false;
        };
        let Some(mf) = computation.message_at_or_before(f) else {
            return false;
        };
        me == mf || self.synchronously_precedes(me, mf)
    }

    /// Whether two events are causally concurrent (distinct, no
    /// happened-before either way).
    pub fn events_concurrent(&self, computation: &SyncComputation, e: EventId, f: EventId) -> bool {
        e != f
            && !self.happened_before(computation, e, f)
            && !self.happened_before(computation, f, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computation::Builder;

    /// P1 -> P2 (m1), P3 -> P4 (m2), P2 -> P3 (m3), then P3 -> P4 (m4).
    fn sample() -> (SyncComputation, Vec<MessageId>) {
        let mut b = Builder::new(4);
        let m1 = b.message(0, 1).unwrap();
        let m2 = b.message(2, 3).unwrap();
        let m3 = b.message(1, 2).unwrap();
        let m4 = b.message(2, 3).unwrap();
        (b.build(), vec![m1, m2, m3, m4])
    }

    #[test]
    fn direct_and_transitive_precedence() {
        let (c, m) = sample();
        let o = Oracle::new(&c);
        assert!(o.synchronously_precedes(m[0], m[2])); // share P2
        assert!(o.synchronously_precedes(m[1], m[2])); // share P3
        assert!(o.synchronously_precedes(m[0], m[3])); // transitive via m3
        assert!(!o.synchronously_precedes(m[2], m[0]));
        assert!(o.concurrent(m[0], m[1]));
        assert!(!o.concurrent(m[0], m[0]));
    }

    #[test]
    fn chain_depths_measure_longest_chain() {
        let (c, _) = sample();
        let o = Oracle::new(&c);
        // m1 and m2 minimal (depth 1), m3 depth 2, m4 depth 3.
        assert_eq!(o.chain_depths(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn happened_before_same_process() {
        let mut b = Builder::new(2);
        let e1 = b.internal(0).unwrap();
        b.message(0, 1).unwrap();
        let e2 = b.internal(0).unwrap();
        let c = b.build();
        let o = Oracle::new(&c);
        assert!(o.happened_before(&c, e1, e2));
        assert!(!o.happened_before(&c, e2, e1));
        assert!(!o.happened_before(&c, e1, e1));
    }

    #[test]
    fn happened_before_crosses_messages_and_acks() {
        let mut b = Builder::new(2);
        let e_before = b.internal(0).unwrap(); // on sender, before m
        let m = b.message(0, 1).unwrap();
        let e_sender_after = b.internal(0).unwrap();
        let e_receiver_after = b.internal(1).unwrap();
        let c = b.build();
        let o = Oracle::new(&c);
        let (s, r) = c.message_endpoints(m);
        // Through the message: sender-side past -> receiver-side future.
        assert!(o.happened_before(&c, e_before, e_receiver_after));
        assert!(o.happened_before(&c, s, e_receiver_after));
        // Through the acknowledgement: the receive endpoint precedes the
        // sender's subsequent events.
        assert!(o.happened_before(&c, r, e_sender_after));
        // The two endpoints synchronize both ways (rendezvous), so the
        // internal events on opposite sides after/before are ordered.
        assert!(!o.events_concurrent(&c, e_before, e_receiver_after));
    }

    #[test]
    fn unrelated_internal_events_are_concurrent() {
        let mut b = Builder::new(3);
        let e0 = b.internal(0).unwrap();
        let e2 = b.internal(2).unwrap();
        b.message(0, 1).unwrap();
        let c = b.build();
        let o = Oracle::new(&c);
        assert!(o.events_concurrent(&c, e0, e2));
    }

    #[test]
    fn endpoints_of_one_message_are_mutually_ordered() {
        // With rendezvous + acknowledgements, s(m) -> r(m) and r(m) -> any
        // later sender event; s and r themselves satisfy s -> r (message)
        // and r -> s? By our definition message_at_or_* of both endpoints is
        // m itself, so both directions hold — they are one synchronization
        // point, never concurrent.
        let mut b = Builder::new(2);
        let m = b.message(0, 1).unwrap();
        let c = b.build();
        let o = Oracle::new(&c);
        let (s, r) = c.message_endpoints(m);
        assert!(o.happened_before(&c, s, r));
        assert!(o.happened_before(&c, r, s));
        assert!(!o.events_concurrent(&c, s, r));
    }

    #[test]
    fn events_before_any_message_are_isolated() {
        let mut b = Builder::new(2);
        let e0 = b.internal(0).unwrap();
        let e1 = b.internal(1).unwrap();
        let c = b.build();
        let o = Oracle::new(&c);
        assert!(o.events_concurrent(&c, e0, e1));
    }

    #[test]
    fn empty_computation_oracle() {
        let c = Builder::new(3).build();
        let o = Oracle::new(&c);
        assert_eq!(o.message_poset().len(), 0);
        assert!(o.chain_depths().is_empty());
    }
}
