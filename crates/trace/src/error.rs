use std::fmt;

use crate::computation::ProcessId;

/// Errors produced while building or validating computation traces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A process id was at least the process count.
    ProcessOutOfRange {
        /// The offending process.
        process: ProcessId,
        /// Number of processes in the computation.
        process_count: usize,
    },
    /// A message's sender equals its receiver.
    SelfMessage(ProcessId),
    /// A message uses a channel absent from the declared topology.
    NotAChannel {
        /// The sending process.
        sender: ProcessId,
        /// The receiving process.
        receiver: ProcessId,
    },
    /// The per-process sequences cannot be realized by any synchronous
    /// (rendezvous) execution: the process orders induce a cyclic
    /// constraint on the messages, so no vertical-arrow drawing exists.
    NotSynchronous {
        /// The index of a message on the cyclic constraint.
        message: usize,
    },
    /// Per-process sequences mention a message an inconsistent number of
    /// times (each message must appear exactly once at its sender and once
    /// at its receiver).
    MalformedSequences {
        /// The offending message index.
        message: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ProcessOutOfRange {
                process,
                process_count,
            } => {
                write!(
                    f,
                    "process {process} out of range ({process_count} processes)"
                )
            }
            TraceError::SelfMessage(p) => {
                write!(f, "process {p} cannot send a message to itself")
            }
            TraceError::NotAChannel { sender, receiver } => {
                write!(
                    f,
                    "no channel between processes {sender} and {receiver} in the topology"
                )
            }
            TraceError::NotSynchronous { message } => {
                write!(f, "no synchronous execution realizes these sequences (cycle through message {message})")
            }
            TraceError::MalformedSequences { message } => {
                write!(
                    f,
                    "message {message} does not appear exactly once at its sender and receiver"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}
