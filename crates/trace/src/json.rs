//! A human-writable JSON interchange format for computations, shared by
//! the `synctime` CLI and any external tooling:
//!
//! ```json
//! {
//!   "processes": 3,
//!   "events": [
//!     {"message": [0, 1]},
//!     {"internal": 2},
//!     {"message": [1, 2]}
//!   ]
//! }
//! ```
//!
//! Events appear in a valid rendezvous order (messages ordered, each
//! process's internal events placed relative to its rendezvous), which is
//! exactly what [`Builder`] consumes — so parsing doubles as validation.

use serde::{Deserialize, Serialize};

use crate::computation::{Builder, EventKind, ProcessId, SyncComputation};
use crate::TraceError;
use synctime_graph::Graph;

#[derive(Serialize, Deserialize)]
struct TraceFile {
    processes: usize,
    events: Vec<TraceEvent>,
}

#[derive(Serialize, Deserialize)]
enum TraceEvent {
    #[serde(rename = "message")]
    Message((ProcessId, ProcessId)),
    #[serde(rename = "internal")]
    Internal(ProcessId),
}

/// Errors from reading the JSON trace format.
#[derive(Debug)]
#[non_exhaustive]
pub enum JsonTraceError {
    /// The text is not valid JSON for the trace schema.
    Malformed(serde_json::Error),
    /// The events are structurally invalid (bad process, self-message,
    /// channel missing from the topology), with the offending event index.
    Invalid {
        /// Index into the `events` array.
        event: usize,
        /// The underlying error.
        source: TraceError,
    },
    /// The trace declares more processes than the provided topology has.
    TooManyProcesses {
        /// Processes declared by the trace.
        declared: usize,
        /// Nodes in the topology.
        available: usize,
    },
}

impl std::fmt::Display for JsonTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonTraceError::Malformed(e) => write!(f, "bad trace JSON: {e}"),
            JsonTraceError::Invalid { event, source } => {
                write!(f, "event {event}: {source}")
            }
            JsonTraceError::TooManyProcesses {
                declared,
                available,
            } => write!(
                f,
                "trace declares {declared} processes but topology has {available}"
            ),
        }
    }
}

impl std::error::Error for JsonTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonTraceError::Malformed(e) => Some(e),
            JsonTraceError::Invalid { source, .. } => Some(source),
            JsonTraceError::TooManyProcesses { .. } => None,
        }
    }
}

/// Parses the JSON trace format, optionally validating channels against a
/// topology.
///
/// # Errors
///
/// See [`JsonTraceError`].
pub fn from_json_str(
    text: &str,
    topology: Option<&Graph>,
) -> Result<SyncComputation, JsonTraceError> {
    let file: TraceFile = serde_json::from_str(text).map_err(JsonTraceError::Malformed)?;
    let mut b = match topology {
        Some(t) => {
            if t.node_count() < file.processes {
                return Err(JsonTraceError::TooManyProcesses {
                    declared: file.processes,
                    available: t.node_count(),
                });
            }
            Builder::with_topology(t)
        }
        None => Builder::new(file.processes),
    };
    for (i, ev) in file.events.iter().enumerate() {
        let result = match *ev {
            TraceEvent::Message((s, r)) => b.message(s, r).map(|_| ()),
            TraceEvent::Internal(p) => b.internal(p).map(|_| ()),
        };
        result.map_err(|source| JsonTraceError::Invalid { event: i, source })?;
    }
    Ok(b.build())
}

/// Serializes a computation to the JSON trace format (pretty-printed,
/// trailing newline). Events are emitted in a valid rendezvous order:
/// messages by id, each process's internal events before its next
/// rendezvous.
pub fn to_json_string(computation: &SyncComputation) -> String {
    let mut events = Vec::new();
    let mut cursor = vec![0usize; computation.process_count()];
    let flush = |p: usize, upto: usize, events: &mut Vec<TraceEvent>, cursor: &mut Vec<usize>| {
        while cursor[p] < upto {
            debug_assert!(matches!(
                computation.history(p)[cursor[p]],
                EventKind::Internal
            ));
            events.push(TraceEvent::Internal(p));
            cursor[p] += 1;
        }
    };
    for m in computation.messages() {
        let (se, re) = computation.message_endpoints(m.id);
        flush(m.sender, se.index, &mut events, &mut cursor);
        flush(m.receiver, re.index, &mut events, &mut cursor);
        events.push(TraceEvent::Message((m.sender, m.receiver)));
        cursor[m.sender] += 1;
        cursor[m.receiver] += 1;
    }
    for p in 0..computation.process_count() {
        let len = computation.history(p).len();
        flush(p, len, &mut events, &mut cursor);
    }
    let file = TraceFile {
        processes: computation.process_count(),
        events,
    };
    let mut s = serde_json::to_string_pretty(&file).expect("trace serializes");
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use synctime_graph::topology;

    #[test]
    fn roundtrip_preserves_histories() {
        let mut b = Builder::new(3);
        b.internal(2).unwrap();
        b.message(0, 1).unwrap();
        b.internal(1).unwrap();
        b.message(1, 2).unwrap();
        b.internal(1).unwrap();
        let comp = b.build();
        let json = to_json_string(&comp);
        let back = from_json_str(&json, None).unwrap();
        for p in 0..3 {
            assert_eq!(comp.history(p), back.history(p), "P{p}");
        }
        assert_eq!(comp.messages(), back.messages());
    }

    #[test]
    fn topology_validation() {
        let topo = topology::path(3);
        let good = r#"{"processes": 3, "events": [{"message": [0, 1]}]}"#;
        assert!(from_json_str(good, Some(&topo)).is_ok());
        let bad_channel = r#"{"processes": 3, "events": [{"message": [0, 2]}]}"#;
        assert!(matches!(
            from_json_str(bad_channel, Some(&topo)),
            Err(JsonTraceError::Invalid { event: 0, .. })
        ));
        let too_many = r#"{"processes": 9, "events": []}"#;
        assert!(matches!(
            from_json_str(too_many, Some(&topo)),
            Err(JsonTraceError::TooManyProcesses {
                declared: 9,
                available: 3
            })
        ));
        assert!(matches!(
            from_json_str("{nope", None),
            Err(JsonTraceError::Malformed(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = from_json_str(r#"{"processes": 2, "events": [{"message": [0, 0]}]}"#, None)
            .unwrap_err();
        assert!(err.to_string().contains("event 0"));
    }
}
