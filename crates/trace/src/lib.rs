//! Synchronous computation traces and ground-truth ordering oracles.
//!
//! A *synchronous computation* is one whose messages all use blocking
//! (rendezvous) sends: the sender waits until the receiver has taken the
//! message. Charron-Bost, Mattern and Tel showed such computations are
//! exactly those whose time diagrams can be drawn with **vertical message
//! arrows** — equivalently, whose messages can be totally ordered
//! consistently with every process's local order.
//!
//! This crate models those computations and computes the ground truth the
//! rest of the `synctime` workspace is tested against:
//!
//! * [`SyncComputation`] — processes, messages, and internal events, built
//!   either from a global rendezvous order ([`Builder`]) or from
//!   per-process sequences with synchrony checked
//!   ([`SyncComputation::from_process_sequences`]),
//! * [`Oracle`] — the message poset `(M, ↦)` of Section 2 ("synchronously
//!   precedes") and the event-level happened-before relation `→` of
//!   Section 5 (which crosses messages *and* their acknowledgements),
//! * [`examples`] — the worked computations of the paper's Figures 1 and 6.
//!
//! # Example
//!
//! ```
//! use synctime_trace::{Builder, Oracle};
//!
//! let mut b = Builder::new(4);
//! let m1 = b.message(0, 1)?; // P1 -> P2
//! let m2 = b.message(2, 3)?; // P3 -> P4, concurrent with m1
//! let m3 = b.message(1, 2)?; // P2 -> P3, after both
//! let comp = b.build();
//! let oracle = Oracle::new(&comp);
//! assert!(oracle.concurrent(m1, m2));
//! assert!(oracle.synchronously_precedes(m1, m3));
//! # Ok::<(), synctime_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod computation;
mod error;
mod oracle;

pub mod diagram;
pub mod examples;
pub mod json;
pub mod stream;

pub use computation::{
    Builder, EventId, EventKind, Message, MessageId, ProcessId, SyncComputation,
};
pub use error::TraceError;
pub use oracle::Oracle;
