use std::fmt;

use serde::{Deserialize, Serialize};
use synctime_graph::Graph;

use crate::TraceError;

/// Identifier of a process, `0..process_count`. The paper writes
/// `P_1..P_N`; we use zero-based ids.
pub type ProcessId = usize;

/// Identifier of a message within a computation, in *rendezvous order*:
/// `MessageId(k)` is the `k`-th message of the vertical-arrow drawing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub usize);

impl MessageId {
    /// The message's index in rendezvous order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One-based, matching the paper's m1, m2, ... naming.
        write!(f, "m{}", self.0 + 1)
    }
}

/// A synchronous message: a rendezvous between `sender` and `receiver`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    /// The message id (its rendezvous-order index).
    pub id: MessageId,
    /// The sending process.
    pub sender: ProcessId,
    /// The receiving process.
    pub receiver: ProcessId,
}

impl Message {
    /// Whether `p` participates in the message (as sender or receiver).
    pub fn involves(&self, p: ProcessId) -> bool {
        self.sender == p || self.receiver == p
    }

    /// The two participants `(sender, receiver)`.
    pub fn participants(&self) -> (ProcessId, ProcessId) {
        (self.sender, self.receiver)
    }
}

/// What a single slot of a process's local history holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// An internal (local) event.
    Internal,
    /// The send endpoint of a message.
    Send(MessageId),
    /// The receive endpoint of a message.
    Receive(MessageId),
}

impl EventKind {
    /// The message this event is an endpoint of, if it is external.
    pub fn message(self) -> Option<MessageId> {
        match self {
            EventKind::Internal => None,
            EventKind::Send(m) | EventKind::Receive(m) => Some(m),
        }
    }

    /// Whether this is an internal event.
    pub fn is_internal(self) -> bool {
        matches!(self, EventKind::Internal)
    }
}

/// Addresses one event: the `index`-th slot of `process`'s local history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId {
    /// The process the event occurs on.
    pub process: ProcessId,
    /// The position within that process's history, from 0.
    pub index: usize,
}

impl EventId {
    /// Creates an event id.
    pub fn new(process: ProcessId, index: usize) -> Self {
        EventId { process, index }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}[{}]", self.process + 1, self.index)
    }
}

/// A completed synchronous computation: for each process an ordered local
/// history of internal/send/receive events, plus the global rendezvous
/// order of the messages.
///
/// The type maintains two invariants:
///
/// 1. every message appears exactly once as a `Send` (at its sender) and
///    once as a `Receive` (at its receiver);
/// 2. message ids appear in increasing order within every local history —
///    i.e. the rendezvous order is a *vertical drawing* of the computation
///    (the integer-timestamp criterion of Section 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncComputation {
    process_count: usize,
    messages: Vec<Message>,
    histories: Vec<Vec<EventKind>>,
    /// For each message, the event indices of its (send, receive) endpoints.
    endpoints: Vec<(usize, usize)>,
    /// For each process, its messages in local order.
    process_messages: Vec<Vec<MessageId>>,
}

impl SyncComputation {
    /// Number of processes `N`.
    pub fn process_count(&self) -> usize {
        self.process_count
    }

    /// Number of messages `|M|`.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// All messages in rendezvous order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// A message by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn message(&self, id: MessageId) -> Message {
        self.messages[id.0]
    }

    /// The local history of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn history(&self, p: ProcessId) -> &[EventKind] {
        &self.histories[p]
    }

    /// The kind of the event at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn event(&self, id: EventId) -> EventKind {
        self.histories[id.process][id.index]
    }

    /// Iterates over all events of all processes.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.process_count)
            .flat_map(move |p| (0..self.histories[p].len()).map(move |i| EventId::new(p, i)))
    }

    /// The send and receive event ids of a message.
    pub fn message_endpoints(&self, id: MessageId) -> (EventId, EventId) {
        let m = self.messages[id.0];
        let (si, ri) = self.endpoints[id.0];
        (EventId::new(m.sender, si), EventId::new(m.receiver, ri))
    }

    /// The messages of process `p`, in local order.
    pub fn process_messages(&self, p: ProcessId) -> &[MessageId] {
        &self.process_messages[p]
    }

    /// The latest external event at or before `e` on `e`'s process, as its
    /// message: for an external `e` this is `e`'s own message; for an
    /// internal `e` it is the previous external event's message, if any.
    /// This is the `prev(e)` direction of Section 5.
    pub fn message_at_or_before(&self, e: EventId) -> Option<MessageId> {
        let h = &self.histories[e.process];
        (0..=e.index).rev().find_map(|i| h[i].message())
    }

    /// The earliest external event at or after `e` on `e`'s process, as its
    /// message (the `succ(e)` direction of Section 5).
    pub fn message_at_or_after(&self, e: EventId) -> Option<MessageId> {
        let h = &self.histories[e.process];
        (e.index..h.len()).find_map(|i| h[i].message())
    }

    /// Integer timestamps witnessing synchrony (Section 2): message `k` gets
    /// timestamp `k`, which increases along every local history and is equal
    /// at the two endpoints of each message. The existence of such an
    /// assignment is Charron-Bost et al.'s characterization of synchronous
    /// computations; this type's construction guarantees it.
    pub fn synchrony_witness(&self) -> Vec<usize> {
        (0..self.messages.len()).collect()
    }

    /// Builds a computation from per-process local histories, determining
    /// whether they are realizable by a synchronous execution and, if so,
    /// renumbering the messages into rendezvous order.
    ///
    /// `sequences[p]` lists the slots of process `p`: `Internal`, or
    /// `Send(m)`/`Receive(m)` with caller-chosen message keys `m`
    /// (arbitrary `usize`s; they are renumbered).
    ///
    /// # Errors
    ///
    /// * [`TraceError::MalformedSequences`] if a message key does not occur
    ///   exactly once as a send and once as a receive, or a process sends to
    ///   itself;
    /// * [`TraceError::NotSynchronous`] if the local orders force a cycle —
    ///   e.g. the classic *crossing* pair where each process sends before it
    ///   receives; no rendezvous schedule realizes that.
    pub fn from_process_sequences(
        sequences: Vec<Vec<EventKind>>,
    ) -> Result<SyncComputation, TraceError> {
        let process_count = sequences.len();
        // Collect per-key endpoints.
        use std::collections::BTreeMap;
        let mut sends: BTreeMap<usize, (ProcessId, usize)> = BTreeMap::new();
        let mut recvs: BTreeMap<usize, (ProcessId, usize)> = BTreeMap::new();
        for (p, seq) in sequences.iter().enumerate() {
            for (i, ev) in seq.iter().enumerate() {
                match ev {
                    EventKind::Internal => {}
                    EventKind::Send(MessageId(k)) => {
                        if sends.insert(*k, (p, i)).is_some() {
                            return Err(TraceError::MalformedSequences { message: *k });
                        }
                    }
                    EventKind::Receive(MessageId(k)) => {
                        if recvs.insert(*k, (p, i)).is_some() {
                            return Err(TraceError::MalformedSequences { message: *k });
                        }
                    }
                }
            }
        }
        if sends.len() != recvs.len() {
            let lonely = sends
                .keys()
                .find(|k| !recvs.contains_key(k))
                .or_else(|| recvs.keys().find(|k| !sends.contains_key(k)))
                .copied()
                .unwrap_or(0);
            return Err(TraceError::MalformedSequences { message: lonely });
        }
        let keys: Vec<usize> = sends.keys().copied().collect();
        for &k in &keys {
            if !recvs.contains_key(&k) {
                return Err(TraceError::MalformedSequences { message: k });
            }
            if sends[&k].0 == recvs[&k].0 {
                return Err(TraceError::SelfMessage(sends[&k].0));
            }
        }
        // Build the per-process message orders and topologically sort the
        // "must rendezvous earlier" constraints.
        let key_index: BTreeMap<usize, usize> =
            keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let mut per_process: Vec<Vec<usize>> = vec![Vec::new(); process_count];
        for (p, seq) in sequences.iter().enumerate() {
            for ev in seq {
                if let Some(MessageId(k)) = ev.message() {
                    per_process[p].push(key_index[&k]);
                }
            }
        }
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); keys.len()];
        let mut indegree = vec![0usize; keys.len()];
        for order in &per_process {
            for w in order.windows(2) {
                successors[w[0]].push(w[1]);
                indegree[w[1]] += 1;
            }
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..keys.len())
            .filter(|&v| indegree[v] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(keys.len());
        while let Some(std::cmp::Reverse(v)) = ready.pop() {
            order.push(v);
            for &w in &successors[v] {
                indegree[w] -= 1;
                if indegree[w] == 0 {
                    ready.push(std::cmp::Reverse(w));
                }
            }
        }
        if order.len() != keys.len() {
            let culprit = (0..keys.len())
                .find(|&v| indegree[v] > 0)
                .expect("a cycle leaves positive indegree");
            return Err(TraceError::NotSynchronous {
                message: keys[culprit],
            });
        }
        // Renumber messages into rendezvous order and rebuild via Builder.
        let mut rank = vec![0usize; keys.len()];
        for (pos, &v) in order.iter().enumerate() {
            rank[v] = pos;
        }
        let mut message_meta = vec![(0usize, 0usize); keys.len()]; // (sender, receiver) by rank
        for &k in &keys {
            let idx = key_index[&k];
            message_meta[rank[idx]] = (sends[&k].0, recvs[&k].0);
        }
        let mut histories: Vec<Vec<EventKind>> = vec![Vec::new(); process_count];
        for (p, seq) in sequences.iter().enumerate() {
            for ev in seq {
                histories[p].push(match ev {
                    EventKind::Internal => EventKind::Internal,
                    EventKind::Send(MessageId(k)) => EventKind::Send(MessageId(rank[key_index[k]])),
                    EventKind::Receive(MessageId(k)) => {
                        EventKind::Receive(MessageId(rank[key_index[k]]))
                    }
                });
            }
        }
        Ok(Self::assemble(process_count, message_meta, histories))
    }

    fn assemble(
        process_count: usize,
        message_meta: Vec<(ProcessId, ProcessId)>,
        histories: Vec<Vec<EventKind>>,
    ) -> SyncComputation {
        let messages: Vec<Message> = message_meta
            .iter()
            .enumerate()
            .map(|(i, &(sender, receiver))| Message {
                id: MessageId(i),
                sender,
                receiver,
            })
            .collect();
        let mut endpoints = vec![(usize::MAX, usize::MAX); messages.len()];
        let mut process_messages: Vec<Vec<MessageId>> = vec![Vec::new(); process_count];
        for (p, h) in histories.iter().enumerate() {
            for (i, ev) in h.iter().enumerate() {
                match ev {
                    EventKind::Internal => {}
                    EventKind::Send(m) => {
                        endpoints[m.0].0 = i;
                        process_messages[p].push(*m);
                    }
                    EventKind::Receive(m) => {
                        endpoints[m.0].1 = i;
                        process_messages[p].push(*m);
                    }
                }
            }
        }
        SyncComputation {
            process_count,
            messages,
            histories,
            endpoints,
            process_messages,
        }
    }
}

impl fmt::Display for SyncComputation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SyncComputation(N={}, |M|={})",
            self.process_count,
            self.messages.len()
        )
    }
}

/// Incrementally builds a [`SyncComputation`] in rendezvous order: each
/// [`Builder::message`] call appends a vertical arrow, each
/// [`Builder::internal`] call appends a local event.
///
/// Optionally validates messages against a communication topology
/// ([`Builder::with_topology`]); without one, any pair of distinct
/// processes may communicate.
#[derive(Debug, Clone)]
pub struct Builder {
    process_count: usize,
    topology: Option<Graph>,
    message_meta: Vec<(ProcessId, ProcessId)>,
    histories: Vec<Vec<EventKind>>,
}

impl Builder {
    /// Starts a computation on `process_count` processes.
    pub fn new(process_count: usize) -> Self {
        Builder {
            process_count,
            topology: None,
            message_meta: Vec::new(),
            histories: vec![Vec::new(); process_count],
        }
    }

    /// Starts a computation restricted to the channels of `topology` (whose
    /// node count becomes the process count).
    pub fn with_topology(topology: &Graph) -> Self {
        Builder {
            process_count: topology.node_count(),
            topology: Some(topology.clone()),
            message_meta: Vec::new(),
            histories: vec![Vec::new(); topology.node_count()],
        }
    }

    /// Number of messages appended so far.
    pub fn message_count(&self) -> usize {
        self.message_meta.len()
    }

    /// Appends a synchronous message from `sender` to `receiver` and returns
    /// its id.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ProcessOutOfRange`], [`TraceError::SelfMessage`],
    /// or — when a topology was declared — [`TraceError::NotAChannel`].
    pub fn message(
        &mut self,
        sender: ProcessId,
        receiver: ProcessId,
    ) -> Result<MessageId, TraceError> {
        for &p in &[sender, receiver] {
            if p >= self.process_count {
                return Err(TraceError::ProcessOutOfRange {
                    process: p,
                    process_count: self.process_count,
                });
            }
        }
        if sender == receiver {
            return Err(TraceError::SelfMessage(sender));
        }
        if let Some(topo) = &self.topology {
            if !topo.has_edge(sender, receiver) {
                return Err(TraceError::NotAChannel { sender, receiver });
            }
        }
        let id = MessageId(self.message_meta.len());
        self.message_meta.push((sender, receiver));
        self.histories[sender].push(EventKind::Send(id));
        self.histories[receiver].push(EventKind::Receive(id));
        Ok(id)
    }

    /// Appends an internal event on `process` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ProcessOutOfRange`] for a bad process id.
    pub fn internal(&mut self, process: ProcessId) -> Result<EventId, TraceError> {
        if process >= self.process_count {
            return Err(TraceError::ProcessOutOfRange {
                process,
                process_count: self.process_count,
            });
        }
        self.histories[process].push(EventKind::Internal);
        Ok(EventId::new(process, self.histories[process].len() - 1))
    }

    /// Finishes the computation.
    pub fn build(self) -> SyncComputation {
        SyncComputation::assemble(self.process_count, self.message_meta, self.histories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basic() {
        let mut b = Builder::new(3);
        let m1 = b.message(0, 1).unwrap();
        let e = b.internal(1).unwrap();
        let m2 = b.message(1, 2).unwrap();
        let c = b.build();
        assert_eq!(c.process_count(), 3);
        assert_eq!(c.message_count(), 2);
        assert_eq!(c.message(m1).participants(), (0, 1));
        assert_eq!(c.history(1).len(), 3);
        assert_eq!(c.event(e), EventKind::Internal);
        assert_eq!(c.process_messages(1), &[m1, m2]);
        let (s, r) = c.message_endpoints(m2);
        assert_eq!(s, EventId::new(1, 2));
        assert_eq!(r, EventId::new(2, 0));
    }

    #[test]
    fn builder_rejects_bad_messages() {
        let mut b = Builder::new(2);
        assert_eq!(b.message(0, 0), Err(TraceError::SelfMessage(0)));
        assert_eq!(
            b.message(0, 7),
            Err(TraceError::ProcessOutOfRange {
                process: 7,
                process_count: 2
            })
        );
        assert_eq!(
            b.internal(5),
            Err(TraceError::ProcessOutOfRange {
                process: 5,
                process_count: 2
            })
        );
    }

    #[test]
    fn builder_respects_topology() {
        let topo = synctime_graph::topology::path(3); // 0-1-2
        let mut b = Builder::with_topology(&topo);
        assert!(b.message(0, 1).is_ok());
        assert_eq!(
            b.message(0, 2),
            Err(TraceError::NotAChannel {
                sender: 0,
                receiver: 2
            })
        );
    }

    #[test]
    fn prev_next_external() {
        let mut b = Builder::new(2);
        let e0 = b.internal(0).unwrap();
        let m1 = b.message(0, 1).unwrap();
        let e1 = b.internal(0).unwrap();
        let m2 = b.message(0, 1).unwrap();
        let e2 = b.internal(0).unwrap();
        let c = b.build();
        assert_eq!(c.message_at_or_before(e0), None);
        assert_eq!(c.message_at_or_after(e0), Some(m1));
        assert_eq!(c.message_at_or_before(e1), Some(m1));
        assert_eq!(c.message_at_or_after(e1), Some(m2));
        assert_eq!(c.message_at_or_before(e2), Some(m2));
        assert_eq!(c.message_at_or_after(e2), None);
        // External events report their own message in both directions.
        let (s1, _) = c.message_endpoints(m1);
        assert_eq!(c.message_at_or_before(s1), Some(m1));
        assert_eq!(c.message_at_or_after(s1), Some(m1));
    }

    #[test]
    fn synchrony_witness_increases_per_process() {
        let mut b = Builder::new(3);
        b.message(0, 1).unwrap();
        b.message(1, 2).unwrap();
        b.message(0, 2).unwrap();
        let c = b.build();
        let w = c.synchrony_witness();
        for p in 0..3 {
            let stamps: Vec<usize> = c.process_messages(p).iter().map(|m| w[m.0]).collect();
            assert!(stamps.windows(2).all(|s| s[0] < s[1]), "P{p}: {stamps:?}");
        }
    }

    #[test]
    fn from_sequences_accepts_realizable() {
        // P0: send a, recv b ; P1: recv a, send b — sequential, fine.
        let seqs = vec![
            vec![
                EventKind::Send(MessageId(10)),
                EventKind::Receive(MessageId(20)),
            ],
            vec![
                EventKind::Receive(MessageId(10)),
                EventKind::Send(MessageId(20)),
            ],
        ];
        let c = SyncComputation::from_process_sequences(seqs).unwrap();
        assert_eq!(c.message_count(), 2);
        // Renumbered into rendezvous order: message 0 is the one sent first.
        assert_eq!(c.message(MessageId(0)).sender, 0);
        assert_eq!(c.message(MessageId(1)).sender, 1);
    }

    #[test]
    fn from_sequences_rejects_crossing() {
        // The classic crown: both processes send before they receive.
        // No rendezvous schedule realizes it.
        let seqs = vec![
            vec![
                EventKind::Send(MessageId(1)),
                EventKind::Receive(MessageId(2)),
            ],
            vec![
                EventKind::Send(MessageId(2)),
                EventKind::Receive(MessageId(1)),
            ],
        ];
        let err = SyncComputation::from_process_sequences(seqs).unwrap_err();
        assert!(matches!(err, TraceError::NotSynchronous { .. }));
    }

    #[test]
    fn from_sequences_rejects_malformed() {
        // Message 5 sent twice.
        let seqs = vec![
            vec![EventKind::Send(MessageId(5))],
            vec![
                EventKind::Send(MessageId(5)),
                EventKind::Receive(MessageId(5)),
            ],
        ];
        assert!(matches!(
            SyncComputation::from_process_sequences(seqs),
            Err(TraceError::MalformedSequences { message: 5 })
        ));
        // Message never received.
        let seqs = vec![vec![EventKind::Send(MessageId(9))], vec![]];
        assert!(matches!(
            SyncComputation::from_process_sequences(seqs),
            Err(TraceError::MalformedSequences { message: 9 })
        ));
        // Self-message within one history.
        let seqs = vec![vec![
            EventKind::Send(MessageId(3)),
            EventKind::Receive(MessageId(3)),
        ]];
        assert!(matches!(
            SyncComputation::from_process_sequences(seqs),
            Err(TraceError::SelfMessage(0))
        ));
    }

    #[test]
    fn from_sequences_preserves_internal_events() {
        let seqs = vec![
            vec![
                EventKind::Internal,
                EventKind::Send(MessageId(0)),
                EventKind::Internal,
            ],
            vec![EventKind::Receive(MessageId(0))],
        ];
        let c = SyncComputation::from_process_sequences(seqs).unwrap();
        assert_eq!(c.history(0).len(), 3);
        assert!(c.history(0)[0].is_internal());
        assert_eq!(c.events().count(), 4);
    }

    #[test]
    fn empty_computation() {
        let c = Builder::new(0).build();
        assert_eq!(c.process_count(), 0);
        assert_eq!(c.message_count(), 0);
        assert_eq!(c.events().count(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MessageId(0).to_string(), "m1");
        assert_eq!(EventId::new(1, 3).to_string(), "P2[3]");
        let c = Builder::new(2).build();
        assert_eq!(c.to_string(), "SyncComputation(N=2, |M|=0)");
    }
}
