//! Streaming trace ingestion: iterate the events of a JSON trace and build
//! the *sparse* message poset without ever materializing the whole
//! computation.
//!
//! [`json`](crate::json) parses a trace by loading the full text into a
//! `serde_json` value tree and replaying it through [`Builder`] — three
//! resident copies of the computation before stamping even starts. For the
//! offline pipeline at millions of messages that is the first wall. This
//! module replaces it with
//!
//! * [`JsonEventReader`] — a hand-rolled incremental pull parser for the
//!   same schema (`{"processes": N, "events": [...]}`) that holds O(1)
//!   state per event and yields [`StreamEvent`]s one at a time, and
//! * [`SparsePosetAccumulator`] — a fold over those events keeping only
//!   O(N) live state (the last message seen per process) while emitting the
//!   generating edges and per-sender chains that
//!   [`SparsePoset`] consumes.
//!
//! The two compose as [`sparse_poset_from_json`]; for computations already
//! in memory, [`sparse_message_poset`] runs the same accumulator over
//! [`SyncComputation::messages`].

use std::fmt;
use std::io::BufRead;

use synctime_poset::{PosetError, SparsePoset};

use crate::computation::{ProcessId, SyncComputation};
use crate::TraceError;

/// One event pulled from a trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent {
    /// A rendezvous message from `sender` to `receiver`.
    Message {
        /// The sending process.
        sender: ProcessId,
        /// The receiving process.
        receiver: ProcessId,
    },
    /// An internal event on a process (no effect on the message poset).
    Internal(ProcessId),
}

/// Errors from streaming trace ingestion.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The text deviates from the trace schema, with a byte offset.
    Malformed {
        /// Approximate byte offset of the problem.
        offset: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// An event is structurally invalid for the declared process count.
    Invalid {
        /// Index into the events array.
        event: usize,
        /// The underlying error.
        source: TraceError,
    },
    /// The event stream does not generate a valid poset / chain family
    /// (cannot happen for events validated against `processes`, but the
    /// accumulator surfaces it rather than panicking).
    Poset(PosetError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "trace stream: {e}"),
            StreamError::Malformed { offset, expected } => {
                write!(f, "bad trace JSON near byte {offset}: expected {expected}")
            }
            StreamError::Invalid { event, source } => write!(f, "event {event}: {source}"),
            StreamError::Poset(e) => write!(f, "accumulated events: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Invalid { source, .. } => Some(source),
            StreamError::Poset(e) => Some(e),
            StreamError::Malformed { .. } => None,
        }
    }
}

/// Incremental pull parser for the JSON trace schema.
///
/// Reads `{"processes": N, "events": [e, e, ...]}` (the format written by
/// [`json::to_json_string`](crate::json::to_json_string), which emits
/// `processes` before `events`) from any [`BufRead`], holding only the
/// current event in memory. Iterate it to drain the events:
///
/// ```
/// use synctime_trace::stream::{JsonEventReader, StreamEvent};
///
/// let text = r#"{"processes": 3, "events": [
///     {"message": [0, 1]}, {"internal": 2}, {"message": [1, 2]}
/// ]}"#;
/// let mut r = JsonEventReader::new(text.as_bytes())?;
/// assert_eq!(r.processes(), 3);
/// let events: Vec<_> = r.by_ref().collect::<Result<_, _>>()?;
/// assert_eq!(events[1], StreamEvent::Internal(2));
/// # Ok::<(), synctime_trace::stream::StreamError>(())
/// ```
pub struct JsonEventReader<R: BufRead> {
    reader: R,
    processes: usize,
    offset: usize,
    /// Set once the closing `]` of the events array was consumed.
    done: bool,
    /// One byte of lookahead pushed back by the tokenizer.
    peeked: Option<u8>,
    /// Events yielded so far (for error indices).
    yielded: usize,
}

impl<R: BufRead> JsonEventReader<R> {
    /// Parses the header up to the opening `[` of the events array.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] or [`StreamError::Malformed`]; the schema
    /// requires the `processes` key before `events`.
    pub fn new(reader: R) -> Result<Self, StreamError> {
        let mut r = JsonEventReader {
            reader,
            processes: 0,
            offset: 0,
            done: false,
            peeked: None,
            yielded: 0,
        };
        r.expect_byte(b'{', "'{'")?;
        r.expect_key("processes")?;
        r.processes = r.read_usize()?;
        r.expect_byte(b',', "','")?;
        r.expect_key("events")?;
        r.expect_byte(b'[', "'['")?;
        Ok(r)
    }

    /// The declared process count.
    pub fn processes(&self) -> usize {
        self.processes
    }

    fn malformed<T>(&self, expected: &'static str) -> Result<T, StreamError> {
        Err(StreamError::Malformed {
            offset: self.offset,
            expected,
        })
    }

    /// Next byte, counting offsets; `None` at EOF.
    fn next_byte(&mut self) -> Result<Option<u8>, StreamError> {
        if let Some(b) = self.peeked.take() {
            return Ok(Some(b));
        }
        let mut buf = [0u8; 1];
        loop {
            return match self.reader.read(&mut buf) {
                Ok(0) => Ok(None),
                Ok(_) => {
                    self.offset += 1;
                    Ok(Some(buf[0]))
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => Err(StreamError::Io(e)),
            };
        }
    }

    /// Next byte that is not JSON whitespace.
    fn next_token_byte(&mut self) -> Result<Option<u8>, StreamError> {
        loop {
            match self.next_byte()? {
                Some(b' ' | b'\t' | b'\n' | b'\r') => continue,
                other => return Ok(other),
            }
        }
    }

    fn expect_byte(&mut self, want: u8, expected: &'static str) -> Result<(), StreamError> {
        match self.next_token_byte()? {
            Some(b) if b == want => Ok(()),
            _ => self.malformed(expected),
        }
    }

    /// A quoted string; trace keys contain no escapes.
    fn read_string(&mut self) -> Result<String, StreamError> {
        self.expect_byte(b'"', "'\"'")?;
        let mut s = String::new();
        loop {
            match self.next_byte()? {
                Some(b'"') => return Ok(s),
                Some(b'\\') => return self.malformed("a key without escapes"),
                Some(b) => s.push(b as char),
                None => return self.malformed("a closing '\"'"),
            }
        }
    }

    fn expect_key(&mut self, want: &'static str) -> Result<(), StreamError> {
        let got = self.read_string()?;
        if got != want {
            return self.malformed(want);
        }
        self.expect_byte(b':', "':'")
    }

    /// A non-negative integer.
    fn read_usize(&mut self) -> Result<usize, StreamError> {
        let first = match self.next_token_byte()? {
            Some(b @ b'0'..=b'9') => b,
            _ => return self.malformed("a digit"),
        };
        let mut value = (first - b'0') as usize;
        loop {
            match self.next_byte()? {
                Some(b @ b'0'..=b'9') => {
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add((b - b'0') as usize))
                        .ok_or(StreamError::Malformed {
                            offset: self.offset,
                            expected: "an integer in range",
                        })?;
                }
                Some(other) => {
                    self.peeked = Some(other);
                    return Ok(value);
                }
                None => return Ok(value),
            }
        }
    }

    /// One event object, or `None` at the array's closing `]`.
    fn read_event(&mut self) -> Result<Option<StreamEvent>, StreamError> {
        if self.done {
            return Ok(None);
        }
        // Separator handling: before every event but the first, a comma.
        match self.next_token_byte()? {
            Some(b']') => {
                self.done = true;
                return Ok(None);
            }
            Some(b',') if self.yielded > 0 => self.expect_byte(b'{', "'{'")?,
            Some(b'{') if self.yielded == 0 => {}
            _ => {
                return self.malformed(if self.yielded == 0 {
                    "'{' or ']'"
                } else {
                    "',' or ']'"
                })
            }
        }
        let kind = self.read_string()?;
        self.expect_byte(b':', "':'")?;
        let event = match kind.as_str() {
            "message" => {
                self.expect_byte(b'[', "'['")?;
                let sender = self.read_usize()?;
                self.expect_byte(b',', "','")?;
                let receiver = self.read_usize()?;
                self.expect_byte(b']', "']'")?;
                StreamEvent::Message { sender, receiver }
            }
            "internal" => StreamEvent::Internal(self.read_usize()?),
            _ => return self.malformed("\"message\" or \"internal\""),
        };
        self.expect_byte(b'}', "'}'")?;
        self.yielded += 1;
        Ok(Some(event))
    }
}

impl<R: BufRead> Iterator for JsonEventReader<R> {
    type Item = Result<StreamEvent, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_event().transpose()
    }
}

/// Folds a stream of events into the inputs of
/// [`SparsePoset::from_edges_and_chains`]: generating edges (per-process
/// consecutive message pairs) and the per-sender chain partition.
///
/// Live state is O(N) — the id of the last message seen at each process —
/// plus the O(M) output being accumulated; no event history, no endpoint
/// table, no closure.
#[derive(Debug, Clone)]
pub struct SparsePosetAccumulator {
    processes: usize,
    /// Last message id that touched each process, if any.
    last: Vec<Option<usize>>,
    /// Per-sender chains: message ids sent by each process, ascending.
    chains: Vec<Vec<usize>>,
    /// Per-process consecutive message pairs.
    edges: Vec<(usize, usize)>,
    count: usize,
}

impl SparsePosetAccumulator {
    /// An empty accumulator for `processes` processes.
    pub fn new(processes: usize) -> Self {
        SparsePosetAccumulator {
            processes,
            last: vec![None; processes],
            chains: vec![Vec::new(); processes],
            edges: Vec::new(),
            count: 0,
        }
    }

    /// Messages folded so far.
    pub fn message_count(&self) -> usize {
        self.count
    }

    /// Folds one message; internal events need not be reported at all.
    ///
    /// # Errors
    ///
    /// [`TraceError::ProcessOutOfRange`] / [`TraceError::SelfMessage`].
    pub fn message(&mut self, sender: ProcessId, receiver: ProcessId) -> Result<(), TraceError> {
        for p in [sender, receiver] {
            if p >= self.processes {
                return Err(TraceError::ProcessOutOfRange {
                    process: p,
                    process_count: self.processes,
                });
            }
        }
        if sender == receiver {
            return Err(TraceError::SelfMessage(sender));
        }
        let id = self.count;
        self.count += 1;
        for p in [sender, receiver] {
            if let Some(prev) = self.last[p].replace(id) {
                self.edges.push((prev, id));
            }
        }
        self.chains[sender].push(id);
        Ok(())
    }

    /// Finishes the fold into a [`SparsePoset`] over the messages seen.
    ///
    /// # Errors
    ///
    /// Propagates [`PosetError`] — unreachable for a stream of validated
    /// messages, whose rendezvous order is a topological witness.
    pub fn finish(self) -> Result<SparsePoset, PosetError> {
        SparsePoset::from_edges_and_chains(self.count, &self.edges, self.chains)
    }
}

/// Builds the sparse message poset of an in-memory computation via the
/// per-sender chain partition — the streaming accumulator run over
/// [`SyncComputation::messages`].
///
/// ```
/// use synctime_trace::{stream, Builder};
///
/// let mut b = Builder::new(3);
/// b.message(0, 1)?;
/// b.message(1, 2)?;
/// let comp = b.build();
/// let p = stream::sparse_message_poset(&comp);
/// assert!(p.lt(0, 1)); // they share process 1
/// # Ok::<(), synctime_trace::TraceError>(())
/// ```
pub fn sparse_message_poset(computation: &SyncComputation) -> SparsePoset {
    let mut acc = SparsePosetAccumulator::new(computation.process_count());
    for m in computation.messages() {
        acc.message(m.sender, m.receiver)
            .expect("a built computation contains only valid messages");
    }
    acc.finish()
        .expect("rendezvous order is a topological witness, so no cycle exists")
}

/// Streams a JSON trace into a sparse message poset without materializing
/// the computation: `O(N + M)` resident (the poset itself) instead of the
/// value tree + event list + computation that [`json::from_json_str`]
/// (crate::json::from_json_str) holds.
///
/// Returns the declared process count alongside the poset.
///
/// # Errors
///
/// See [`StreamError`].
pub fn sparse_poset_from_json<R: BufRead>(reader: R) -> Result<(usize, SparsePoset), StreamError> {
    let mut events = JsonEventReader::new(reader)?;
    let mut acc = SparsePosetAccumulator::new(events.processes());
    for (i, ev) in events.by_ref().enumerate() {
        match ev? {
            StreamEvent::Message { sender, receiver } => acc
                .message(sender, receiver)
                .map_err(|source| StreamError::Invalid { event: i, source })?,
            StreamEvent::Internal(p) => {
                if p >= acc.processes {
                    return Err(StreamError::Invalid {
                        event: i,
                        source: TraceError::ProcessOutOfRange {
                            process: p,
                            process_count: acc.processes,
                        },
                    });
                }
            }
        }
    }
    let processes = events.processes();
    acc.finish()
        .map(|p| (processes, p))
        .map_err(StreamError::Poset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::computation::Builder;
    use crate::json;
    use crate::Oracle;

    fn sample() -> SyncComputation {
        let mut b = Builder::new(4);
        b.message(0, 1).unwrap();
        b.message(2, 3).unwrap();
        b.internal(1).unwrap();
        b.message(1, 2).unwrap();
        b.message(2, 3).unwrap();
        b.internal(0).unwrap();
        b.build()
    }

    #[test]
    fn reader_yields_events_in_order() {
        let comp = sample();
        let text = json::to_json_string(&comp);
        let mut r = JsonEventReader::new(text.as_bytes()).unwrap();
        assert_eq!(r.processes(), 4);
        let events: Vec<StreamEvent> = r.by_ref().collect::<Result<_, _>>().unwrap();
        let messages: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match *e {
                StreamEvent::Message { sender, receiver } => Some((sender, receiver)),
                StreamEvent::Internal(_) => None,
            })
            .collect();
        assert_eq!(messages, vec![(0, 1), (2, 3), (1, 2), (2, 3)]);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, StreamEvent::Internal(_)))
                .count(),
            2
        );
    }

    #[test]
    fn reader_handles_compact_and_empty_traces() {
        let compact = r#"{"processes":2,"events":[{"message":[0,1]},{"internal":0}]}"#;
        let r = JsonEventReader::new(compact.as_bytes()).unwrap();
        assert_eq!(r.count(), 2);
        let empty = r#"{"processes": 5, "events": []}"#;
        let mut r = JsonEventReader::new(empty.as_bytes()).unwrap();
        assert_eq!(r.processes(), 5);
        assert!(r.next().is_none());
        assert!(r.next().is_none());
    }

    #[test]
    fn reader_rejects_malformed_text() {
        for bad in [
            "",
            "{",
            r#"{"events": []}"#,
            r#"{"processes": 2}"#,
            r#"{"processes": 2, "events": [{"massage": [0, 1]}]}"#,
            r#"{"processes": 2, "events": [{"message": [0 1]}]}"#,
            r#"{"processes": 2, "events": [{"message": [0, 1]}"#,
        ] {
            assert!(
                matches!(
                    JsonEventReader::new(bad.as_bytes())
                        .and_then(|r| r.collect::<Result<Vec<_>, _>>()),
                    Err(StreamError::Malformed { .. })
                ),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn accumulator_matches_dense_oracle() {
        let comp = sample();
        let oracle = Oracle::new(&comp);
        let sparse = sparse_message_poset(&comp);
        assert_eq!(sparse.len(), comp.message_count());
        for a in 0..sparse.len() {
            for b in 0..sparse.len() {
                assert_eq!(
                    oracle.message_poset().lt(a, b),
                    sparse.lt(a, b),
                    "lt({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn accumulator_rejects_invalid_messages() {
        let mut acc = SparsePosetAccumulator::new(2);
        assert!(matches!(acc.message(0, 0), Err(TraceError::SelfMessage(0))));
        assert!(matches!(
            acc.message(0, 7),
            Err(TraceError::ProcessOutOfRange { process: 7, .. })
        ));
        acc.message(1, 0).unwrap();
        assert_eq!(acc.message_count(), 1);
    }

    #[test]
    fn json_stream_matches_in_memory_poset() {
        let comp = sample();
        let text = json::to_json_string(&comp);
        let (processes, streamed) = sparse_poset_from_json(text.as_bytes()).unwrap();
        assert_eq!(processes, 4);
        let direct = sparse_message_poset(&comp);
        assert_eq!(streamed.len(), direct.len());
        for a in 0..direct.len() {
            for b in 0..direct.len() {
                assert_eq!(streamed.lt(a, b), direct.lt(a, b), "lt({a}, {b})");
            }
        }
    }

    #[test]
    fn json_stream_reports_invalid_events_by_index() {
        let text = r#"{"processes": 2, "events": [{"message": [0, 1]}, {"message": [1, 1]}]}"#;
        assert!(matches!(
            sparse_poset_from_json(text.as_bytes()),
            Err(StreamError::Invalid { event: 1, .. })
        ));
        let internal = r#"{"processes": 2, "events": [{"internal": 9}]}"#;
        assert!(matches!(
            sparse_poset_from_json(internal.as_bytes()),
            Err(StreamError::Invalid { event: 0, .. })
        ));
    }
}
