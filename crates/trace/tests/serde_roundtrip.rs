//! Serialization round-trips: computations survive JSON (C-SERDE), and the
//! paper's example computations are stable artifacts.

use synctime_trace::examples::{figure1, figure6};
use synctime_trace::{Builder, EventKind, MessageId, Oracle, SyncComputation};

#[test]
fn computation_json_roundtrip() {
    let mut b = Builder::new(4);
    b.internal(0).unwrap();
    b.message(0, 1).unwrap();
    b.message(2, 3).unwrap();
    b.internal(2).unwrap();
    b.message(1, 2).unwrap();
    let comp = b.build();
    let json = serde_json::to_string(&comp).unwrap();
    let back: SyncComputation = serde_json::from_str(&json).unwrap();
    assert_eq!(comp, back);
    // And the oracle built from the deserialized copy agrees.
    let (o1, o2) = (Oracle::new(&comp), Oracle::new(&back));
    for i in 0..comp.message_count() {
        for j in 0..comp.message_count() {
            assert_eq!(
                o1.synchronously_precedes(MessageId(i), MessageId(j)),
                o2.synchronously_precedes(MessageId(i), MessageId(j))
            );
        }
    }
}

#[test]
fn example_computations_roundtrip() {
    for comp in [figure1(), figure6()] {
        let json = serde_json::to_string(&comp).unwrap();
        let back: SyncComputation = serde_json::from_str(&json).unwrap();
        assert_eq!(comp, back);
    }
}

#[test]
fn event_kind_serialization_is_stable() {
    let kinds = vec![
        EventKind::Internal,
        EventKind::Send(MessageId(3)),
        EventKind::Receive(MessageId(7)),
    ];
    let json = serde_json::to_string(&kinds).unwrap();
    let back: Vec<EventKind> = serde_json::from_str(&json).unwrap();
    assert_eq!(kinds, back);
}

#[test]
fn diagram_of_roundtripped_computation_is_identical() {
    use synctime_trace::diagram;
    let comp = figure1();
    let json = serde_json::to_string(&comp).unwrap();
    let back: SyncComputation = serde_json::from_str(&json).unwrap();
    assert_eq!(diagram::render(&comp), diagram::render(&back));
    assert_eq!(diagram::summarize(&comp), diagram::summarize(&back));
}
