//! A minimal, std-only work-stealing thread pool with a *deterministic*
//! result merge.
//!
//! The offline timestamping pipeline fans out over independent index spaces
//! (one deferring extension per chain, one vector per message). All it needs
//! from a scheduler is: run `f(i)` for every `i in 0..n` on however many
//! worker threads are available, and hand back the results **in index
//! order** — so the output of a parallel run is bit-identical to a
//! sequential one regardless of how the spans were interleaved or stolen.
//!
//! The design is deliberately small (the workspace takes no external
//! dependencies, see `shims/README.md`):
//!
//! * work lives in a shared LIFO stack of half-open index spans,
//! * an idle worker pops a span and, if it is larger than the grain size,
//!   *splits it in half* and pushes the far half back for other workers to
//!   steal — guided self-scheduling without per-worker deques,
//! * each worker accumulates `(index, value)` pairs locally and the pool
//!   scatters them into a dense `Vec<T>` by index at the end,
//! * worker panics propagate to the caller via [`std::thread::scope`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// A fixed-width pool of scoped worker threads.
///
/// The pool is cheap to construct (it holds no threads between calls;
/// workers are scoped to each [`map_indexed`](ThreadPool::map_indexed) call)
/// and deterministic by construction: results are merged by index, never by
/// completion order.
///
/// ```
/// use synctime_par::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.map_indexed(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone)]
pub struct ThreadPool {
    workers: usize,
}

/// Shared LIFO of half-open spans still to be processed.
struct SpanQueue {
    spans: Mutex<Vec<(usize, usize)>>,
    grain: usize,
}

impl SpanQueue {
    /// Pops work for one worker: at most `grain` indices. A larger span is
    /// split in half first, with the far half pushed back to be stolen.
    fn next(&self) -> Option<(usize, usize)> {
        let mut spans = self.spans.lock().expect("span queue poisoned");
        let (start, end) = spans.pop()?;
        let len = end - start;
        if len > self.grain {
            let mid = start + len / 2;
            spans.push((mid, end));
            if mid - start > self.grain {
                spans.push((start + self.grain, mid));
                return Some((start, start + self.grain));
            }
            return Some((start, mid));
        }
        Some((start, end))
    }
}

impl ThreadPool {
    /// A pool of exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ThreadPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to [`std::thread::available_parallelism`], falling back
    /// to a single worker when the parallelism cannot be queried.
    pub fn with_default_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        ThreadPool::new(workers)
    }

    /// Number of worker threads the pool schedules onto.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every index in `0..n` across the pool's workers and
    /// returns the results **in index order**.
    ///
    /// Equivalent to `(0..n).map(f).collect()` — including output order —
    /// for any `f` that is a pure function of its index. Worker panics
    /// propagate to the caller.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        // No point spinning up threads for a single worker or a tiny job:
        // run inline (this is also the path the 1-core CI machine takes).
        if self.workers == 1 || n == 1 {
            return (0..n).map(f).collect();
        }
        // Aim for ~4 spans per worker so stealing has something to grab
        // while keeping queue contention low.
        let grain = (n / (self.workers * 4)).max(1);
        let queue = SpanQueue {
            spans: Mutex::new(vec![(0, n)]),
            grain,
        };
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let harvested: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    while let Some((start, end)) = queue.next() {
                        for i in start..end {
                            local.push((i, f(i)));
                        }
                    }
                    harvested
                        .lock()
                        .expect("result sink poisoned")
                        .append(&mut local);
                });
            }
        });
        for (i, value) in harvested.into_inner().expect("result sink poisoned") {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("index {i} never scheduled")))
            .collect()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::with_default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        let pool = ThreadPool::new(7);
        for n in [0, 1, 2, 3, 64, 1000] {
            let got = pool.map_indexed(n, |i| i * 3 + 1);
            let want: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ThreadPool::new(5);
        let n = 4096;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.map_indexed(n, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // The merge is by index, so the output must equal the sequential
        // map no matter how spans were stolen.
        let seq = ThreadPool::new(1);
        let par = ThreadPool::new(8);
        let f = |i: usize| {
            let mut h = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
            h
        };
        assert_eq!(seq.map_indexed(513, f), par.map_indexed(513, f));
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(ThreadPool::new(0).workers(), 1);
        assert!(ThreadPool::with_default_parallelism().workers() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(4);
        pool.map_indexed(100, |i| {
            if i == 37 {
                panic!("boom");
            }
            i
        });
    }
}
