#!/usr/bin/env bash
# Full verification gate for the workspace. Run from the repo root.
#
#   scripts/verify.sh          # everything below
#
# Steps:
#   1. formatting gate: `cargo fmt --check`
#   2. release build (tier-1)
#   3. root-package tests (tier-1): lib + tests/ + doctests, incl. README
#   4. full workspace tests
#   5. workspace doctests
#   6. strict doc build: `cargo doc --no-deps` with rustdoc warnings as errors
#   7. bench-smoke: the online_runtime suite at 1-iteration scale, checking
#      both its own smoke report and the checked-in results/ JSON against
#      the synctime/bench_online_runtime/v1 schema
#   8. bench-smoke: the offline_pipeline suite at CI scale, checking both
#      its own smoke report and the checked-in results/ JSON against the
#      synctime/bench_offline_pipeline/v1 schema (including the >= 10x
#      sparse-vs-dense speedup claim in the full report)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --check
run cargo build --release
run cargo test -q
run cargo test --workspace -q
run cargo test --doc --workspace -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

SMOKE_OUT="$(mktemp)"
SMOKE_OUT2="$(mktemp)"
trap 'rm -f "$SMOKE_OUT" "$SMOKE_OUT2"' EXIT
# Absolute paths: cargo runs bench binaries from the package directory.
run cargo bench -q -p synctime-bench --bench online_runtime -- \
  --smoke --out "$SMOKE_OUT" --validate "$PWD/results/BENCH_online_runtime.json"
run cargo bench -q -p synctime-bench --bench offline_pipeline -- \
  --smoke --out "$SMOKE_OUT2" --validate "$PWD/results/BENCH_offline_pipeline.json"

echo "==> verify: all green"
