#!/usr/bin/env bash
# Full verification gate for the workspace. Run from the repo root.
#
#   scripts/verify.sh          # everything below
#
# Steps:
#   1. release build (tier-1)
#   2. root-package tests (tier-1): lib + tests/ + doctests, incl. README
#   3. full workspace tests
#   4. workspace doctests
#   5. strict doc build: `cargo doc --no-deps` with rustdoc warnings as errors
#   6. bench-smoke: the online_runtime suite at 1-iteration scale, checking
#      both its own smoke report and the checked-in results/ JSON against
#      the synctime/bench_online_runtime/v1 schema
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release
run cargo test -q
run cargo test --workspace -q
run cargo test --doc --workspace -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

SMOKE_OUT="$(mktemp)"
trap 'rm -f "$SMOKE_OUT"' EXIT
# Absolute paths: cargo runs bench binaries from the package directory.
run cargo bench -q -p synctime-bench --bench online_runtime -- \
  --smoke --out "$SMOKE_OUT" --validate "$PWD/results/BENCH_online_runtime.json"

echo "==> verify: all green"
