#!/usr/bin/env bash
# Full verification gate for the workspace. Run from the repo root.
#
#   scripts/verify.sh          # everything below
#
# Steps:
#   1. formatting gate: `cargo fmt --check`
#   2. release build (tier-1)
#   3. root-package tests (tier-1): lib + tests/ + doctests, incl. README
#   4. full workspace tests
#   5. workspace doctests
#   6. strict doc build: `cargo doc --no-deps` with rustdoc warnings as errors
#   7. bench-smoke: the online_runtime suite at 1-iteration scale, checking
#      both its own smoke report and the checked-in results/ JSON against
#      the synctime/bench_online_runtime/v1 schema
#   8. bench-smoke: the offline_pipeline suite at CI scale, checking both
#      its own smoke report and the checked-in results/ JSON against the
#      synctime/bench_offline_pipeline/v1 schema (including the >= 10x
#      sparse-vs-dense speedup claim in the full report)
#   9. bench-smoke: the net_query suite at CI scale, checking both its own
#      smoke report and the checked-in results/ JSON against the
#      synctime/bench_net/v3 schema (full reports must clear the >= 10k
#      single-query floor, >= 3x batch-256 speedup over single-connection
#      v1, >= 500k aggregate fabric queries/sec at amortised p99 <= 250us,
#      >= 1.5x W=16 pipelined speedup over lock-step batch-256, >= 1.3x
#      vectorized merge-kernel speedup at d=256, and zero steady-state
#      serving allocations)
#  10. bench-smoke: the clock_backends suite at CI scale, checking both its
#      own smoke report and the checked-in results/ JSON against the
#      synctime/bench_clocks/v1 schema (full reports must clear the >= 2x
#      TreeClock-over-DenseVec sparse-delta merge floor at N=256 and agree
#      bit-for-bit on final clocks across backends)
#  11. fault-smoke: ring and gossip workloads under fixed crash and desync
#      plans must exit 0 with typed outcomes, inject every scheduled fault,
#      and recover desyncs through full-vector resync frames
#  12. net-smoke: `launch --transport tcp` (one OS process per synchronous
#      process over loopback TCP) must emit a trace byte-identical to the
#      in-process `run`; `serve-query` must answer the fixture's three
#      known precedence queries over the wire; a 2-trace `--traces-dir`
#      catalog must answer named-trace and batched queries with the same
#      verdicts
#  13. pipeline-smoke: against the live catalog server, a `--window 16`
#      pipelined (protocol v3) batch must print byte-identical output to
#      the same batch over lock-step v2 frames; the dedicated
#      counting-allocator test must prove the steady-state serving path
#      performs zero heap allocations
#  14. clock-smoke: `run --ring 8` and `stamp` of a generated trace must
#      produce byte-identical output under every `--clock` backend
#      (dense / tree / fixed / auto), and an unknown backend name must be
#      refused with a diagnostic
#  15. bench-smoke: the store_replay suite at CI scale, checking both its
#      own smoke report and the checked-in results/ JSON against the
#      synctime/bench_store/v1 schema (full reports must recover byte-
#      identical logs, clear the >= 20k records/s replay floor, and keep
#      ingest overhead <= 1.10 on hosts with a second hardware thread —
#      <= 1.5 on single-thread hosts, where the writer's CPU serialises
#      with the run)
#  16. bench-smoke: the reconfig_churn suite at CI scale, checking both
#      its own smoke report and the checked-in results/ JSON against the
#      synctime/bench_churn/v1 schema (full reports must keep reconfigure
#      p99 <= 50ms and the rebased clock dimension within 2*alpha in
#      every epoch)
#  17. store-smoke: a ring run with `--persist` is served from its store
#      by `serve-query --store-dir`; the serving node is killed with
#      SIGKILL mid-ingest while a second persisted run grows the store,
#      restarted from the store alone, and must then answer the same
#      batched + chain queries byte-identically to a server over an
#      uninterrupted copy of the run (ROADMAP item 3's recovery gate)
#  18. churn-smoke: a churned run (join + leave + swap across three
#      epochs) must produce byte-identical final-epoch traces over the
#      distributed TCP path, the in-process engine, and an uninterrupted
#      reference run whose membership is the final active set (the
#      uniform-baseline order-isomorphism, end to end); `--epochs` must
#      report every epoch; a persisted churned store served by
#      `serve-query --store-dir` must answer queries byte-identically to
#      the sparse offline engine stamping the reference trace
#  19. panic-free gate: no new `.unwrap()` / `.expect(` on the runtime's
#      non-test source (typed RuntimeError paths only)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --check
run cargo build --release
# The root `synctime` package is a lib; the CLI binary the smoke stages
# drive lives in `synctime-cli`, which a bare root build does not touch.
# Build the whole workspace so `target/release/synctime` is never stale.
run cargo build --release --workspace
run cargo test -q
run cargo test --workspace -q
run cargo test --doc --workspace -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

SMOKE_OUT="$(mktemp)"
SMOKE_OUT2="$(mktemp)"
trap 'rm -f "$SMOKE_OUT" "$SMOKE_OUT2"' EXIT
# Absolute paths: cargo runs bench binaries from the package directory.
run cargo bench -q -p synctime-bench --bench online_runtime -- \
  --smoke --out "$SMOKE_OUT" --validate "$PWD/results/BENCH_online_runtime.json"
run cargo bench -q -p synctime-bench --bench offline_pipeline -- \
  --smoke --out "$SMOKE_OUT2" --validate "$PWD/results/BENCH_offline_pipeline.json"
run cargo bench -q -p synctime-bench --bench net_query -- \
  --smoke --out "$SMOKE_OUT" --validate "$PWD/results/BENCH_net.json"
run cargo bench -q -p synctime-bench --bench clock_backends -- \
  --smoke --out "$SMOKE_OUT2" --validate "$PWD/results/BENCH_clocks.json"
run cargo bench -q -p synctime-bench --bench store_replay -- \
  --smoke --out "$SMOKE_OUT" --validate "$PWD/results/BENCH_store.json"
run cargo bench -q -p synctime-bench --bench reconfig_churn -- \
  --smoke --out "$SMOKE_OUT2" --validate "$PWD/results/BENCH_churn.json"

# --- fault-smoke: seeded fault plans must degrade gracefully, never panic.
SYNCTIME="target/release/synctime"
FAULT_DIR="$(mktemp -d)"
trap 'rm -f "$SMOKE_OUT" "$SMOKE_OUT2"; rm -rf "$FAULT_DIR"' EXIT

# Assert `"field": value` in a fault-run report satisfies a predicate.
stat_check() { # file field op value
  local got
  got="$(grep -o "\"$2\": [0-9]*" "$1" | head -1 | grep -o '[0-9]*$')"
  [ -n "$got" ] || { echo "verify: $1 lacks field $2" >&2; exit 1; }
  [ "$got" "-$3" "$4" ] || {
    echo "verify: $1: $2 = $got, want -$3 $4" >&2
    exit 1
  }
}

cat > "$FAULT_DIR/crash.json" <<'EOF'
{"faults": [{"process": 2, "at_op": 1, "kind": "crash"}]}
EOF
cat > "$FAULT_DIR/desync.json" <<'EOF'
{"faults": [{"process": 0, "at_op": 2, "kind": "desync"},
            {"process": 1, "at_op": 3, "kind": "desync"}]}
EOF

echo "==> fault-smoke: ring under crash plan"
"$SYNCTIME" run --ring 5 --rounds 4 --watchdog-ms 2000 \
  --fault-plan "$FAULT_DIR/crash.json" > "$FAULT_DIR/crash.out"
stat_check "$FAULT_DIR/crash.out" faults_injected eq 1
grep -q '"injected fault crashed process 2' "$FAULT_DIR/crash.out" || {
  echo "verify: crash run lacks typed FaultInjected outcome" >&2; exit 1; }

echo "==> fault-smoke: ring under desync plan"
"$SYNCTIME" run --ring 4 --rounds 5 \
  --fault-plan "$FAULT_DIR/desync.json" > "$FAULT_DIR/desync-ring.out"
stat_check "$FAULT_DIR/desync-ring.out" faults_injected ge 1
stat_check "$FAULT_DIR/desync-ring.out" resync_frames ge 1
grep -q '"outcomes": \[null, null, null, null\]' "$FAULT_DIR/desync-ring.out" || {
  echo "verify: desync ring run did not recover cleanly" >&2; exit 1; }

echo "==> fault-smoke: gossip under desync plan"
"$SYNCTIME" run --gossip 4 --rounds 4 --seed 11 \
  --fault-plan "$FAULT_DIR/desync.json" > "$FAULT_DIR/desync-gossip.out"
stat_check "$FAULT_DIR/desync-gossip.out" faults_injected ge 1
stat_check "$FAULT_DIR/desync-gossip.out" resync_frames ge 1
grep -q '"outcomes": \[null, null, null, null\]' "$FAULT_DIR/desync-gossip.out" || {
  echo "verify: desync gossip run did not recover cleanly" >&2; exit 1; }

# --- net-smoke: the distributed path must match the in-process run, and
# --- the query server must answer known-precedence queries over TCP.
NET_DIR="$(mktemp -d)"
trap 'rm -f "$SMOKE_OUT" "$SMOKE_OUT2"; rm -rf "$FAULT_DIR" "$NET_DIR"' EXIT

echo "==> net-smoke: launch --transport tcp vs run (ring:6, byte-identical)"
"$SYNCTIME" run --ring 6 --rounds 3 > "$NET_DIR/local.json"
"$SYNCTIME" launch --ring 6 --rounds 3 --transport tcp > "$NET_DIR/tcp.json"
diff "$NET_DIR/local.json" "$NET_DIR/tcp.json" || {
  echo "verify: tcp launch diverged from the in-process run" >&2; exit 1; }

echo "==> net-smoke: serve-query answers the fixture's known precedences"
cat > "$NET_DIR/fixture.json" <<'EOF'
{"processes":4,"events":[{"message":[2,0]},{"message":[3,1]},{"message":[2,1]}]}
EOF
"$SYNCTIME" serve-query --topology clients:2x2 --trace "$NET_DIR/fixture.json" \
  > "$NET_DIR/server.out" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^listening on //p' "$NET_DIR/server.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "verify: serve-query never announced its address" >&2; exit 1; }
q() { "$SYNCTIME" query --connect "$ADDR" "$@"; }
[ "$(q --m1 1 --m2 2)" = "m1 and m2 are concurrent" ] || {
  echo "verify: expected m1 and m2 concurrent" >&2; exit 1; }
[ "$(q --m1 2 --m2 3)" = "m1 synchronously precedes m2" ] || {
  echo "verify: expected m2 to precede m3" >&2; exit 1; }
[ "$(q --chain 3)" = "chain of m3: m1 m2 m3" ] || {
  echo "verify: expected chain of m3 to be m1 m2 m3" >&2; exit 1; }
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

echo "==> net-smoke: 2-trace catalog serves named-trace and batched queries"
mkdir -p "$NET_DIR/catalog"
cp "$NET_DIR/fixture.json" "$NET_DIR/catalog/web.json"
cat > "$NET_DIR/catalog/ring.json" <<'EOF'
{"processes":2,"events":[{"message":[0,1]},{"message":[1,0]},{"message":[0,1]}]}
EOF
# No --topology: the sparse offline engine stamps the catalog.
"$SYNCTIME" serve-query --traces-dir "$NET_DIR/catalog" --shards 4 --pool 2 \
  > "$NET_DIR/catalog-server.out" &
CATALOG_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^listening on //p' "$NET_DIR/catalog-server.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "verify: catalog serve-query never announced its address" >&2; exit 1; }
grep -q 'catalog: 2 trace(s) across 4 shard(s)' "$NET_DIR/catalog-server.out" || {
  echo "verify: catalog server did not announce 2 traces across 4 shards" >&2; exit 1; }
qc() { "$SYNCTIME" query --connect "$ADDR" "$@"; }
# The same fixture verdicts, now behind the trace name `web`.
[ "$(qc --trace web --m1 1 --m2 2)" = "m1 and m2 are concurrent" ] || {
  echo "verify: catalog trace web: expected m1 and m2 concurrent" >&2; exit 1; }
[ "$(qc --trace web --chain 3)" = "chain of m3: m1 m2 m3" ] || {
  echo "verify: catalog trace web: expected chain of m3 to be m1 m2 m3" >&2; exit 1; }
# One batched round trip answers every pair of the sequential ring trace.
[ "$(qc --trace ring --batch 1:2,2:1,1:3)" = "m1 -> m2: yes
m2 -> m1: no
m1 -> m3: yes" ] || {
  echo "verify: catalog trace ring: wrong batched verdicts" >&2; exit 1; }
# Unnamed queries are ambiguous against a 2-trace catalog.
if qc --m1 1 --m2 2 > /dev/null 2>&1; then
  echo "verify: unnamed query against a 2-trace catalog should fail" >&2; exit 1
fi

echo "==> pipeline-smoke: --window 16 (v3) answers byte-identical to v2 batches"
# A batch big enough to span several pipelined frames, against the live
# catalog server: every pair of the ring trace, both directions.
PAIRS="1:2,2:1,1:3,3:1,2:3,3:2,1:1,2:2,3:3"
qc --trace ring --batch "$PAIRS" > "$NET_DIR/batch-v2.out"
qc --trace ring --batch "$PAIRS" --window 16 > "$NET_DIR/batch-v3.out"
diff "$NET_DIR/batch-v2.out" "$NET_DIR/batch-v3.out" || {
  echo "verify: pipelined (v3, W=16) verdicts diverged from v2 batches" >&2; exit 1; }
qc --trace web --batch "$PAIRS" > "$NET_DIR/web-v2.out"
qc --trace web --batch "$PAIRS" --window 16 > "$NET_DIR/web-v3.out"
diff "$NET_DIR/web-v2.out" "$NET_DIR/web-v3.out" || {
  echo "verify: pipelined (v3, W=16) verdicts diverged from v2 on trace web" >&2; exit 1; }
kill "$CATALOG_PID" 2>/dev/null || true
wait "$CATALOG_PID" 2>/dev/null || true

echo "==> pipeline-smoke: counting-allocator proof of the zero-alloc hot path"
run cargo test -q -p synctime-net --test zero_alloc

# --- clock-smoke: every clock backend must be a drop-in representation —
# --- same traces, same stamps, byte for byte.
CLOCK_DIR="$(mktemp -d)"
trap 'rm -f "$SMOKE_OUT" "$SMOKE_OUT2"; rm -rf "$FAULT_DIR" "$NET_DIR" "$CLOCK_DIR"' EXIT

echo "==> clock-smoke: run ring:8 byte-identical under every backend"
"$SYNCTIME" run --ring 8 --rounds 3 --clock dense > "$CLOCK_DIR/run-dense.json"
for clock in tree fixed auto; do
  "$SYNCTIME" run --ring 8 --rounds 3 --clock "$clock" > "$CLOCK_DIR/run-$clock.json"
  diff "$CLOCK_DIR/run-dense.json" "$CLOCK_DIR/run-$clock.json" || {
    echo "verify: run --clock $clock diverged from dense" >&2; exit 1; }
done

echo "==> clock-smoke: stamp a generated trace byte-identical under every backend"
"$SYNCTIME" generate --topology cycle:8 --messages 48 --seed 9 > "$CLOCK_DIR/trace.json"
# The first output line labels the engine+backend; the stamped vectors
# below it are the comparison.
"$SYNCTIME" stamp --topology cycle:8 --trace "$CLOCK_DIR/trace.json" --clock dense \
  | tail -n +2 > "$CLOCK_DIR/stamp-dense.out"
for clock in tree fixed auto; do
  "$SYNCTIME" stamp --topology cycle:8 --trace "$CLOCK_DIR/trace.json" --clock "$clock" \
    | tail -n +2 > "$CLOCK_DIR/stamp-$clock.out"
  diff "$CLOCK_DIR/stamp-dense.out" "$CLOCK_DIR/stamp-$clock.out" || {
    echo "verify: stamp --clock $clock diverged from dense" >&2; exit 1; }
done

echo "==> clock-smoke: unknown backend is refused with a diagnostic"
if "$SYNCTIME" run --ring 4 --clock warp > /dev/null 2> "$CLOCK_DIR/warp.err"; then
  echo "verify: run --clock warp should have been refused" >&2; exit 1
fi
grep -q 'unknown clock backend' "$CLOCK_DIR/warp.err" || {
  echo "verify: --clock warp error lacks the backend diagnostic" >&2; exit 1; }

# --- store-smoke: durable ingestion must survive a SIGKILL of the serving
# --- node and recover query answers byte-identical to an uninterrupted run.
STORE_DIR="$(mktemp -d)"
trap 'rm -f "$SMOKE_OUT" "$SMOKE_OUT2"; rm -rf "$FAULT_DIR" "$NET_DIR" "$CLOCK_DIR" "$STORE_DIR"' EXIT

# The ring workload is deterministic: two persisted runs of the same shape
# produce byte-identical stores, so the crashed and uninterrupted servers
# can be compared across separate store roots.
STORE_QUERIES="1:2,2:1,3:9,9:3,5:17,17:5,4:4"

echo "==> store-smoke: reference run with --persist, served uninterrupted"
"$SYNCTIME" run --ring 6 --rounds 40 --persist "$STORE_DIR/ref" \
  --trace-name ring > /dev/null
"$SYNCTIME" serve-query --store-dir "$STORE_DIR/ref" \
  > "$STORE_DIR/ref-server.out" &
REF_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^listening on //p' "$STORE_DIR/ref-server.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "verify: store serve-query never announced its address" >&2; exit 1; }
"$SYNCTIME" query --connect "$ADDR" --trace ring --batch "$STORE_QUERIES" \
  > "$STORE_DIR/ref-answers.out"
"$SYNCTIME" query --connect "$ADDR" --trace ring --chain 9 \
  >> "$STORE_DIR/ref-answers.out"
kill "$REF_PID" 2>/dev/null || true
wait "$REF_PID" 2>/dev/null || true

echo "==> store-smoke: SIGKILL the serving node mid-ingest, restart from the store"
# Grow the second store while its server is live (fast polling so the
# tailer is mid-republish when the SIGKILL lands), then kill -9.
"$SYNCTIME" serve-query --store-dir "$STORE_DIR/crash" --poll-ms 20 \
  > "$STORE_DIR/crash-server.out" &
CRASH_PID=$!
"$SYNCTIME" run --ring 6 --rounds 40 --persist "$STORE_DIR/crash" \
  --trace-name ring > /dev/null &
RUN_PID=$!
sleep 0.3
kill -9 "$CRASH_PID" 2>/dev/null || true
wait "$CRASH_PID" 2>/dev/null || true
wait "$RUN_PID" || { echo "verify: persisted ring run failed" >&2; exit 1; }
"$SYNCTIME" serve-query --store-dir "$STORE_DIR/crash" \
  > "$STORE_DIR/crash-server2.out" &
CRASH2_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^listening on //p' "$STORE_DIR/crash-server2.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "verify: restarted store serve-query never announced its address" >&2; exit 1; }
"$SYNCTIME" query --connect "$ADDR" --trace ring --batch "$STORE_QUERIES" \
  > "$STORE_DIR/crash-answers.out"
"$SYNCTIME" query --connect "$ADDR" --trace ring --chain 9 \
  >> "$STORE_DIR/crash-answers.out"
kill "$CRASH2_PID" 2>/dev/null || true
wait "$CRASH2_PID" 2>/dev/null || true
diff "$STORE_DIR/ref-answers.out" "$STORE_DIR/crash-answers.out" || {
  echo "verify: answers after SIGKILL + restart diverged from the uninterrupted run" >&2
  exit 1; }

# --- churn-smoke: live reconfiguration must be invisible in the final
# --- epoch — distributed, in-process, and reference runs byte-identical.
CHURN_DIR="$(mktemp -d)"
trap 'rm -f "$SMOKE_OUT" "$SMOKE_OUT2"; rm -rf "$FAULT_DIR" "$NET_DIR" "$CLOCK_DIR" "$STORE_DIR" "$CHURN_DIR"' EXIT

echo "==> churn-smoke: churn generator is deterministic under a seed"
"$SYNCTIME" churn --universe 6 --boundaries 2 --mean-rounds 3 --seed 7 \
  > "$CHURN_DIR/gen-a.json"
"$SYNCTIME" churn --universe 6 --boundaries 2 --mean-rounds 3 --seed 7 \
  > "$CHURN_DIR/gen-b.json"
diff "$CHURN_DIR/gen-a.json" "$CHURN_DIR/gen-b.json" || {
  echo "verify: churn generator is not deterministic under a fixed seed" >&2; exit 1; }

# A handwritten plan with a known final membership: start with all six
# processes, lose 4, then swap 1 out for 4 — final active {0,2,3,4,5}.
cat > "$CHURN_DIR/plan.json" <<'EOF'
{"universe": 6, "initial": [0, 1, 2, 3, 4, 5], "tail_rounds": 3,
 "events": [
   {"after_rounds": 4, "kind": {"leave": {"process": 4}}},
   {"after_rounds": 6, "kind": {"swap": {"leaving": 1, "joining": 4}}}]}
EOF
# The uninterrupted reference: the final membership from round zero, for
# exactly the churned run's tail rounds. The uniform baseline makes the
# churned final epoch order-isomorphic — and the emitted trace
# byte-identical — to this run.
cat > "$CHURN_DIR/reference-plan.json" <<'EOF'
{"universe": 6, "initial": [0, 2, 3, 4, 5], "tail_rounds": 3, "events": []}
EOF

echo "==> churn-smoke: tcp vs local vs uninterrupted reference (byte-identical)"
"$SYNCTIME" launch --churn-plan "$CHURN_DIR/plan.json" --transport tcp \
  > "$CHURN_DIR/tcp.json"
"$SYNCTIME" launch --churn-plan "$CHURN_DIR/plan.json" --transport local \
  > "$CHURN_DIR/local.json"
"$SYNCTIME" launch --churn-plan "$CHURN_DIR/reference-plan.json" --transport local \
  > "$CHURN_DIR/reference.json"
diff "$CHURN_DIR/tcp.json" "$CHURN_DIR/local.json" || {
  echo "verify: churned tcp launch diverged from the in-process engine" >&2; exit 1; }
diff "$CHURN_DIR/local.json" "$CHURN_DIR/reference.json" || {
  echo "verify: churned final epoch diverged from the uninterrupted reference" >&2
  exit 1; }

echo "==> churn-smoke: --epochs reports all three epochs"
"$SYNCTIME" launch --churn-plan "$CHURN_DIR/plan.json" --transport local --epochs \
  > "$CHURN_DIR/epochs.json"
EPOCHS="$(grep -c '"reconfigure_micros"' "$CHURN_DIR/epochs.json")"
[ "$EPOCHS" -eq 3 ] || {
  echo "verify: expected 3 epoch reports, got $EPOCHS" >&2; exit 1; }

echo "==> churn-smoke: persisted churned store serves the latest epoch"
"$SYNCTIME" launch --churn-plan "$CHURN_DIR/plan.json" --transport local \
  --persist "$CHURN_DIR/store" --trace-name churned > /dev/null
"$SYNCTIME" serve-query --store-dir "$CHURN_DIR/store" \
  > "$CHURN_DIR/store-server.out" &
CHURN_PID=$!
# The reference trace behind the sparse offline engine is the answer key.
mkdir -p "$CHURN_DIR/refcat"
cp "$CHURN_DIR/reference.json" "$CHURN_DIR/refcat/churned.json"
"$SYNCTIME" serve-query --traces-dir "$CHURN_DIR/refcat" \
  > "$CHURN_DIR/ref-server.out" &
CHURNREF_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^listening on //p' "$CHURN_DIR/store-server.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "verify: churned store server never announced its address" >&2; exit 1; }
REF_ADDR=""
for _ in $(seq 1 50); do
  REF_ADDR="$(sed -n 's/^listening on //p' "$CHURN_DIR/ref-server.out")"
  [ -n "$REF_ADDR" ] && break
  sleep 0.1
done
[ -n "$REF_ADDR" ] || { echo "verify: churn reference server never announced its address" >&2; exit 1; }
CHURN_QUERIES="1:2,2:1,1:6,6:1,3:15,15:3,7:7"
"$SYNCTIME" query --connect "$ADDR" --trace churned --batch "$CHURN_QUERIES" \
  > "$CHURN_DIR/store-answers.out"
"$SYNCTIME" query --connect "$REF_ADDR" --trace churned --batch "$CHURN_QUERIES" \
  > "$CHURN_DIR/ref-answers.out"
kill "$CHURN_PID" "$CHURNREF_PID" 2>/dev/null || true
wait "$CHURN_PID" 2>/dev/null || true
wait "$CHURNREF_PID" 2>/dev/null || true
diff "$CHURN_DIR/store-answers.out" "$CHURN_DIR/ref-answers.out" || {
  echo "verify: churned store answers diverged from the reference trace" >&2
  exit 1; }

echo "==> panic-free gate: crates/runtime/src"
for f in crates/runtime/src/*.rs; do
  # Only non-test code is gated: cut each file at its test module.
  if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" \
      | grep -nE '\.unwrap\(\)|\.expect\(' ; then
    echo "verify: $f has unwrap/expect on a non-test path (use typed RuntimeError)" >&2
    exit 1
  fi
done

echo "==> verify: all green"
