#!/usr/bin/env bash
# Full verification gate for the workspace. Run from the repo root.
#
#   scripts/verify.sh          # everything below
#
# Steps:
#   1. release build (tier-1)
#   2. root-package tests (tier-1): lib + tests/ + doctests, incl. README
#   3. full workspace tests
#   4. workspace doctests
#   5. strict doc build: `cargo doc --no-deps` with rustdoc warnings as errors
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release
run cargo test -q
run cargo test --workspace -q
run cargo test --doc --workspace -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> verify: all green"
