//! Dynamic topologies: the client-join scenario implied by Section 3.3 —
//! new clients enter a running client–server system without changing the
//! timestamp dimension or invalidating issued timestamps.

use synctime::prelude::*;

#[test]
fn clients_join_a_running_session_without_dimension_change() {
    // Start with 2 servers and 1 client.
    let topo = graph::topology::client_server(2, 1);
    let dec = graph::decompose::best_known(&topo);
    // The cover of K_{2,1} is the single client, size 1; force the
    // server-star decomposition instead so joins extend server stars.
    let dec = if dec.len() == 2 {
        dec
    } else {
        graph::decompose::from_vertex_cover(&topo, &[0, 1])
    };
    assert_eq!(dec.len(), 2);

    let mut session = OnlineSession::new(&dec, 3);
    // We mirror every stamp into a Builder so the oracle can check the
    // final history.
    let mut b = Builder::new(3 + 2); // room for two future clients
    let mut stamps: Vec<VectorTime> = Vec::new();
    let record = |session: &mut OnlineSession,
                  b: &mut Builder,
                  stamps: &mut Vec<VectorTime>,
                  s: usize,
                  r: usize| {
        let t = session.stamp(s, r).expect("channel known");
        b.message(s, r).expect("message valid");
        stamps.push(t);
    };

    // Client 2 talks to both servers.
    record(&mut session, &mut b, &mut stamps, 2, 0);
    record(&mut session, &mut b, &mut stamps, 0, 2);
    record(&mut session, &mut b, &mut stamps, 2, 1);

    // A new client joins: extend each server's star with its channels.
    let c3 = session.add_process();
    assert_eq!(c3, 3);
    session.extend_star(0, Edge::new(0, c3)).unwrap();
    session.extend_star(1, Edge::new(1, c3)).unwrap();
    record(&mut session, &mut b, &mut stamps, 3, 0);
    record(&mut session, &mut b, &mut stamps, 0, 3);

    // And another.
    let c4 = session.add_process();
    session.extend_star(0, Edge::new(0, c4)).unwrap();
    session.extend_star(1, Edge::new(1, c4)).unwrap();
    record(&mut session, &mut b, &mut stamps, 4, 1);
    record(&mut session, &mut b, &mut stamps, 1, 4);

    // Dimension never changed, and the full history is encoded correctly.
    assert!(stamps.iter().all(|v| v.dim() == 2));
    let comp = b.build();
    let all = MessageTimestamps::new(stamps);
    assert!(all.encodes(&Oracle::new(&comp)));
}

#[test]
fn genuinely_new_groups_require_dimension_growth() {
    // A peer-to-peer edge between two clients cannot join any server star;
    // push_star grows the dimension, which is only safe between sessions.
    let mut dec =
        graph::decompose::from_vertex_cover(&graph::topology::client_server(2, 2), &[0, 1]);
    assert_eq!(dec.len(), 2);
    let g = dec.push_star(2, Edge::new(2, 3)).unwrap();
    assert_eq!(dec.len(), 3);

    // A *fresh* session at the grown dimension stamps the extended
    // topology correctly.
    let mut session = OnlineSession::new(&dec, 4);
    let mut b = Builder::new(4);
    let mut stamps = Vec::new();
    for (s, r) in [(2usize, 0usize), (3, 1), (2, 3), (0, 2)] {
        stamps.push(session.stamp(s, r).unwrap());
        b.message(s, r).unwrap();
    }
    let comp = b.build();
    assert!(MessageTimestamps::new(stamps).encodes(&Oracle::new(&comp)));
    let _ = g;
}
