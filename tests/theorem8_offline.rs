//! Theorem 8 and the Figure 9 offline algorithm: the message poset of a
//! synchronous computation on `N` processes has width ≤ ⌊N/2⌋, and the
//! chain-realizer timestamps of that dimension encode it exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::poset::chains;
use synctime::prelude::*;
use synctime::sim::workload::random_computation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn width_and_encoding(n in 2usize..11, msgs in 0usize..80, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::complete(n.max(2));
        let comp = random_computation(&topo, msgs, &mut rng);
        let oracle = Oracle::new(&comp);

        // Theorem 8: width ≤ ⌊N/2⌋.
        let width = chains::width(oracle.message_poset());
        prop_assert!(width <= n / 2 || msgs == 0, "width {width} > N/2 = {}", n / 2);

        // Figure 9: the offline stamps encode the poset in `width` dims.
        let stamps = offline::stamp_computation(&comp);
        prop_assert_eq!(stamps.dim(), width);
        prop_assert!(stamps.encodes(&oracle));
    }

    #[test]
    fn offline_matches_online_verdicts(n in 3usize..8, msgs in 1usize..50, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, 2, &mut rng);
        let comp = random_computation(&topo, msgs, &mut rng);
        let dec = graph::decompose::best_known(&topo);
        let online = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let off = offline::stamp_computation(&comp);
        // Two encodings of the same poset must return identical verdicts on
        // every pair, even though their dimensions differ.
        for i in 0..msgs {
            for j in 0..msgs {
                let (a, b) = (MessageId(i), MessageId(j));
                prop_assert_eq!(online.precedes(a, b), off.precedes(a, b));
            }
        }
    }
}

#[test]
fn width_bound_is_tight() {
    // ⌊N/2⌋ disjoint concurrent messages realize the bound.
    for half in 1..6 {
        let n = 2 * half;
        let mut b = Builder::new(n);
        for i in 0..half {
            b.message(2 * i, 2 * i + 1).unwrap();
        }
        let comp = b.build();
        let oracle = Oracle::new(&comp);
        assert_eq!(chains::width(oracle.message_poset()), half);
        let stamps = offline::stamp_computation(&comp);
        assert_eq!(stamps.dim(), half);
    }
}

#[test]
fn realizer_dimensions_on_scenarios() {
    // Structured workloads: their posets are narrow, so offline stamps are
    // tiny regardless of N.
    let sc = scenarios::ring_token(9, 3);
    let stamps = offline::stamp_computation(&sc.computation);
    assert_eq!(stamps.dim(), 1, "a circulating token is a chain");

    let sc = scenarios::barrier_phases(6, 2);
    let stamps = offline::stamp_computation(&sc.computation);
    assert_eq!(
        stamps.dim(),
        1,
        "star topologies are totally ordered (Lemma 1)"
    );

    let tree = graph::topology::balanced_tree(2, 3);
    let sc = scenarios::tree_broadcast_convergecast(&tree, 0);
    let stamps = offline::stamp_computation(&sc.computation);
    let oracle = Oracle::new(&sc.computation);
    assert!(stamps.encodes(&oracle));
    assert!(stamps.dim() <= tree.node_count() / 2);
}
