//! Properties of the Figure 7 edge-decomposition algorithm: validity on
//! arbitrary graphs, the Theorem 6 ratio bound of 2, Theorem 7 optimality
//! on forests, and the β ≤ 2α relationship of Section 3.3.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::graph::{cover, decompose, topology, Graph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_is_valid_on_random_graphs(n in 2usize..12, p in 0.05f64..0.9, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::gnp(n, p, &mut rng);
        let dec = decompose::greedy(&g);
        prop_assert!(dec.validate(&g).is_ok());
        // best_known folds in the trivial construction, so it always meets
        // the N − 2 bound (greedy alone only promises the ratio bound).
        if !g.is_empty() {
            let best = decompose::best_known(&g);
            prop_assert!(best.validate(&g).is_ok());
            prop_assert!(best.len() <= n.saturating_sub(2).max(1));
        }
    }

    #[test]
    fn ratio_bound_two(n in 3usize..9, p in 0.2f64..0.8, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::gnp(n, p, &mut rng);
        prop_assume!(!g.is_empty() && g.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT);
        let greedy = decompose::greedy(&g).len();
        let opt = decompose::alpha(&g);
        prop_assert!(greedy <= 2 * opt, "greedy {greedy} > 2 × α {opt}");
        prop_assert!(opt >= decompose::matching_lower_bound(&g));
    }

    #[test]
    fn optimal_on_forests(n in 2usize..16, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::random_tree(n, &mut rng);
        let greedy = decompose::greedy(&g);
        prop_assert!(greedy.validate(&g).is_ok());
        if g.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT {
            prop_assert_eq!(greedy.len(), decompose::alpha(&g));
        }
        // Forests decompose into stars only.
        prop_assert_eq!(greedy.triangle_count(), 0);
    }

    #[test]
    fn beta_at_most_twice_alpha(t in 1usize..6) {
        // Disjoint triangles: the tight case. α = t, β = 2t.
        let g = topology::disjoint_triangles(t);
        prop_assert_eq!(decompose::alpha(&g), t);
        prop_assert_eq!(cover::beta(&g), 2 * t);
    }

    #[test]
    fn vertex_cover_decomposition_valid(n in 3usize..12, extra in 0usize..6, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::random_connected(n, extra, &mut rng);
        for cover_set in [cover::exact_min(&g), cover::two_approx(&g), cover::greedy_max_degree(&g)] {
            let dec = decompose::from_vertex_cover(&g, &cover_set);
            prop_assert!(dec.validate(&g).is_ok());
            prop_assert!(dec.len() <= cover_set.len().max(1));
        }
    }

    #[test]
    fn alpha_never_exceeds_beta_or_trivial(n in 3usize..8, p in 0.2f64..0.9, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::gnp(n, p, &mut rng);
        prop_assume!(!g.is_empty() && g.edge_count() <= decompose::OPTIMAL_EDGE_LIMIT);
        let alpha = decompose::alpha(&g);
        prop_assert!(alpha <= cover::beta(&g));
        prop_assert!(alpha <= decompose::trivial(&g).len());
        prop_assert!(alpha <= decompose::greedy(&g).len());
    }
}

#[test]
fn disconnected_graphs_are_handled() {
    // Decomposition and stamping work per-component without special cases.
    let mut g = Graph::new(7);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(4, 5);
    g.add_edge(5, 6);
    g.add_edge(4, 6); // triangle component + path component + isolated node 3
    let dec = decompose::greedy(&g);
    dec.validate(&g).unwrap();
    assert_eq!(dec.len(), 2);
}
