//! Theorem 9: the Section 5 event triples `(prev, succ, c)` capture
//! Lamport's happened-before exactly — `e → f ⟺ succ(e) ≤ prev(f)` (with
//! the per-segment counter for same-process ties) — whichever encoding
//! supplied the underlying message timestamps.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::prelude::*;
use synctime::sim::workload::RandomWorkload;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn event_stamps_encode_happened_before(
        n in 2usize..8,
        msgs in 0usize..30,
        internals in 0usize..20,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::complete(n.max(2));
        let comp = RandomWorkload::messages(msgs)
            .with_internal_events(internals)
            .generate(&topo, &mut rng);
        let oracle = Oracle::new(&comp);

        let dec = graph::decompose::best_known(&topo);
        let online = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        prop_assert!(stamp_events(&comp, &online).encodes(&comp, &oracle));

        // The construction is agnostic to which encoding stamped the
        // messages (it only relies on the Theorem 4 property).
        let off = offline::stamp_computation(&comp);
        prop_assert!(stamp_events(&comp, &off).encodes(&comp, &oracle));

        let fm = synctime::core::fm::stamp_messages(&comp);
        prop_assert!(stamp_events(&comp, &fm).encodes(&comp, &oracle));
    }

    #[test]
    fn fm_event_clocks_agree_with_oracle(
        n in 2usize..7,
        msgs in 0usize..25,
        internals in 0usize..15,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::complete(n.max(2));
        let comp = RandomWorkload::messages(msgs)
            .with_internal_events(internals)
            .generate(&topo, &mut rng);
        let oracle = Oracle::new(&comp);
        let clocks = synctime::core::fm::stamp_events(&comp);
        prop_assert!(clocks.encodes(&comp, &oracle));
    }
}

#[test]
fn event_and_fm_tests_agree_pairwise() {
    // The two event mechanisms (Section 5 triples vs FM event vectors)
    // return the same verdict on every pair.
    let mut rng = StdRng::seed_from_u64(4242);
    let topo = graph::topology::random_connected(6, 3, &mut rng);
    let comp = RandomWorkload::messages(30)
        .with_internal_events(15)
        .generate(&topo, &mut rng);
    let dec = graph::decompose::best_known(&topo);
    let msgs = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
    let triples = stamp_events(&comp, &msgs);
    let fm = synctime::core::fm::stamp_events(&comp);
    let events: Vec<EventId> = comp.events().collect();
    for &e in &events {
        for &f in &events {
            if e != f {
                assert_eq!(
                    triples.happened_before(e, f),
                    fm.happened_before(e, f),
                    "{e} vs {f}"
                );
            }
        }
    }
}
