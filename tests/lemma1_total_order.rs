//! Lemma 1: the message sets of *all* synchronous computations over a
//! topology `G` are totally ordered iff `G` is a star or a triangle.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::prelude::*;
use synctime::sim::workload::random_computation;

fn all_messages_comparable(comp: &SyncComputation) -> bool {
    let oracle = Oracle::new(comp);
    let m = comp.message_count();
    (0..m).all(|i| ((i + 1)..m).all(|j| !oracle.concurrent(MessageId(i), MessageId(j))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn star_computations_totally_ordered(leaves in 1usize..10, msgs in 0usize..50, seed in 0u64..10_000) {
        let topo = graph::topology::star(leaves);
        let mut rng = StdRng::seed_from_u64(seed);
        let comp = random_computation(&topo, msgs, &mut rng);
        prop_assert!(all_messages_comparable(&comp));
    }

    #[test]
    fn triangle_computations_totally_ordered(msgs in 0usize..50, seed in 0u64..10_000) {
        let topo = graph::topology::triangle();
        let mut rng = StdRng::seed_from_u64(seed);
        let comp = random_computation(&topo, msgs, &mut rng);
        prop_assert!(all_messages_comparable(&comp));
    }

    #[test]
    fn non_star_non_triangle_admits_concurrency(n in 4usize..10, extra in 0usize..5, seed in 0u64..10_000) {
        // The converse direction, made constructive exactly as in the
        // lemma's proof: a topology that is neither a star nor a triangle
        // has two vertex-disjoint edges; sending one message along each
        // yields a computation with a concurrent pair.
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        prop_assume!(!topo.is_star() && !topo.is_triangle());

        let edges: Vec<Edge> = topo.edges().collect();
        let disjoint = edges.iter().enumerate().find_map(|(i, a)| {
            edges[i + 1..]
                .iter()
                .find(|b| !a.is_adjacent_to(**b))
                .map(|b| (*a, *b))
        });
        let (a, b) = disjoint.expect("a non-star non-triangle graph has two disjoint edges");
        let mut builder = Builder::with_topology(&topo);
        let m1 = builder.message(a.lo(), a.hi()).unwrap();
        let m2 = builder.message(b.lo(), b.hi()).unwrap();
        let comp = builder.build();
        let oracle = Oracle::new(&comp);
        prop_assert!(oracle.concurrent(m1, m2));
    }
}

#[test]
fn single_component_suffices_for_star_and_triangle() {
    // The practical consequence: decomposition size 1, so timestamps are a
    // single integer and the order is the integer order.
    for topo in [graph::topology::star(7), graph::topology::triangle()] {
        let dec = graph::decompose::best_known(&topo);
        assert_eq!(dec.len(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let comp = random_computation(&topo, 30, &mut rng);
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        assert!(stamps.encodes(&Oracle::new(&comp)));
        // Scalars: strictly increasing in rendezvous order.
        let vals: Vec<u64> = stamps.vectors().iter().map(|v| v.component(0)).collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }
}
