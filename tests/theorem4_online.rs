//! Theorem 4 (the central correctness result): the online algorithm's
//! vectors encode `(M, ↦)` exactly — `m1 ↦ m2 ⟺ v(m1) < v(m2)` — on
//! randomized computations over every topology family, for every
//! decomposition construction.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::prelude::*;
use synctime::sim::workload::RandomWorkload;

fn check_topology(topo: &Graph, messages: usize, internals: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let comp = RandomWorkload::messages(messages)
        .with_internal_events(internals)
        .generate(topo, &mut rng);
    let oracle = Oracle::new(&comp);
    // Every decomposition construction must work, whatever its size.
    let candidates = vec![
        graph::decompose::greedy(topo),
        graph::decompose::trivial(topo),
        graph::decompose::best_known(topo),
    ];
    for dec in candidates {
        dec.validate(topo).unwrap();
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        assert_eq!(stamps.dim(), dec.len());
        assert!(
            stamps.encodes(&oracle),
            "encoding violated on {topo} with dec size {}",
            dec.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_connected_topologies(n in 3usize..10, extra in 0usize..6, msgs in 1usize..60, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        check_topology(&topo, msgs, msgs / 3, seed.wrapping_add(1));
    }

    #[test]
    fn complete_graphs(n in 2usize..8, msgs in 1usize..50, seed in 0u64..1000) {
        check_topology(&graph::topology::complete(n), msgs, 5, seed);
    }

    #[test]
    fn stars(leaves in 1usize..9, msgs in 1usize..50, seed in 0u64..1000) {
        check_topology(&graph::topology::star(leaves), msgs, 5, seed);
    }

    #[test]
    fn client_server(servers in 1usize..4, clients in 1usize..7, msgs in 1usize..50, seed in 0u64..1000) {
        check_topology(&graph::topology::client_server(servers, clients), msgs, 3, seed);
    }

    #[test]
    fn cycles_and_grids(n in 3usize..9, msgs in 1usize..40, seed in 0u64..1000) {
        check_topology(&graph::topology::cycle(n), msgs, 2, seed);
        check_topology(&graph::topology::grid(2, n), msgs, 2, seed);
    }
}

#[test]
fn dimension_bound_of_theorem5() {
    // d ≤ min(β(G), N − 2) via the Theorem 5 construction, on many random
    // connected graphs (β computed exactly).
    let mut rng = StdRng::seed_from_u64(99);
    for n in 4..11 {
        for extra in 0..4 {
            let topo = graph::topology::random_connected(n, extra, &mut rng);
            let beta = graph::cover::beta(&topo);
            let bound = beta.min(n - 2);
            // The paper's pipeline: vertex-cover stars when the cover is
            // small, trivial otherwise.
            let dec = if beta <= n - 2 {
                graph::decompose::from_vertex_cover(&topo, &graph::cover::exact_min(&topo))
            } else {
                graph::decompose::trivial(&topo)
            };
            dec.validate(&topo).unwrap();
            assert!(
                dec.len() <= bound,
                "n={n}: got {} > min(β={beta}, N-2={})",
                dec.len(),
                n - 2
            );
        }
    }
}

#[test]
fn exhaustively_all_schedules_get_correct_stamps() {
    // Model-check a small nondeterministic program set: EVERY reachable
    // interleaving must yield stamps that encode its own ground truth.
    use synctime::sim::enumerate_schedules;
    let topo = graph::topology::complete(4);
    let dec = graph::decompose::best_known(&topo);
    let programs = vec![
        Program::new().receive_any().receive_any().send_to(3),
        Program::new().send_to(0).internal().send_to(3),
        Program::new().send_to(0),
        Program::new().receive_from(1).receive_from(0),
    ];
    let all = enumerate_schedules(Some(&topo), &programs, 500).unwrap();
    assert!(
        all.len() >= 2,
        "expected genuine branching, got {}",
        all.len()
    );
    for comp in &all {
        let stamps = OnlineStamper::new(&dec).stamp_computation(comp).unwrap();
        assert!(stamps.encodes(&Oracle::new(comp)));
        let off = synctime::core::offline::stamp_computation(comp);
        assert!(off.encodes(&Oracle::new(comp)));
    }
}

#[test]
fn every_schedule_of_one_program_gets_correct_stamps() {
    // Simulate the same scripts under many schedules; the stamps must
    // encode each resulting computation.
    let topo = graph::topology::complete(4);
    let dec = graph::decompose::best_known(&topo);
    // Two receive-any sinks (P0, P3) each absorb two messages from the two
    // producers; every interleaving completes, but different seeds commit
    // the racing rendezvous in different orders.
    let programs = vec![
        Program::new().receive_any().receive_any(),
        Program::new().send_to(0).send_to(3),
        Program::new().send_to(0).send_to(3),
        Program::new().receive_any().receive_any(),
    ];
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..40 {
        let comp = Simulator::new()
            .with_topology(&topo)
            .with_seed(seed)
            .run(&programs)
            .unwrap();
        distinct.insert(format!("{comp:?}"));
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        assert!(stamps.encodes(&Oracle::new(&comp)), "seed {seed}");
    }
    assert!(
        distinct.len() > 1,
        "expected several distinct interleavings"
    );
}
