//! Differential battery: the online algorithm (Figure 5 / Theorem 4), the
//! offline chain realizer (Figure 9 / Theorem 8), and the incremental
//! decomposition cache must all tell the same story about `(M, ↦)`.
//!
//! Every property here compares two *independent* implementations pairwise
//! over every message pair, rather than trusting a single `encodes` bit:
//! the ground-truth oracle (transitive closure over the event graph), the
//! online stamper, the offline stamper, and — for dynamic topologies — an
//! [`OnlineSession`] rebased across live reconfigurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synctime::prelude::*;
use synctime::sim::workload::RandomWorkload;
use synctime_core::wire::{DeltaDecoder, DeltaEncoder};
use synctime_graph::{decompose, IncrementalDecomposition};
use synctime_par::ThreadPool;

/// First pairwise disagreement between a stamp set and the oracle's `↦`,
/// if any: both the order and the incomparability must match (Theorem 4's
/// "if and only if").
fn first_encoding_mismatch(stamps: &MessageTimestamps, oracle: &Oracle) -> Option<String> {
    let n = stamps.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (m1, m2) = (MessageId(i), MessageId(j));
            let truth = oracle.synchronously_precedes(m1, m2);
            let claimed = stamps.precedes(m1, m2);
            if truth != claimed {
                return Some(format!(
                    "m{i} ↦ m{j} is {truth} but vectors {} vs {} say {claimed}",
                    stamps.vector(m1),
                    stamps.vector(m2)
                ));
            }
        }
    }
    None
}

/// First pair on which two stamp sets (possibly of different dimension)
/// disagree about the order of the same message set.
fn first_isomorphism_mismatch(a: &MessageTimestamps, b: &MessageTimestamps) -> Option<String> {
    let n = a.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (m1, m2) = (MessageId(i), MessageId(j));
            if a.precedes(m1, m2) != b.precedes(m1, m2) {
                return Some(format!(
                    "stamp sets disagree on (m{i}, m{j}): {} vs {} against {} vs {}",
                    a.vector(m1),
                    a.vector(m2),
                    b.vector(m1),
                    b.vector(m2)
                ));
            }
        }
    }
    None
}

fn random_computation(topo: &Graph, messages: usize, seed: u64) -> SyncComputation {
    let mut rng = StdRng::seed_from_u64(seed);
    RandomWorkload::messages(messages)
        .with_internal_events(messages / 4)
        .generate(topo, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Theorem 4, checked pairwise: the online vectors order two messages
    /// exactly when `↦` does, and leave them incomparable exactly when the
    /// messages are concurrent.
    #[test]
    fn online_vectors_encode_mapsto_exactly(
        n in 4usize..9,
        extra in 0usize..5,
        msgs in 1usize..45,
        seed in 0u64..5000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        let comp = random_computation(&topo, msgs, seed.wrapping_add(7));
        let oracle = Oracle::new(&comp);
        let dec = decompose::best_known(&topo);
        let stamps = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        prop_assert_eq!(stamps.dim(), dec.len());
        let mismatch = first_encoding_mismatch(&stamps, &oracle);
        prop_assert!(mismatch.is_none(), "online: {}", mismatch.unwrap());
    }

    /// Theorem 8, checked pairwise: the offline chain-realizer vectors are
    /// an order embedding of `(M, ↦)` too, with dimension bounded by the
    /// realizer the poset admits.
    #[test]
    fn offline_chain_realizer_encodes_mapsto(
        n in 4usize..9,
        extra in 0usize..5,
        msgs in 1usize..45,
        seed in 0u64..5000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        let comp = random_computation(&topo, msgs, seed.wrapping_add(13));
        let oracle = Oracle::new(&comp);
        let stamps = offline::stamp_computation(&comp);
        let mismatch = first_encoding_mismatch(&stamps, &oracle);
        prop_assert!(mismatch.is_none(), "offline: {}", mismatch.unwrap());
    }

    /// The two algorithms are order-isomorphic on the same computation:
    /// any pair ordered by the online vectors is ordered the same way by
    /// the offline vectors, although their dimensions generally differ.
    #[test]
    fn online_and_offline_stamps_are_order_isomorphic(
        n in 4usize..9,
        extra in 0usize..5,
        msgs in 1usize..45,
        seed in 0u64..5000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        let comp = random_computation(&topo, msgs, seed.wrapping_add(29));
        let dec = decompose::best_known(&topo);
        let online = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let off = offline::stamp_computation(&comp);
        let mismatch = first_isomorphism_mismatch(&online, &off);
        prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
    }

    /// The incremental cache is equivalent to batch decomposition: after a
    /// random edit sequence the cached decomposition is valid for the edited
    /// graph, within the Theorem 6 factor of the exact optimum, and stamps
    /// computations on the final topology exactly like a from-scratch
    /// greedy decomposition would.
    #[test]
    fn incremental_cache_matches_batch_greedy_after_random_edits(
        n in 4usize..8,
        extra in 0usize..4,
        edits in 1usize..14,
        msgs in 1usize..30,
        seed in 0u64..5000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = graph::topology::random_connected(n, extra, &mut rng);
        let mut cache = IncrementalDecomposition::new(&base);
        for k in 0..edits {
            let g = cache.graph();
            let existing: Vec<Edge> = g.edges().collect();
            let remove = k % 2 == 0 && existing.len() > 1;
            if remove {
                let e = existing[rng.gen_range(0..existing.len())];
                cache.remove_edge(e.lo(), e.hi()).unwrap();
            } else if existing.len() < n * (n - 1) / 2 {
                let (u, v) = loop {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u != v && !g.has_edge(u, v) {
                        break (u, v);
                    }
                };
                cache.insert_edge(u, v).unwrap();
            }
        }
        let g = cache.graph().clone();
        cache.decomposition().validate(&g).unwrap();
        // Theorem 6's guarantee, held against the *exact* optimum (the
        // graphs are small enough for the branch-and-bound solver).
        let alpha = decompose::alpha(&g);
        prop_assert!(
            cache.decomposition().len() <= 2 * alpha.max(1),
            "cache kept {} groups but α = {alpha}",
            cache.decomposition().len()
        );
        // Both decompositions stamp the same computation correctly and
        // order-isomorphically.
        let comp = random_computation(&g, msgs, seed.wrapping_add(31));
        let oracle = Oracle::new(&comp);
        let via_cache = OnlineStamper::new(cache.decomposition())
            .stamp_computation(&comp)
            .unwrap();
        let via_batch = OnlineStamper::new(&decompose::greedy(&g))
            .stamp_computation(&comp)
            .unwrap();
        let mismatch = first_encoding_mismatch(&via_cache, &oracle);
        prop_assert!(mismatch.is_none(), "cached dec: {}", mismatch.unwrap());
        let mismatch = first_isomorphism_mismatch(&via_cache, &via_batch);
        prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
    }

    /// The sparse offline engine is a fourth independent implementation:
    /// its vectors must encode `↦` exactly, agree pairwise with the dense
    /// offline engine, and its parallel variant must reproduce the
    /// sequential stamps bit for bit at every pool size.
    #[test]
    fn sparse_offline_engine_agrees_with_dense_and_parallelises_identically(
        n in 4usize..9,
        extra in 0usize..5,
        msgs in 1usize..45,
        seed in 0u64..5000,
        workers in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        let comp = random_computation(&topo, msgs, seed.wrapping_add(41));
        let oracle = Oracle::new(&comp);
        let sparse = offline::stamp_computation_sparse(&comp);
        let mismatch = first_encoding_mismatch(&sparse, &oracle);
        prop_assert!(mismatch.is_none(), "sparse: {}", mismatch.unwrap());
        let dense = offline::stamp_computation(&comp);
        let mismatch = first_isomorphism_mismatch(&sparse, &dense);
        prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
        let pool = ThreadPool::new(workers);
        let par = offline::stamp_computation_sparse_parallel(&comp, &pool);
        prop_assert_eq!(sparse.len(), par.len());
        for m in 0..sparse.len() {
            prop_assert_eq!(
                sparse.vector(MessageId(m)),
                par.vector(MessageId(m)),
                "workers = {}, message {}",
                workers,
                m
            );
        }
    }

    /// The runtime's per-channel delta streams are lossless: an encoder
    /// feeding a decoder over any sequence of monotone vector snapshots
    /// (interleaved across several channels, as a real process interleaves
    /// its peers) reproduces every vector exactly.
    #[test]
    fn delta_wire_streams_round_trip_exactly(
        dim in 1usize..7,
        channels in 1usize..4,
        steps in 1usize..60,
        seed in 0u64..5000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut enc = DeltaEncoder::new();
        let mut dec = DeltaDecoder::new();
        // One monotonically growing vector per channel, like a clock.
        let mut clocks: Vec<Vec<u64>> = vec![vec![0; dim]; channels];
        for _ in 0..steps {
            let ch = rng.gen_range(0..channels);
            // Bump a few random components (possibly none: retransmission
            // of an unchanged vector must also round-trip).
            for _ in 0..rng.gen_range(0..3) {
                let c = rng.gen_range(0..dim);
                clocks[ch][c] += rng.gen_range(1..100);
            }
            let v = VectorTime::from(clocks[ch].clone());
            let bytes = enc.encode(ch, &v);
            let back = dec.decode(ch, &bytes);
            prop_assert_eq!(back.as_ref(), Some(&v), "channel {}", ch);
        }
    }

    /// Crash robustness — Theorem 4 restricted to survivors: under any
    /// seeded fault plan with k < N crashes, every process exits with a
    /// typed verdict (never a panic, never a deadlock misdiagnosis), and
    /// the completed rendezvous prefix reconstructs with timestamps that
    /// encode `↦` exactly on that prefix.
    #[test]
    fn crashed_runs_keep_survivor_prefix_order_isomorphic(
        n in 3usize..7,
        extra in 0usize..4,
        msgs in 4usize..25,
        crashes in 1usize..3,
        seed in 0u64..5000,
    ) {
        use std::sync::Arc;
        use std::time::Duration;
        use synctime::runtime::{Behavior, Runtime, RuntimeError};
        use synctime::sim::{programs, FaultPlan};

        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        let comp = random_computation(&topo, msgs, seed.wrapping_add(53));
        // Confluent directed scripts: deadlock-free on the threaded
        // runtime, so the only failures are the injected ones.
        let scripts = programs::from_computation(&comp);
        let behaviors: Vec<Behavior> = scripts
            .iter()
            .map(|prog| {
                let ops = prog.ops().to_vec();
                let b: Behavior = Box::new(move |ctx| {
                    for op in &ops {
                        match op {
                            Op::SendTo(q) => {
                                ctx.send(*q, 0)?;
                            }
                            Op::ReceiveFrom(q) => {
                                ctx.receive_from(*q)?;
                            }
                            Op::Internal => ctx.internal(),
                            Op::ReceiveAny => unreachable!("directed scripts only"),
                        }
                    }
                    Ok(())
                });
                b
            })
            .collect();
        let crashes = crashes.min(n - 1);
        let plan = FaultPlan::random(n, 2 * msgs as u64, crashes, 0, &mut rng);
        let dec = decompose::best_known(&topo);
        let run = Runtime::new(&topo, &dec)
            .with_watchdog(Duration::from_secs(1))
            .with_fault_injector(Arc::new(plan))
            .run_tolerant(behaviors);
        for (p, o) in run.outcomes().iter().enumerate() {
            prop_assert!(
                !matches!(o, Some(RuntimeError::BehaviorPanicked { .. })),
                "process {} panicked instead of failing typed", p
            );
            prop_assert!(
                !matches!(o, Some(RuntimeError::Deadlock { .. })),
                "crash misdiagnosed as deadlock at process {}: {:?}", p, o
            );
        }
        // Crash-at-op-boundary keeps both endpoints' logs consistent, so
        // the completed prefix always reconstructs.
        let (prefix, stamps) = run.reconstruct().expect("two-sided logs reconstruct");
        prop_assert!(prefix.message_count() <= comp.message_count());
        let oracle = Oracle::new(&prefix);
        let mismatch = first_encoding_mismatch(&stamps, &oracle);
        prop_assert!(mismatch.is_none(), "survivor prefix: {}", mismatch.unwrap());
    }

    /// Live reconfiguration keeps Theorem 4 for everything stamped after
    /// the remap: a session that survives an edge removal (groups may
    /// dissolve and shift) still orders its *subsequent* stamps exactly as
    /// `↦` orders the messages, history included.
    #[test]
    fn suffix_stamps_after_reconfiguration_encode_mapsto(
        n in 4usize..8,
        extra in 1usize..5,
        prefix in 1usize..20,
        suffix in 1usize..20,
        seed in 0u64..5000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = graph::topology::random_connected(n, extra, &mut rng);
        let mut cache = IncrementalDecomposition::new(&base);
        let mut session = OnlineSession::new(cache.decomposition(), n);
        let mut b = Builder::new(n);

        let send_random = |session: &mut OnlineSession,
                               b: &mut Builder,
                               g: &Graph,
                               rng: &mut StdRng|
         -> (MessageId, VectorTime) {
            let edges: Vec<Edge> = g.edges().collect();
            let e = edges[rng.gen_range(0..edges.len())];
            let (s, r) = if rng.gen::<bool>() {
                (e.lo(), e.hi())
            } else {
                (e.hi(), e.lo())
            };
            let t = session.stamp(s, r).expect("channel is in the decomposition");
            let id = b.message(s, r).expect("message over an existing channel");
            (id, t)
        };

        for _ in 0..prefix {
            let g = cache.graph().clone();
            send_random(&mut session, &mut b, &g, &mut rng);
        }

        // Remove one random edge (keeping at least one) and rebase the
        // running session onto the patched decomposition.
        let existing: Vec<Edge> = cache.graph().edges().collect();
        prop_assume!(existing.len() > 1);
        let e = existing[rng.gen_range(0..existing.len())];
        let remap = cache.remove_edge(e.lo(), e.hi()).unwrap();
        session.reconfigure(cache.decomposition(), &remap).unwrap();

        let mut stamped = Vec::new();
        for _ in 0..suffix {
            let g = cache.graph().clone();
            stamped.push(send_random(&mut session, &mut b, &g, &mut rng));
        }

        let comp = b.build();
        let oracle = Oracle::new(&comp);
        for &(m1, ref v1) in &stamped {
            for &(m2, ref v2) in &stamped {
                if m1 == m2 {
                    continue;
                }
                let truth = oracle.synchronously_precedes(m1, m2);
                let claimed = matches!(
                    v1.compare(v2),
                    VectorOrder::Less
                );
                prop_assert_eq!(
                    truth,
                    claimed,
                    "post-remap: {m1} ↦ {m2} is {} but {} vs {} say {}",
                    truth,
                    v1,
                    v2,
                    claimed
                );
            }
        }
    }

    /// Backend isomorphism on random traces: the `TreeClock` and
    /// `FixedArray` backends reproduce the dense stamps *byte for byte* on
    /// both the online protocol and both offline engines, so they are
    /// trivially order-isomorphic — and the tree stamps independently
    /// encode `↦` against the oracle. A fixed-lane backend too narrow for
    /// the dimension must fail typed, never truncate.
    #[test]
    fn clock_backends_stamp_identically_on_random_traces(
        n in 4usize..9,
        extra in 0usize..5,
        msgs in 1usize..45,
        seed in 0u64..5000,
    ) {
        use synctime_core::clock::{ClockBackend, FixedArray, FixedArray16, TreeClock};
        use synctime_core::online::stamp_computation_as;
        use synctime_core::CoreError;

        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        let comp = random_computation(&topo, msgs, seed.wrapping_add(61));
        let oracle = Oracle::new(&comp);
        let dec = decompose::best_known(&topo);

        let dense = OnlineStamper::new(&dec).stamp_computation(&comp).unwrap();
        let tree = stamp_computation_as::<TreeClock>(&dec, &comp).unwrap();
        prop_assert_eq!(dense.len(), tree.len());
        for m in 0..dense.len() {
            prop_assert_eq!(
                dense.vector(MessageId(m)),
                tree.vector(MessageId(m)),
                "online tree backend diverged on m{}",
                m
            );
        }
        let mismatch = first_encoding_mismatch(&tree, &oracle);
        prop_assert!(mismatch.is_none(), "tree: {}", mismatch.unwrap());
        if dec.len() <= ClockBackend::FIXED_CAPACITY {
            let fixed = stamp_computation_as::<FixedArray16>(&dec, &comp).unwrap();
            for m in 0..dense.len() {
                prop_assert_eq!(
                    dense.vector(MessageId(m)),
                    fixed.vector(MessageId(m)),
                    "online fixed backend diverged on m{}",
                    m
                );
            }
        }
        // Too-narrow lanes are a typed error, not a truncation.
        if dec.len() > 1 {
            let narrow_fails_typed = matches!(
                stamp_computation_as::<FixedArray<1>>(&dec, &comp),
                Err(CoreError::DimensionUnsupported { .. })
            );
            prop_assert!(narrow_fails_typed);
        }

        // Both offline engines, re-emitted through each backend's
        // delta-merge arithmetic, stay bit-identical too.
        let off = offline::stamp_computation(&comp);
        let off_tree = offline::stamp_computation_as::<TreeClock>(&comp).unwrap();
        for m in 0..off.len() {
            prop_assert_eq!(off.vector(MessageId(m)), off_tree.vector(MessageId(m)));
        }
        let sparse = offline::stamp_computation_sparse(&comp);
        let sparse_tree = offline::stamp_computation_sparse_as::<TreeClock>(&comp).unwrap();
        for m in 0..sparse.len() {
            prop_assert_eq!(sparse.vector(MessageId(m)), sparse_tree.vector(MessageId(m)));
        }
        if sparse.dim() <= ClockBackend::FIXED_CAPACITY {
            let sparse_fixed = offline::stamp_computation_sparse_as::<FixedArray16>(&comp).unwrap();
            for m in 0..sparse.len() {
                prop_assert_eq!(sparse.vector(MessageId(m)), sparse_fixed.vector(MessageId(m)));
            }
        }
    }

    /// Backend isomorphism under faults: whatever rendezvous prefix
    /// survives a seeded crash plan, every clock backend stamps that prefix
    /// identically and order-isomorphically to the vectors the tolerant
    /// run itself reconstructed.
    #[test]
    fn clock_backends_agree_on_crash_survivor_prefixes(
        n in 3usize..7,
        extra in 0usize..4,
        msgs in 4usize..25,
        crashes in 1usize..3,
        seed in 0u64..5000,
    ) {
        use std::sync::Arc;
        use std::time::Duration;
        use synctime::runtime::{Behavior, Runtime};
        use synctime::sim::{programs, FaultPlan};
        use synctime_core::clock::{ClockBackend, FixedArray16, TreeClock};
        use synctime_core::online::stamp_computation_as;

        let mut rng = StdRng::seed_from_u64(seed);
        let topo = graph::topology::random_connected(n, extra, &mut rng);
        let comp = random_computation(&topo, msgs, seed.wrapping_add(67));
        let scripts = programs::from_computation(&comp);
        let behaviors: Vec<Behavior> = scripts
            .iter()
            .map(|prog| {
                let ops = prog.ops().to_vec();
                let b: Behavior = Box::new(move |ctx| {
                    for op in &ops {
                        match op {
                            Op::SendTo(q) => {
                                ctx.send(*q, 0)?;
                            }
                            Op::ReceiveFrom(q) => {
                                ctx.receive_from(*q)?;
                            }
                            Op::Internal => ctx.internal(),
                            Op::ReceiveAny => unreachable!("directed scripts only"),
                        }
                    }
                    Ok(())
                });
                b
            })
            .collect();
        let crashes = crashes.min(n - 1);
        let plan = FaultPlan::random(n, 2 * msgs as u64, crashes, 0, &mut rng);
        let dec = decompose::best_known(&topo);
        let run = Runtime::new(&topo, &dec)
            .with_watchdog(Duration::from_secs(1))
            .with_fault_injector(Arc::new(plan))
            .run_tolerant(behaviors);
        let (prefix, run_stamps) = run.reconstruct().expect("two-sided logs reconstruct");

        let dense = OnlineStamper::new(&dec).stamp_computation(&prefix).unwrap();
        let tree = stamp_computation_as::<TreeClock>(&dec, &prefix).unwrap();
        prop_assert_eq!(dense.len(), tree.len());
        for m in 0..dense.len() {
            prop_assert_eq!(
                dense.vector(MessageId(m)),
                tree.vector(MessageId(m)),
                "tree backend diverged on survivor prefix at m{}",
                m
            );
        }
        if dec.len() <= ClockBackend::FIXED_CAPACITY {
            let fixed = stamp_computation_as::<FixedArray16>(&dec, &prefix).unwrap();
            for m in 0..dense.len() {
                prop_assert_eq!(dense.vector(MessageId(m)), fixed.vector(MessageId(m)));
            }
        }
        // And the backend stamps tell the same order story as the vectors
        // the run itself reconstructed from its two-sided logs.
        let mismatch = first_isomorphism_mismatch(&tree, &run_stamps);
        prop_assert!(mismatch.is_none(), "survivor prefix: {}", mismatch.unwrap());
        let oracle = Oracle::new(&prefix);
        let mismatch = first_encoding_mismatch(&tree, &oracle);
        prop_assert!(mismatch.is_none(), "survivor prefix: {}", mismatch.unwrap());
    }

    /// Backend isomorphism across live reconfiguration: three sessions —
    /// dense, tree, fixed — driven in lockstep through the same messages
    /// and the same mid-run remap produce byte-identical stamps at every
    /// step, before and after the groups dissolve and shift.
    #[test]
    fn clock_backends_agree_across_reconfiguration(
        n in 4usize..8,
        extra in 1usize..5,
        prefix in 1usize..20,
        suffix in 1usize..20,
        seed in 0u64..5000,
    ) {
        use synctime_core::clock::{FixedArray16, TreeClock};
        use synctime_core::online::GenericOnlineSession;

        let mut rng = StdRng::seed_from_u64(seed);
        let base = graph::topology::random_connected(n, extra, &mut rng);
        let mut cache = IncrementalDecomposition::new(&base);
        let mut dense = OnlineSession::new(cache.decomposition(), n);
        let mut tree = GenericOnlineSession::<TreeClock>::new(cache.decomposition(), n);
        // The fixed backend rides along while the dimension fits its lanes
        // (it always does at these sizes before the remap; the remap may
        // push it out, in which case it bows out typed).
        let mut fixed = GenericOnlineSession::<FixedArray16>::try_new(cache.decomposition(), n).ok();

        let stamp_all = |dense: &mut OnlineSession,
                             tree: &mut GenericOnlineSession<TreeClock>,
                             fixed: &mut Option<GenericOnlineSession<FixedArray16>>,
                             g: &Graph,
                             rng: &mut StdRng|
         -> Result<(), TestCaseError> {
            let edges: Vec<Edge> = g.edges().collect();
            let e = edges[rng.gen_range(0..edges.len())];
            let (s, r) = if rng.gen::<bool>() {
                (e.lo(), e.hi())
            } else {
                (e.hi(), e.lo())
            };
            let t = dense.stamp(s, r).expect("channel is in the decomposition");
            let t_tree = tree.stamp(s, r).expect("sessions share the decomposition");
            prop_assert_eq!(&t, &t_tree, "tree session diverged at stamp {}", dense.stamped());
            if let Some(f) = fixed {
                let t_fixed = f.stamp(s, r).expect("sessions share the decomposition");
                prop_assert_eq!(&t, &t_fixed, "fixed session diverged at stamp {}", dense.stamped());
            }
            Ok(())
        };

        for _ in 0..prefix {
            let g = cache.graph().clone();
            stamp_all(&mut dense, &mut tree, &mut fixed, &g, &mut rng)?;
        }

        let existing: Vec<Edge> = cache.graph().edges().collect();
        prop_assume!(existing.len() > 1);
        let e = existing[rng.gen_range(0..existing.len())];
        let remap = cache.remove_edge(e.lo(), e.hi()).unwrap();
        dense.reconfigure(cache.decomposition(), &remap).unwrap();
        tree.reconfigure(cache.decomposition(), &remap).unwrap();
        if let Some(f) = &mut fixed {
            // A remap that grows past the fixed lanes fails typed; the
            // session is then out of the comparison, not silently wrong.
            if f.reconfigure(cache.decomposition(), &remap).is_err() {
                fixed = None;
            }
        }

        for _ in 0..suffix {
            let g = cache.graph().clone();
            stamp_all(&mut dense, &mut tree, &mut fixed, &g, &mut rng)?;
        }
    }
}
