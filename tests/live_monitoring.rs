//! The full monitoring pipeline on real threads: the runtime streams
//! LiveObservations while the computation executes; a Monitor ingests them
//! (in whatever order the channel delivers) and must agree with the
//! ground-truth oracle once the run completes.

use synctime::detect::monitor::{Monitor, Observation};
use synctime::prelude::*;
use synctime::runtime::LiveObservation;

#[test]
fn live_observer_feeds_an_accurate_monitor() {
    let topo = graph::topology::client_server(2, 3);
    let dec = graph::decompose::best_known(&topo);
    let (tx, rx) = std::sync::mpsc::channel::<LiveObservation>();
    let runtime = Runtime::new(&topo, &dec).with_observer(tx);

    let client = |id: usize| -> Behavior {
        Box::new(move |ctx| {
            for srv in [0usize, 1, 0] {
                ctx.send(srv, id as u64)?;
                ctx.receive_from(srv)?;
            }
            Ok(())
        })
    };
    // Each server serves the clients' visits in client order per round.
    let server = |visits: Vec<usize>| -> Behavior {
        Box::new(move |ctx| {
            for c in &visits {
                let (x, _) = ctx.receive_from(*c)?;
                ctx.send(*c, x)?;
            }
            Ok(())
        })
    };
    // Clients 2,3,4 visit servers 0,1,0: server 0 sees each client twice
    // (rounds 0 and 2), server 1 once (round 1).
    let s0_visits = vec![2, 3, 4, 2, 3, 4];
    let s1_visits = vec![2, 3, 4];
    let run = runtime
        .run(vec![
            server(s0_visits),
            server(s1_visits),
            client(2),
            client(3),
            client(4),
        ])
        .unwrap();

    // Ingest the stream. Keys are runtime-internal; the monitor only needs
    // distinct ids, so reuse them directly.
    let mut monitor = Monitor::new(dec.len());
    let mut key_count = 0;
    for obs in rx.try_iter() {
        monitor
            .observe(Observation {
                message: MessageId(obs.key as usize),
                stamp: obs.stamp,
            })
            .unwrap();
        key_count += 1;
    }
    let (comp, stamps) = run.reconstruct().unwrap();
    assert_eq!(key_count, comp.message_count());
    assert_eq!(monitor.len(), comp.message_count());

    // The monitor's verdicts coincide with the oracle's. Map each runtime
    // key to the reconstructed message id via per-process log order.
    let oracle = Oracle::new(&comp);
    let mut key_of: Vec<Option<u64>> = vec![None; comp.message_count()];
    for (p, log) in run.logs().iter().enumerate() {
        let mut next = 0usize;
        for entry in log {
            if let synctime::runtime::LogEntry::Sent { key, .. }
            | synctime::runtime::LogEntry::Received { key, .. } = entry
            {
                let id = comp.process_messages(p)[next];
                next += 1;
                key_of[id.0].get_or_insert(*key);
            }
        }
    }
    for i in 0..comp.message_count() {
        for j in 0..comp.message_count() {
            if i == j {
                continue;
            }
            let (ki, kj) = (
                MessageId(key_of[i].unwrap() as usize),
                MessageId(key_of[j].unwrap() as usize),
            );
            assert_eq!(
                monitor.precedes(ki, kj).unwrap(),
                oracle.synchronously_precedes(MessageId(i), MessageId(j)),
                "pair ({i}, {j})"
            );
        }
    }
    // And the batch stamps match what was streamed.
    assert!(stamps.encodes(&oracle));
}
