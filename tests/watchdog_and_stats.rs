//! The runtime's observability layer end to end: the deadlock watchdog
//! turns stalled rendezvous into diagnosed errors, and clean runs produce
//! consistent `RunStats` summaries.

use std::time::{Duration, Instant};

use synctime::prelude::*;
use synctime::runtime::{Matcher, RunStats, RuntimeError, WaitOp};
use synctime_graph::{decompose, topology};

/// A deliberately deadlocked 2-process program: both sides block in
/// `receive_from` forever. The watchdog must abort with the 0 <-> 1 cycle
/// well within the test's patience, instead of hanging the suite.
#[test]
fn deadlocked_program_aborts_with_cycle() {
    let topo = topology::path(2);
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(150));
    let started = Instant::now();
    let err = rt
        .run(vec![
            Box::new(|ctx| ctx.receive_from(1).map(|_| ())),
            Box::new(|ctx| ctx.receive_from(0).map(|_| ())),
        ])
        .unwrap_err();
    assert!(started.elapsed() < Duration::from_secs(30), "near-hang");
    let RuntimeError::Deadlock { ref diagnosis } = err else {
        panic!("expected a deadlock diagnosis, got {err}");
    };
    assert_eq!(diagnosis.cycle, vec![0, 1]);
    assert_eq!(diagnosis.waiting.len(), 2);
    assert!(diagnosis
        .waiting
        .iter()
        .all(|w| w.op == WaitOp::ReceiveFrom));
    // The rendered diagnosis names the cycle for log consumers.
    assert!(err.to_string().contains("P0 -> P1 -> P0"), "{err}");
}

/// Three processes in a send cycle over a triangle: 0 -> 1 -> 2 -> 0, all
/// blocked sending. The watchdog extracts the 3-cycle.
#[test]
fn three_process_send_cycle_is_diagnosed() {
    let topo = topology::triangle();
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(150));
    let err = rt
        .run(vec![
            Box::new(|ctx| ctx.send(1, 0).map(|_| ())),
            Box::new(|ctx| ctx.send(2, 0).map(|_| ())),
            Box::new(|ctx| ctx.send(0, 0).map(|_| ())),
        ])
        .unwrap_err();
    let RuntimeError::Deadlock { diagnosis } = err else {
        panic!("expected a deadlock diagnosis, got {err}");
    };
    assert_eq!(diagnosis.cycle, vec![0, 1, 2]);
    assert!(diagnosis.waiting.iter().all(|w| w.op == WaitOp::SendTo));
}

/// Slow is not dead: a pipeline whose stages nap for multiples of the
/// watchdog timeout between rendezvous. Peers park far longer than the
/// timeout, but no wait cycle ever forms, so the cycle-based watchdog must
/// let the run finish instead of mistaking patience for deadlock.
#[test]
fn slow_but_live_pipeline_is_never_flagged() {
    let topo = topology::path(3);
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(40));
    let run = rt
        .run(vec![
            Box::new(|ctx| {
                for i in 0..3 {
                    std::thread::sleep(Duration::from_millis(120));
                    ctx.send(1, i)?;
                }
                Ok(())
            }),
            Box::new(|ctx| {
                for _ in 0..3 {
                    let (x, _) = ctx.receive_from(0)?;
                    std::thread::sleep(Duration::from_millis(60));
                    ctx.send(2, x)?;
                }
                Ok(())
            }),
            Box::new(|ctx| {
                for _ in 0..3 {
                    ctx.receive_from(1)?;
                }
                Ok(())
            }),
        ])
        .expect("slow-but-live pipeline was flagged as deadlocked");
    assert_eq!(run.stats().messages, 6);
}

/// A genuine deadlock among a subset must be caught even while a bystander
/// keeps doing useful (non-blocking) work: the watchdog reasons about wait
/// cycles, not about whether every thread is stuck.
#[test]
fn partial_deadlock_is_diagnosed_despite_live_bystander() {
    let topo = topology::path(3);
    let dec = decompose::best_known(&topo);
    let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(150));
    let err = rt
        .run(vec![
            Box::new(|_ctx| {
                // Alive and busy, never waiting on anyone.
                std::thread::sleep(Duration::from_millis(600));
                Ok(())
            }),
            Box::new(|ctx| ctx.receive_from(2).map(|_| ())),
            Box::new(|ctx| ctx.receive_from(1).map(|_| ())),
        ])
        .unwrap_err();
    let RuntimeError::Deadlock { diagnosis } = err else {
        panic!("expected a deadlock diagnosis, got {err}");
    };
    assert_eq!(diagnosis.cycle, vec![1, 2]);
    assert!(!diagnosis.cycle.contains(&0), "P0 was never waiting");
}

/// Both matchers produce the same computation; the parking matcher's stats
/// expose the wakeup path it actually took.
#[test]
fn matchers_agree_and_parking_reports_wakeups() {
    let topo = topology::cycle(3);
    let dec = decompose::best_known(&topo);
    let behaviors = |rounds: u64| -> Vec<Behavior> {
        (0..3)
            .map(|p| -> Behavior {
                Box::new(move |ctx| {
                    for i in 0..rounds {
                        if p == 0 {
                            ctx.send(1, i)?;
                            ctx.receive_from(2)?;
                        } else {
                            let (t, _) = ctx.receive_from(p - 1)?;
                            ctx.send((p + 1) % 3, t)?;
                        }
                    }
                    Ok(())
                })
            })
            .collect()
    };
    let parking = Runtime::new(&topo, &dec)
        .with_matcher(Matcher::Parking)
        .run(behaviors(20))
        .unwrap();
    let polling = Runtime::new(&topo, &dec)
        .with_matcher(Matcher::Polling)
        .run(behaviors(20))
        .unwrap();
    assert_eq!(parking.stats().messages, 60);
    assert_eq!(polling.stats().messages, 60);
    // Identical stamps from identical computations, whatever the matcher.
    let (_, parking_stamps) = parking.reconstruct().unwrap();
    let (_, polling_stamps) = polling.reconstruct().unwrap();
    assert_eq!(parking_stamps.vectors(), polling_stamps.vectors());
    let s = parking.stats();
    assert!(s.wakeups > 0, "a ring must park at least once");
    assert!(s.wakeup_p50_ns <= s.wakeup_p99_ns);
    assert!(s.wakeup_p99_ns <= s.wakeup_max_ns);
}

/// A correct program under a tight watchdog: many rounds, never tripped,
/// and the stats line up with the protocol's accounting.
#[test]
fn clean_run_stats_are_consistent() {
    let topo = topology::cycle(4);
    let dec = decompose::best_known(&topo);
    let rounds = 25u64;
    let rt = Runtime::new(&topo, &dec).with_watchdog(Duration::from_millis(500));
    let behaviors: Vec<Behavior> = (0..4)
        .map(|p| -> Behavior {
            Box::new(move |ctx| {
                for i in 0..rounds {
                    if p == 0 {
                        ctx.send(1, i)?;
                        ctx.receive_from(3)?;
                    } else {
                        let (token, _) = ctx.receive_from(p - 1)?;
                        ctx.send((p + 1) % 4, token)?;
                    }
                }
                Ok(())
            })
        })
        .collect();
    let run = rt.run(behaviors).expect("clean ring tripped the watchdog");
    let stats = run.stats();
    assert_eq!(stats.messages, 4 * rounds);
    assert_eq!(stats.receives, 4 * rounds);
    // Every rendezvous would move one offer frame plus one ack frame with
    // full fixed-width d-vectors (frame headers included); that baseline is
    // counted at both endpoints. The actual bytes ride per-channel delta
    // streams, so they are positive and never exceed the baseline.
    let dim = dec.len() as u64;
    assert_eq!(
        stats.total_wire_bytes_full,
        stats.messages * 2 * synctime_core::wire::rendezvous_bytes_full(dim as usize)
    );
    assert!(stats.total_wire_bytes > 0);
    assert!(stats.total_wire_bytes <= stats.total_wire_bytes_full);
    assert!(stats.ack_latency_p50_ns > 0);
    assert!(stats.ack_latency_p99_ns >= stats.ack_latency_p50_ns);
    assert!(stats.ack_latency_max_ns >= stats.ack_latency_p99_ns);
    // The token made `rounds` trips through each edge group; components
    // count exactly the messages of their group.
    assert_eq!(
        stats.max_vector_component,
        stats.messages / dim.max(1),
        "components partition the {} messages across {} groups",
        stats.messages,
        dim
    );
    // Per-process counters sum to the totals.
    let sends: u64 = stats.per_process.iter().map(|p| p.sends).sum();
    assert_eq!(sends, stats.messages);
    // The JSON export round-trips losslessly.
    let reparsed = RunStats::from_json(&stats.to_json()).unwrap();
    assert_eq!(&reparsed, stats);
}
