//! Whole-stack stress: random computations are compiled to CSP scripts,
//! replayed on the deterministic simulator under many seeds AND on the
//! threaded runtime, and every replay must (a) reproduce the per-process
//! histories (confluence of directed rendezvous), and (b) produce online
//! timestamps that encode its ground-truth order.

use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime::prelude::*;
use synctime::sim::programs;
use synctime::sim::workload::RandomWorkload;

fn behaviors_from_programs(progs: &[Program]) -> Vec<Behavior> {
    progs
        .iter()
        .map(|prog| {
            let ops: Vec<Op> = prog.ops().to_vec();
            let behavior: Behavior = Box::new(move |ctx| {
                for op in &ops {
                    match op {
                        Op::SendTo(peer) => {
                            ctx.send(*peer, 0)?;
                        }
                        Op::ReceiveFrom(peer) => {
                            ctx.receive_from(*peer)?;
                        }
                        Op::Internal => ctx.internal(),
                        Op::ReceiveAny => unreachable!("directed scripts only"),
                    }
                }
                Ok(())
            });
            behavior
        })
        .collect()
}

#[test]
fn simulator_replays_are_confluent_and_correctly_stamped() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..6 {
        let topo = graph::topology::random_connected(5 + trial % 3, 3, &mut rng);
        let dec = graph::decompose::best_known(&topo);
        let original = RandomWorkload::messages(40)
            .with_internal_events(12)
            .generate(&topo, &mut rng);
        let progs = programs::from_computation(&original);
        for seed in 0..6 {
            let replay = Simulator::new()
                .with_topology(&topo)
                .with_seed(seed)
                .run(&progs)
                .unwrap_or_else(|e| panic!("trial {trial} seed {seed}: {e}"));
            assert!(
                programs::roundtrips(&original, &replay),
                "trial {trial} seed {seed}: replay diverged"
            );
            let stamps = OnlineStamper::new(&dec).stamp_computation(&replay).unwrap();
            assert!(
                stamps.encodes(&Oracle::new(&replay)),
                "trial {trial} seed {seed}"
            );
        }
    }
}

#[test]
fn threaded_runtime_replays_random_scripts() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..4 {
        let topo = graph::topology::complete(4 + trial % 2);
        let dec = graph::decompose::best_known(&topo);
        let original = RandomWorkload::messages(30).generate(&topo, &mut rng);
        let progs = programs::from_computation(&original);
        let run = Runtime::new(&topo, &dec)
            .run(behaviors_from_programs(&progs))
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        let (replay, live_stamps) = run.reconstruct().unwrap();
        assert!(
            programs::roundtrips(&original, &replay),
            "trial {trial}: runtime replay diverged"
        );
        assert!(live_stamps.encodes(&Oracle::new(&replay)), "trial {trial}");
        // Piggybacked stamps equal batch stamps on the same computation.
        let batch = OnlineStamper::new(&dec).stamp_computation(&replay).unwrap();
        assert_eq!(live_stamps, batch, "trial {trial}");
    }
}

#[test]
fn event_pipeline_on_replays() {
    // Replay, then run the full Section 5 event pipeline and the detect
    // layer's orphan analysis on the result.
    let mut rng = StdRng::seed_from_u64(5150);
    let topo = graph::topology::client_server(2, 4);
    let dec = graph::decompose::best_known(&topo);
    let original = RandomWorkload::messages(25)
        .with_internal_events(10)
        .generate(&topo, &mut rng);
    let progs = programs::from_computation(&original);
    let replay = Simulator::new()
        .with_topology(&topo)
        .with_seed(3)
        .run(&progs)
        .unwrap();
    let oracle = Oracle::new(&replay);
    let stamps = OnlineStamper::new(&dec).stamp_computation(&replay).unwrap();
    let events = stamp_events(&replay, &stamps);
    assert!(events.encodes(&replay, &oracle));
    // Orphan analysis from an arbitrary failure is internally consistent.
    let failures = [synctime::detect::orphans::Failure {
        process: 0,
        surviving_events: replay.history(0).len() / 2,
    }];
    let line = synctime::detect::orphans::recovery_line(&replay, &events, &failures);
    for (p, &len) in line.iter().enumerate() {
        assert!(len <= replay.history(p).len());
    }
    assert!(line[0] <= replay.history(0).len() / 2);
}
