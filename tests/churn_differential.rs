//! Differential battery under churn: every clock backend must tell the
//! same story about a reconfigured computation, with and without faults.
//!
//! Two properties over seeded random [`ChurnPlan`]s:
//!
//! * **Fault-free churn is backend-invariant.** The engine is
//!   deterministic given a plan, so every backend must produce
//!   byte-identical logs and boundaries, and each backend's final-epoch
//!   stamps must encode the reconstructed computation's synchronous order
//!   exactly (Theorem 4, surviving arbitrarily many rebases).
//! * **Churn and crash faults compose.** Crashes make the interleaving
//!   racy (termination cascades), so backends may diverge byte-for-byte;
//!   what must still hold, per backend, is internal consistency of the
//!   durable pathway: persist the run with its reconfiguration records,
//!   recover it, materialise the latest epoch, and the recovered stamps
//!   must encode the recovered computation's order.
//!
//! A backend refusing a dimension (`ClockUnsupported`, e.g. a fixed
//! 16-lane array under a wide epoch) is a legitimate typed outcome and
//! skips that backend, never a failure.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synctime_core::clock::ClockBackend;
use synctime_runtime::{reconstruct_from_logs, RuntimeError};
use synctime_sim::{run_churn, ChurnConfig, ChurnError, ChurnPlan, ChurnRun, FaultPlan};
use synctime_trace::Oracle;

const BACKENDS: [ClockBackend; 4] = [
    ClockBackend::Auto,
    ClockBackend::Dense,
    ClockBackend::Tree,
    ClockBackend::Fixed,
];

fn backend_name(b: ClockBackend) -> &'static str {
    match b {
        ClockBackend::Auto => "auto",
        ClockBackend::Dense => "dense",
        ClockBackend::Tree => "tree",
        ClockBackend::Fixed => "fixed",
    }
}

/// Runs the plan under one backend; `Ok(None)` when the backend cannot
/// hold the run's dimension.
fn run_backend(
    plan: &ChurnPlan,
    backend: ClockBackend,
    fault: &FaultPlan,
) -> Result<Option<ChurnRun>, TestCaseError> {
    let cfg = ChurnConfig {
        backend,
        fault: fault.clone(),
    };
    match run_churn(plan, &cfg) {
        Ok(run) => Ok(Some(run)),
        Err(ChurnError::Runtime(RuntimeError::ClockUnsupported { .. })) => Ok(None),
        Err(e) => Err(TestCaseError::Fail(format!(
            "backend {} failed: {e}",
            backend_name(backend)
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fault-free: identical logs and boundaries across backends, and
    /// order-exact final-epoch stamps for each.
    #[test]
    fn fault_free_churn_is_backend_invariant(
        seed in 0u64..10_000,
        universe in 4usize..8,
        boundaries in 1usize..4,
    ) {
        let plan = ChurnPlan::random(universe, boundaries, 2, &mut StdRng::seed_from_u64(seed));
        let no_faults = FaultPlan::default();
        let mut reference: Option<ChurnRun> = None;
        for backend in BACKENDS {
            let Some(run) = run_backend(&plan, backend, &no_faults)? else {
                continue;
            };
            let (comp, stamps) = reconstruct_from_logs(&run.final_epoch_logs())
                .map_err(|e| TestCaseError::Fail(format!("final epoch: {e}")))?;
            prop_assert!(
                stamps.encodes(&Oracle::new(&comp)),
                "backend {} stamps do not encode the final epoch's order",
                backend_name(backend)
            );
            match &reference {
                None => reference = Some(run),
                Some(r) => {
                    prop_assert_eq!(
                        &r.logs, &run.logs,
                        "backend {} produced different logs", backend_name(backend)
                    );
                    prop_assert_eq!(
                        &r.boundaries, &run.boundaries,
                        "backend {} produced different boundaries", backend_name(backend)
                    );
                }
            }
        }
        prop_assert!(reference.is_some(), "no backend could run the plan");
    }

    /// Crashes composed with churn: per backend, the persisted run must
    /// recover and its latest epoch must materialise into stamps that
    /// encode the recovered computation's order.
    #[test]
    fn churn_and_crash_faults_compose_across_backends(
        seed in 0u64..10_000,
        universe in 4usize..8,
        boundaries in 1usize..3,
        crashes in 1usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = ChurnPlan::random(universe, boundaries, 2, &mut rng);
        let fault = FaultPlan::random(universe, 4, crashes, 0, &mut rng);
        let root = std::env::temp_dir().join(format!(
            "synctime-churn-diff-{}-{seed}-{universe}-{boundaries}-{crashes}",
            std::process::id()
        ));
        for backend in BACKENDS {
            let Some(run) = run_backend(&plan, backend, &fault)? else {
                continue;
            };
            let records: Vec<synctime_store::ReconfigRecord> = run
                .boundaries
                .iter()
                .map(|b| synctime_store::ReconfigRecord {
                    epoch: b.epoch,
                    cuts: b.cuts.clone(),
                    ops: b.ops.clone(),
                })
                .collect();
            let _ = std::fs::remove_dir_all(&root);
            let trace = backend_name(backend);
            synctime_store::persist_logs_with_reconfigs(&root, trace, &run.logs, &records)
                .map_err(|e| TestCaseError::Fail(format!("persist ({trace}): {e}")))?;
            let rec = synctime_store::read_trace_dir(&root.join(trace))
                .map_err(|e| TestCaseError::Fail(format!("recover ({trace}): {e}")))?;
            prop_assert_eq!(&rec.logs, &run.logs, "recovery must round-trip ({})", trace);
            let (epoch, comp, stamps) = synctime_store::materialize_latest_epoch(&rec)
                .map_err(|e| TestCaseError::Fail(format!("materialise ({trace}): {e}")))?;
            prop_assert_eq!(epoch, run.final_epoch(), "latest epoch mismatch ({})", trace);
            prop_assert!(
                stamps.encodes(&Oracle::new(&comp)),
                "backend {} recovered stamps do not encode the recovered order",
                trace
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
