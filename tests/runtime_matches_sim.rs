//! End-to-end agreement: the threaded runtime (real rendezvous channels,
//! piggybacked vectors, acknowledgements) produces exactly the timestamps
//! the deterministic simulator/batch stamper computes for the same
//! computation, and both agree with the ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synctime::prelude::*;

/// Builds matching runtime behaviors and simulator programs for a randomly
/// generated client–server session, so the *same* logical computation runs
/// on both engines.
fn rpc_session(
    servers: usize,
    clients: usize,
    calls_per_client: usize,
    seed: u64,
) -> (Graph, Vec<Vec<usize>>) {
    let topo = graph::topology::client_server(servers, clients);
    let mut rng = StdRng::seed_from_u64(seed);
    // For each client, the sequence of servers it calls.
    let plans: Vec<Vec<usize>> = (0..clients)
        .map(|_| {
            (0..calls_per_client)
                .map(|_| rng.gen_range(0..servers))
                .collect()
        })
        .collect();
    (topo, plans)
}

#[test]
fn runtime_matches_sim() {
    let (servers, clients, calls) = (2, 3, 4);
    let (topo, plans) = rpc_session(servers, clients, calls, 7);
    let dec = graph::decompose::best_known(&topo);

    // --- threaded runtime ---------------------------------------------
    // Each server loops accepting (client, then reply) in a fixed global
    // round-robin derived from the plans, so the behaviors cannot deadlock:
    // server s serves its calls in the order clients issue them by client
    // id, call by call.
    let mut server_queues: Vec<Vec<usize>> = vec![Vec::new(); servers]; // client ids in order
    for call in 0..calls {
        for (c, plan) in plans.iter().enumerate() {
            server_queues[plan[call]].push(servers + c);
        }
    }
    let runtime = Runtime::new(&topo, &dec);
    let mut behaviors: Vec<Behavior> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for s in 0..servers {
        let queue = server_queues[s].clone();
        behaviors.push(Box::new(move |ctx| {
            for client in queue {
                let (x, _) = ctx.receive_from(client)?;
                ctx.send(client, x + 1)?;
            }
            Ok(())
        }));
    }
    for (c, plan) in plans.iter().enumerate() {
        let plan = plan.clone();
        behaviors.push(Box::new(move |ctx| {
            for srv in plan {
                ctx.send(srv, c as u64)?;
                ctx.receive_from(srv)?;
            }
            Ok(())
        }));
    }
    let run = runtime.run(behaviors).unwrap();
    let (live_comp, live_stamps) = run.reconstruct().unwrap();

    // --- the stamps are correct and schedule-independent ----------------
    let oracle = Oracle::new(&live_comp);
    assert!(live_stamps.encodes(&oracle));
    let batch = OnlineStamper::new(&dec)
        .stamp_computation(&live_comp)
        .unwrap();
    assert_eq!(live_stamps, batch);

    // --- simulator runs the same scripts --------------------------------
    let mut programs: Vec<Program> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for s in 0..servers {
        let mut p = Program::new();
        for &client in &server_queues[s] {
            p = p.receive_from(client).send_to(client);
        }
        programs.push(p);
    }
    for (c, plan) in plans.iter().enumerate() {
        let mut p = Program::new();
        for &srv in plan {
            p = p.send_to(srv).receive_from(srv);
        }
        programs.push(p);
        let _ = c;
    }
    let sim_comp = Simulator::new()
        .with_topology(&topo)
        .run(&programs)
        .unwrap();

    // The two engines may interleave concurrent rendezvous differently, but
    // they realize the same partial order: same per-process sequences of
    // (peer, direction), and isomorphic posets.
    for p in 0..topo.node_count() {
        let live_seq: Vec<(usize, usize)> = live_comp
            .process_messages(p)
            .iter()
            .map(|&m| {
                let msg = live_comp.message(m);
                (msg.sender, msg.receiver)
            })
            .collect();
        let sim_seq: Vec<(usize, usize)> = sim_comp
            .process_messages(p)
            .iter()
            .map(|&m| {
                let msg = sim_comp.message(m);
                (msg.sender, msg.receiver)
            })
            .collect();
        assert_eq!(live_seq, sim_seq, "process {p} sequences differ");
    }
    // Stamping the simulator's computation gives vectors that encode *its*
    // oracle too (and the multisets of timestamps coincide).
    let sim_stamps = OnlineStamper::new(&dec)
        .stamp_computation(&sim_comp)
        .unwrap();
    assert!(sim_stamps.encodes(&Oracle::new(&sim_comp)));
    let mut live_sorted: Vec<&VectorTime> = live_stamps.vectors().iter().collect();
    let mut sim_sorted: Vec<&VectorTime> = sim_stamps.vectors().iter().collect();
    live_sorted.sort_by_key(|v| v.as_slice().to_vec());
    sim_sorted.sort_by_key(|v| v.as_slice().to_vec());
    assert_eq!(live_sorted, sim_sorted);
}

#[test]
fn runtime_event_stamps_detect_races() {
    // Full pipeline on threads: run, reconstruct, stamp events, and check
    // Theorem 9 against the oracle.
    let topo = graph::topology::complete(3);
    let dec = graph::decompose::best_known(&topo);
    let run = Runtime::new(&topo, &dec)
        .run(vec![
            Box::new(|ctx| {
                ctx.internal();
                ctx.send(1, 1)?;
                ctx.internal();
                ctx.send(2, 2)?;
                Ok(())
            }),
            Box::new(|ctx| {
                ctx.receive_from(0)?;
                ctx.internal();
                Ok(())
            }),
            Box::new(|ctx| {
                ctx.internal();
                ctx.receive_from(0)?;
                Ok(())
            }),
        ])
        .unwrap();
    let (comp, stamps) = run.reconstruct().unwrap();
    let events = stamp_events(&comp, &stamps);
    let oracle = Oracle::new(&comp);
    assert!(events.encodes(&comp, &oracle));
}
